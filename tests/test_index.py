"""Tests for possible-world indexing: TagIndex, θ_c, manager, local universe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, IndexError_, InvalidQueryError
from repro.graphs import TagGraphBuilder
from repro.index import (
    IndexManager,
    TagIndex,
    average_pairwise_common_indexes,
    local_edge_universe,
    theta_c,
)
from repro.index.stats import IndexStats, expected_pairwise_common_indexes


def _graph():
    builder = TagGraphBuilder(4)
    builder.add(0, 1, "a", 0.5)
    builder.add(1, 2, "a", 0.9)
    builder.add(1, 2, "b", 0.3)
    builder.add(2, 3, "b", 0.7)
    return builder.build()


class TestThetaC:
    def test_paper_formula(self):
        # θ_c = rθ / (αδ(θ-1) + r)
        value = theta_c(theta=10000, r=10, alpha=1.0, delta=0.01)
        expected = 10 * 10000 / (0.01 * 9999 + 10)
        assert value == int(np.ceil(expected))

    def test_much_smaller_than_theta(self):
        # The paper's Figure 7(b): θ_c is orders of magnitude below θ.
        tc = theta_c(theta=100_000, r=10, alpha=1.0, delta=0.01)
        assert tc < 100_000 / 50

    def test_at_least_one(self):
        assert theta_c(theta=2, r=1, alpha=10.0, delta=0.5) >= 1

    def test_grows_with_r(self):
        assert theta_c(5000, 20, 1.0, 0.01) > theta_c(5000, 5, 1.0, 0.01)

    def test_shrinks_with_alpha(self):
        assert theta_c(5000, 10, 2.0, 0.01) < theta_c(5000, 10, 0.5, 0.01)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"theta": 0, "r": 1, "alpha": 1.0, "delta": 0.01},
            {"theta": 10, "r": 0, "alpha": 1.0, "delta": 0.01},
            {"theta": 10, "r": 1, "alpha": 0.0, "delta": 0.01},
            {"theta": 10, "r": 1, "alpha": 1.0, "delta": 1.5},
        ],
    )
    def test_bad_inputs(self, kwargs):
        with pytest.raises(ConfigurationError):
            theta_c(**kwargs)


class TestTagIndex:
    def test_world_count(self):
        index = TagIndex(_graph(), "a", 5, rng=0)
        assert index.num_worlds == 5

    def test_worlds_only_contain_tag_edges(self):
        g = _graph()
        index = TagIndex(g, "b", 50, rng=0)
        b_edges = set(g.tag_edges("b")[0].tolist())
        for i in range(index.num_worlds):
            assert set(index.world(i).tolist()) <= b_edges

    def test_edge_survival_rate(self):
        g = _graph()
        index = TagIndex(g, "a", 4000, rng=0)
        # Edge 1 has p(e|a) = 0.9.
        hits = sum(
            1 in index.world(i).tolist() for i in range(index.num_worlds)
        )
        assert hits / 4000 == pytest.approx(0.9, abs=0.02)

    def test_universe_restriction(self):
        # _graph has 3 edges: 0:(0→1), 1:(1→2), 2:(2→3). Exclude edge 1.
        g = _graph()
        universe = np.array([True, False, True])
        index = TagIndex(g, "a", 30, edge_universe=universe, rng=0)
        for i in range(30):
            assert 1 not in index.world(i).tolist()

    def test_stored_edges_accounting(self):
        index = TagIndex(_graph(), "a", 10, rng=0)
        assert index.stored_edges == sum(
            index.world(i).size for i in range(10)
        )

    def test_world_out_of_range(self):
        index = TagIndex(_graph(), "a", 3, rng=0)
        with pytest.raises(IndexError_):
            index.world(3)

    def test_bad_count(self):
        with pytest.raises(ConfigurationError):
            TagIndex(_graph(), "a", 0, rng=0)

    def test_unknown_tag(self):
        with pytest.raises(InvalidQueryError):
            TagIndex(_graph(), "zz", 3, rng=0)


class TestIndexManager:
    def test_lazy_build_once(self):
        mgr = IndexManager(_graph())
        built_first = mgr.ensure_indexes(["a"], 5, rng=0)
        built_second = mgr.ensure_indexes(["a"], 99, rng=0)
        assert built_first == ["a"]
        assert built_second == []  # Lemma 3: never rebuilt or extended
        assert mgr.index_for("a").num_worlds == 5

    def test_build_all_tags(self):
        mgr = IndexManager(_graph())
        built = mgr.build_all_tags(3, rng=0)
        assert sorted(built) == ["a", "b"]
        assert mgr.indexed_tags == ("a", "b")

    def test_stats_accumulate(self):
        mgr = IndexManager(_graph())
        mgr.ensure_indexes(["a", "b"], 4, rng=0)
        assert mgr.stats.worlds_built == 8
        assert mgr.stats.tags_indexed == {"a", "b"}
        assert mgr.stats.size_bytes == mgr.stats.stored_edges * 8

    def test_missing_index_raises(self):
        mgr = IndexManager(_graph())
        with pytest.raises(IndexError_):
            mgr.index_for("a")

    def test_working_mask_union(self):
        mgr = IndexManager(_graph())
        mgr.ensure_indexes(["a", "b"], 1, rng=0)
        choices = {"a": 0, "b": 0}
        mask = mgr.working_mask(choices)
        union = set(mgr.index_for("a").world(0).tolist()) | set(
            mgr.index_for("b").world(0).tolist()
        )
        assert set(np.flatnonzero(mask).tolist()) == union

    def test_working_mask_buffer_reuse(self):
        mgr = IndexManager(_graph())
        mgr.ensure_indexes(["a"], 2, rng=0)
        buf = np.ones(_graph().num_edges, dtype=bool)
        mask = mgr.working_mask({"a": 0}, out=buf)
        assert mask is buf
        a_world = set(mgr.index_for("a").world(0).tolist())
        assert set(np.flatnonzero(mask).tolist()) == a_world

    def test_working_mask_bad_buffer(self):
        mgr = IndexManager(_graph())
        mgr.ensure_indexes(["a"], 1, rng=0)
        with pytest.raises(IndexError_):
            mgr.working_mask({"a": 0}, out=np.ones(2, dtype=bool))

    def test_covered_mask_full_by_default(self):
        mgr = IndexManager(_graph())
        assert mgr.covered_mask.all()
        assert not mgr.is_local

    def test_local_universe(self):
        universe = np.array([True, False, True])
        mgr = IndexManager(_graph(), edge_universe=universe)
        assert mgr.is_local
        assert np.array_equal(mgr.covered_mask, universe)

    def test_bad_universe_shape(self):
        with pytest.raises(IndexError_):
            IndexManager(_graph(), edge_universe=np.ones(9, dtype=bool))

    def test_sample_world_choices_in_range(self):
        mgr = IndexManager(_graph())
        mgr.ensure_indexes(["a", "b"], 3, rng=0)
        choices = mgr.sample_world_choices(["a", "b"], rng=0)
        assert set(choices) == {"a", "b"}
        assert all(0 <= v < 3 for v in choices.values())

    def test_unknown_tag_in_ensure(self):
        mgr = IndexManager(_graph())
        with pytest.raises(InvalidQueryError):
            mgr.ensure_indexes(["zzz"], 3, rng=0)


class TestLocalEdgeUniverse:
    def test_chain_region(self):
        builder = TagGraphBuilder(5)
        for u in range(4):
            builder.add(u, u + 1, "t", 0.5)
        g = builder.build()
        universe = local_edge_universe(g, [4], h=2)
        # Region nodes {2,3,4}; internal edges are 2→3 and 3→4.
        assert universe.tolist() == [False, False, True, True]

    def test_h_zero_no_edges(self):
        builder = TagGraphBuilder(3)
        builder.add(0, 1, "t", 0.5)
        builder.add(1, 2, "t", 0.5)
        g = builder.build()
        assert not local_edge_universe(g, [2], h=0).any()


class TestStats:
    def test_merge(self):
        a = IndexStats(worlds_built=2, stored_edges=10, build_seconds=1.0,
                       tags_indexed={"x"})
        b = IndexStats(worlds_built=3, stored_edges=5, build_seconds=0.5,
                       tags_indexed={"y"})
        a.merge(b)
        assert a.worlds_built == 5
        assert a.stored_edges == 15
        assert a.tags_indexed == {"x", "y"}

    def test_snapshot_is_independent(self):
        a = IndexStats(worlds_built=1, stored_edges=2, build_seconds=0.1,
                       tags_indexed={"x"})
        snap = a.snapshot()
        a.worlds_built = 99
        a.tags_indexed.add("z")
        assert snap.worlds_built == 1
        assert snap.tags_indexed == {"x"}

    def test_average_pairwise_common_empty(self):
        assert average_pairwise_common_indexes([]) == 0.0
        assert average_pairwise_common_indexes([{"a": 0}]) == 0.0

    def test_average_pairwise_common_identical(self):
        # Two working graphs using the exact same 2 indexes share 2.
        choices = [{"a": 0, "b": 1}, {"a": 0, "b": 1}]
        assert average_pairwise_common_indexes(choices) == pytest.approx(2.0)

    def test_average_pairwise_common_disjoint(self):
        choices = [{"a": 0}, {"a": 1}]
        assert average_pairwise_common_indexes(choices) == 0.0

    def test_average_matches_expectation_in_simulation(self):
        # Empirical C(G) should track Eq. 13 (Figure 7a's comparison).
        rng = np.random.default_rng(0)
        theta, tc, r = 400, 50, 4
        tags = [f"t{i}" for i in range(r)]
        choices = [
            {t: int(rng.integers(0, tc)) for t in tags} for _ in range(theta)
        ]
        empirical = average_pairwise_common_indexes(choices)
        expected = expected_pairwise_common_indexes(theta, tc, r)
        assert empirical == pytest.approx(expected, rel=0.25)

    def test_expected_formula(self):
        # E[C(G)] = (θ-θc)r / ((θ-1)θc)
        value = expected_pairwise_common_indexes(100, 10, 5)
        assert value == pytest.approx((100 - 10) * 5 / (99 * 10))

    def test_expected_clamps_to_zero(self):
        assert expected_pairwise_common_indexes(10, 50, 5) == 0.0
        assert expected_pairwise_common_indexes(1, 5, 5) == 0.0
