"""Golden regression tests: pinned outputs for fixed seeds.

These pin the exact behaviour of the deterministic pipeline on fixed
inputs. They are intentionally brittle: any change to RNG consumption
order, sampling logic, or selection tie-breaking shows up here first,
so unintended behavioural drift cannot slip through the statistical
tests. When a change is *intended*, update the pinned values and say
so in the commit.
"""

from __future__ import annotations

import pytest

from repro import SketchConfig, TagSelectionConfig, find_seeds, find_tags
from repro.datasets import bfs_targets, community_targets, yelp
from repro.tags import collect_paths

CFG = SketchConfig(pilot_samples=100, theta_min=300, theta_max=1000)
TAGS_CFG = TagSelectionConfig(
    per_pair_paths=5, rr_theta=500, max_path_targets=20
)


@pytest.fixture(scope="module")
def golden_dataset():
    return yelp(scale=0.2, seed=13)


class TestGoldenDataset:
    def test_graph_shape_pinned(self, golden_dataset):
        g = golden_dataset.graph
        assert (g.num_nodes, g.num_edges, g.num_tags) == (240, 1385, 26)

    def test_probability_mean_pinned(self, golden_dataset):
        chars = golden_dataset.characteristics()
        assert chars["prob_mean"] == pytest.approx(0.3184, abs=0.001)

    def test_targets_pinned(self, golden_dataset):
        targets = community_targets(golden_dataset, "vegas", size=10, rng=0)
        assert targets.tolist() == sorted(targets.tolist())
        assert len(targets) == 10

    def test_bfs_targets_deterministic(self, golden_dataset):
        a = bfs_targets(golden_dataset.graph, 12)
        b = bfs_targets(golden_dataset.graph, 12)
        assert a.tolist() == b.tolist()


class TestGoldenSelections:
    def test_trs_seeds_pinned(self, golden_dataset):
        targets = community_targets(golden_dataset, "vegas", size=30, rng=0)
        tags = golden_dataset.graph.tags[:5]
        first = find_seeds(
            golden_dataset.graph, targets, tags, 3,
            engine="trs", config=CFG, rng=123,
        )
        second = find_seeds(
            golden_dataset.graph, targets, tags, 3,
            engine="trs", config=CFG, rng=123,
        )
        assert first.seeds == second.seeds
        assert len(first.seeds) == 3

    def test_path_pool_pinned(self, golden_dataset):
        targets = community_targets(golden_dataset, "vegas", size=15, rng=0)
        seeds = [int(t) for t in targets[:2]]
        pool_a = collect_paths(
            golden_dataset.graph, seeds, targets, TAGS_CFG, rng=7
        )
        pool_b = collect_paths(
            golden_dataset.graph, seeds, targets, TAGS_CFG, rng=7
        )
        assert [p.edge_ids for p in pool_a] == [p.edge_ids for p in pool_b]
        assert [p.tag_choices for p in pool_a] == [
            p.tag_choices for p in pool_b
        ]

    def test_batch_tags_pinned(self, golden_dataset):
        targets = community_targets(golden_dataset, "vegas", size=15, rng=0)
        seeds = [int(t) for t in targets[:2]]
        first = find_tags(
            golden_dataset.graph, seeds, targets, 4,
            method="batch", config=TAGS_CFG, rng=11,
        )
        second = find_tags(
            golden_dataset.graph, seeds, targets, 4,
            method="batch", config=TAGS_CFG, rng=11,
        )
        assert first.tags == second.tags
        assert first.estimated_spread == pytest.approx(
            second.estimated_spread
        )


class TestGoldenFig9:
    """The Figure 9 outputs are fully deterministic — pin them exactly."""

    def test_batch_selection_exact(self, fig9_graph):
        cfg = TagSelectionConfig(
            per_pair_paths=10, prob_floor=0.0, evaluator_mode="exact"
        )
        sel = find_tags(
            fig9_graph, (0, 1, 2), (6, 7, 8), 3,
            method="batch", config=cfg, rng=0,
        )
        assert sel.tags == ("c4", "c5", "c6")
        assert sel.estimated_spread == pytest.approx(2.6272, abs=0.001)

    def test_individual_selection_exact(self, fig9_graph):
        cfg = TagSelectionConfig(
            per_pair_paths=10, prob_floor=0.0, evaluator_mode="exact"
        )
        sel = find_tags(
            fig9_graph, (0, 1, 2), (6, 7, 8), 3,
            method="individual", config=cfg, rng=0,
        )
        assert sel.tags == ("c2", "c3", "c5")
        assert sel.estimated_spread == pytest.approx(1.44, abs=0.001)
