"""Tests for the interaction-log substrate and the probability estimator."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.graphs import TagGraphBuilder
from repro.learning import (
    Interaction,
    InteractionLog,
    LearningConfig,
    learn_tag_graph,
    simulate_interaction_log,
)


class TestInteractionLog:
    def test_sorted_iteration(self):
        log = InteractionLog(
            [
                Interaction(5.0, 1, "a"),
                Interaction(1.0, 0, "a"),
                Interaction(3.0, 2, "b"),
            ]
        )
        times = [e.timestamp for e in log]
        assert times == sorted(times)

    def test_add_keeps_sorted(self):
        log = InteractionLog()
        log.add(1, "a", 10.0)
        log.add(0, "a", 5.0)
        assert [e.user for e in log] == [0, 1]

    def test_tags_and_users(self):
        log = InteractionLog(
            [Interaction(1.0, 3, "z"), Interaction(2.0, 1, "a")]
        )
        assert log.tags == ("a", "z")
        assert log.users == (1, 3)

    def test_first_adoptions(self):
        log = InteractionLog(
            [
                Interaction(1.0, 0, "a"),
                Interaction(2.0, 0, "a"),
                Interaction(3.0, 1, "a"),
                Interaction(4.0, 0, "b"),
            ]
        )
        assert log.first_adoptions("a") == {0: 1.0, 1: 3.0}

    def test_adoptions_all_events(self):
        log = InteractionLog(
            [
                Interaction(1.0, 0, "a"),
                Interaction(2.0, 0, "a"),
                Interaction(3.0, 1, "a"),
            ]
        )
        assert log.adoptions("a") == {0: [1.0, 2.0], 1: [3.0]}

    def test_len(self):
        assert len(InteractionLog([Interaction(1.0, 0, "a")])) == 1


class TestSimulateLog:
    @pytest.fixture
    def truth(self):
        builder = TagGraphBuilder(4)
        builder.add(0, 1, "hot", 0.9)
        builder.add(1, 2, "hot", 0.9)
        builder.add(0, 3, "cold", 0.1)
        return builder.build()

    def test_produces_events(self, truth):
        log = simulate_interaction_log(truth, 20, rng=0)
        assert len(log) >= 20  # at least the sources

    def test_temporal_order_along_cascade(self, truth):
        log = simulate_interaction_log(truth, 50, rng=0)
        # Within any episode (time bucket), child adoptions come after
        # parent adoptions — check via first_adoptions per episode gap.
        events = list(log)
        for a, b in zip(events, events[1:]):
            assert a.timestamp <= b.timestamp

    def test_episode_spacing_separates_cascades(self, truth):
        log = simulate_interaction_log(
            truth, 5, episode_spacing=1000.0, delay_scale=1.0, rng=0
        )
        buckets = {int(e.timestamp // 1000) for e in log}
        assert len(buckets) <= 5

    def test_bad_inputs(self, truth):
        with pytest.raises(InvalidQueryError):
            simulate_interaction_log(truth, 0, rng=0)
        with pytest.raises(InvalidQueryError):
            simulate_interaction_log(TagGraphBuilder(3).build(), 5, rng=0)

    def test_deterministic(self, truth):
        a = list(simulate_interaction_log(truth, 10, rng=7))
        b = list(simulate_interaction_log(truth, 10, rng=7))
        assert a == b


class TestLearningConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [{"window": 0.0}, {"a": 0.0}, {"min_frequency": 0}],
    )
    def test_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            LearningConfig(**kwargs)


class TestLearnTagGraph:
    def test_hand_built_log_exact_counts(self):
        # u=0 adopts "a" at t=0 and t=100; v=1 follows at t=5 and t=105.
        log = InteractionLog(
            [
                Interaction(0.0, 0, "a"),
                Interaction(5.0, 1, "a"),
                Interaction(100.0, 0, "a"),
                Interaction(105.0, 1, "a"),
            ]
        )
        cfg = LearningConfig(window=10.0, a=5.0)
        graph = learn_tag_graph(log, [(0, 1)], num_nodes=2, config=cfg)
        # Two credited events → t=2 → p = 1 - e^{-2/5}.
        assert graph.num_edges == 1
        assert graph.edge_tag_probability(0, "a") == pytest.approx(
            1 - math.exp(-2 / 5)
        )
        assert graph.src[0] == 0 and graph.dst[0] == 1  # direction u → v

    def test_direction_from_timestamps(self):
        log = InteractionLog(
            [Interaction(0.0, 1, "a"), Interaction(3.0, 0, "a")]
        )
        graph = learn_tag_graph(
            log, [(0, 1)], num_nodes=2, config=LearningConfig(window=10.0)
        )
        assert graph.src[0] == 1 and graph.dst[0] == 0

    def test_window_excludes_distant_events(self):
        log = InteractionLog(
            [Interaction(0.0, 0, "a"), Interaction(500.0, 1, "a")]
        )
        graph = learn_tag_graph(
            log, [(0, 1)], num_nodes=2, config=LearningConfig(window=10.0)
        )
        assert graph.num_edges == 0

    def test_non_friends_never_linked(self):
        log = InteractionLog(
            [Interaction(0.0, 0, "a"), Interaction(1.0, 2, "a")]
        )
        graph = learn_tag_graph(
            log, [(0, 1)], num_nodes=3, config=LearningConfig(window=10.0)
        )
        assert graph.num_edges == 0

    def test_min_frequency_cut(self):
        log = InteractionLog(
            [Interaction(0.0, 0, "a"), Interaction(1.0, 1, "a")]
        )
        cfg = LearningConfig(window=10.0, min_frequency=2)
        graph = learn_tag_graph(log, [(0, 1)], num_nodes=2, config=cfg)
        assert graph.num_edges == 0

    def test_both_directions_learnable(self):
        # u leads on "a"; v leads on "b": two directed edges emerge.
        log = InteractionLog(
            [
                Interaction(0.0, 0, "a"),
                Interaction(1.0, 1, "a"),
                Interaction(10.0, 1, "b"),
                Interaction(11.0, 0, "b"),
            ]
        )
        graph = learn_tag_graph(
            log, [(0, 1)], num_nodes=2, config=LearningConfig(window=5.0)
        )
        assert graph.num_edges == 2
        assert graph.edge_tag_probability(
            int(np.flatnonzero((graph.src == 0) & (graph.dst == 1))[0]), "a"
        ) > 0.0

    def test_round_trip_recovers_strong_edges(self):
        # Ground truth with one strong and one weak tag-edge; after many
        # episodes the learned probability for the strong edge should
        # clearly dominate the weak one.
        builder = TagGraphBuilder(3)
        builder.add(0, 1, "hot", 0.95)
        builder.add(0, 2, "mild", 0.15)
        truth = builder.build()
        log = simulate_interaction_log(
            truth, 150, delay_scale=1.0, rng=0
        )
        learned = learn_tag_graph(
            log, [(0, 1), (0, 2)], num_nodes=3,
            config=LearningConfig(window=20.0, a=20.0),
        )
        p_hot = _learned_prob(learned, 0, 1, "hot")
        p_mild = _learned_prob(learned, 0, 2, "mild")
        assert p_hot > p_mild
        assert p_hot > 0.5

    def test_learned_graph_drives_the_pipeline(self):
        # A learned graph is a first-class TagGraph: run seed selection.
        from repro.sketch import SketchConfig, trs_select_seeds

        builder = TagGraphBuilder(5)
        builder.add(0, 1, "t", 0.9)
        builder.add(1, 2, "t", 0.9)
        builder.add(3, 4, "t", 0.9)
        truth = builder.build()
        log = simulate_interaction_log(truth, 120, rng=0)
        learned = learn_tag_graph(
            log, [(0, 1), (1, 2), (3, 4)], num_nodes=5,
            config=LearningConfig(window=20.0, a=5.0),
        )
        assert learned.num_edges >= 2
        result = trs_select_seeds(
            learned, [1, 2], list(learned.tags), 1,
            SketchConfig(pilot_samples=50, theta_min=100, theta_max=300),
            rng=0,
        )
        assert result.seeds[0] in (0, 1)


def _learned_prob(graph, u, v, tag):
    for eid in range(graph.num_edges):
        if int(graph.src[eid]) == u and int(graph.dst[eid]) == v:
            return graph.edge_tag_probability(eid, tag)
    return 0.0


def truth_friendships(graph):
    return [
        (int(graph.src[e]), int(graph.dst[e]))
        for e in range(graph.num_edges)
    ]


class TestBernoulliMethod:
    def test_mle_probability(self):
        # u adopts "a" 4 times; v follows twice within the window:
        # p = 2/4 = 0.5.
        log = InteractionLog(
            [
                Interaction(0.0, 0, "a"),
                Interaction(1.0, 1, "a"),
                Interaction(100.0, 0, "a"),
                Interaction(101.0, 1, "a"),
                Interaction(200.0, 0, "a"),
                Interaction(300.0, 0, "a"),
            ]
        )
        cfg = LearningConfig(window=10.0, method="bernoulli")
        graph = learn_tag_graph(log, [(0, 1)], num_nodes=2, config=cfg)
        assert graph.num_edges == 1
        assert graph.edge_tag_probability(0, "a") == pytest.approx(0.5)

    def test_probability_never_exceeds_one(self):
        log = InteractionLog(
            [Interaction(0.0, 0, "a"), Interaction(1.0, 1, "a")]
        )
        cfg = LearningConfig(window=10.0, method="bernoulli")
        graph = learn_tag_graph(log, [(0, 1)], num_nodes=2, config=cfg)
        assert graph.edge_tag_probability(0, "a") == pytest.approx(1.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            LearningConfig(method="magic")

    def test_bernoulli_calibration_on_simulated_logs(self):
        # Ground-truth p = 0.6 on a single edge; the Bernoulli MLE over
        # many episodes should recover it closely.
        builder = TagGraphBuilder(2)
        builder.add(0, 1, "t", 0.6)
        truth = builder.build()
        log = simulate_interaction_log(truth, 400, rng=0)
        cfg = LearningConfig(window=50.0, method="bernoulli")
        learned = learn_tag_graph(log, [(0, 1)], num_nodes=2, config=cfg)
        # Only episodes whose random source was node 0 give trials;
        # among those, v follows with probability 0.6.
        assert learned.num_edges >= 1
        assert learned.edge_tag_probability(0, "t") == pytest.approx(
            0.6, abs=0.1
        )


class TestLogPersistence:
    def test_round_trip(self, tmp_path):
        log = InteractionLog(
            [
                Interaction(1.5, 0, "coffee & tea"),
                Interaction(2.25, 1, "arts"),
            ]
        )
        path = tmp_path / "log.csv"
        log.save(path)
        loaded = InteractionLog.load(path)
        assert list(loaded) == list(log)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,who,what\n")
        with pytest.raises(InvalidQueryError, match="header"):
            InteractionLog.load(path)

    def test_bad_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,user,tag\nnot-a-number,0,a\n")
        with pytest.raises(InvalidQueryError, match="unparsable"):
            InteractionLog.load(path)

    def test_missing_fields(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,user,tag\n1.0,0\n")
        with pytest.raises(InvalidQueryError, match="3 comma-separated"):
            InteractionLog.load(path)

    def test_tag_with_comma_preserved(self, tmp_path):
        # Tags may contain commas beyond the first two fields.
        log = InteractionLog([Interaction(1.0, 0, "a,b")])
        path = tmp_path / "log.csv"
        log.save(path)
        assert list(InteractionLog.load(path))[0].tag == "a,b"
