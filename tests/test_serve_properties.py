"""Property-based suite for the serving cache-key scheme.

The serving layer's correctness hinges on one invariant: two queries
share a cached RR asset **iff** they agree on
``(targets_digest, canonical tag set, θ-determining params)``. Both
directions matter — a missed share wastes work, a false share serves
wrong answers. Hypothesis explores the input space (permutations,
duplicates, single-node mutations, near-miss params) far beyond what
example tests cover.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidQueryError
from repro.serve.cache import AssetCache
from repro.serve.keys import (
    AssetKey,
    canonical_tags,
    config_digest,
    targets_digest,
)
from repro.sketch.theta import SketchConfig

NUM_NODES = 30

node_ids = st.integers(min_value=0, max_value=NUM_NODES - 1)
target_lists = st.lists(node_ids, min_size=1, max_size=12)
tag_pool = st.sampled_from(["c1", "c2", "c3", "c4", "c5", "c6"])
tag_lists = st.lists(tag_pool, min_size=1, max_size=6)


class TestTargetsDigest:
    @given(targets=target_lists, data=st.data())
    def test_digest_is_a_function_of_the_set(self, targets, data):
        """Permutations and duplicates never change the digest."""
        shuffled = data.draw(st.permutations(targets))
        duplicated = targets + [targets[0]]
        base = targets_digest(targets, NUM_NODES)
        assert targets_digest(shuffled, NUM_NODES) == base
        assert targets_digest(duplicated, NUM_NODES) == base

    @given(targets=target_lists, data=st.data())
    def test_single_node_mutation_changes_digest(self, targets, data):
        """Swapping one member for a non-member → different digest."""
        outside = data.draw(
            node_ids.filter(lambda n: n not in set(targets))
        )
        mutated = list(targets)
        mutated[data.draw(
            st.integers(min_value=0, max_value=len(targets) - 1)
        )] = outside
        # Mutation may drop the last copy of a node or not; either way
        # the *set* changed, so the digest must change.
        if set(mutated) != set(targets):
            assert (
                targets_digest(mutated, NUM_NODES)
                != targets_digest(targets, NUM_NODES)
            )

    @given(a=target_lists, b=target_lists)
    def test_digest_equality_iff_set_equality(self, a, b):
        same = targets_digest(a, NUM_NODES) == targets_digest(b, NUM_NODES)
        assert same == (set(a) == set(b))

    @given(targets=target_lists)
    def test_digest_validates_like_the_library(self, targets):
        """Out-of-range ids are rejected, not silently hashed."""
        try:
            targets_digest(targets + [NUM_NODES], NUM_NODES)
        except InvalidQueryError:
            pass
        else:  # pragma: no cover - the assert documents the intent
            raise AssertionError("out-of-range target accepted")


class TestCanonicalTags:
    @given(tags=tag_lists, data=st.data())
    def test_canonical_form_ignores_order_and_duplicates(self, tags, data):
        shuffled = data.draw(st.permutations(tags))
        assert canonical_tags(tags) == canonical_tags(shuffled)
        assert canonical_tags(tags) == canonical_tags(tags + tags)

    @given(tags=tag_lists)
    def test_canonical_form_is_sorted_and_unique(self, tags):
        canon = canonical_tags(tags)
        assert list(canon) == sorted(set(tags))


class TestCacheKeyedByThetaInputs:
    """Same asset iff (targets_digest, tag set, θ params) all match."""

    @staticmethod
    def _key(targets, tags, k, seed, config):
        return AssetKey(
            kind="trs_sketch",
            targets_digest=targets_digest(targets, NUM_NODES),
            tags=canonical_tags(tags),
            params=(k, seed, config_digest(config)),
        )

    @given(
        targets=target_lists, tags=tag_lists,
        k=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=9),
        data=st.data(),
    )
    @settings(max_examples=60)
    def test_equivalent_queries_share_one_build(
        self, targets, tags, k, seed, data
    ):
        """Permuted targets/tags with identical params → one build."""
        cache = AssetCache(max_bytes=1 << 20)
        builds = []

        def build():
            builds.append(1)
            return object(), 64, None

        config = SketchConfig()
        key_a = self._key(targets, tags, k, seed, config)
        key_b = self._key(
            data.draw(st.permutations(targets)),
            data.draw(st.permutations(tags)) + [tags[0]],
            k, seed, config,
        )
        asset_a, built_a = cache.get_or_build(key_a, build)
        asset_b, built_b = cache.get_or_build(key_b, build)
        assert key_a == key_b
        assert built_a and not built_b
        assert asset_b is asset_a
        assert len(builds) == 1

    @given(
        targets=target_lists, tags=tag_lists,
        k=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=9),
        data=st.data(),
    )
    @settings(max_examples=60)
    def test_any_theta_input_change_is_a_miss(
        self, targets, tags, k, seed, data
    ):
        """Mutating targets by one node, or any θ param, → distinct key."""
        cache = AssetCache(max_bytes=1 << 20)
        build_count = [0]

        def build():
            build_count[0] += 1
            return object(), 64, None

        config = SketchConfig()
        base = self._key(targets, tags, k, seed, config)
        cache.get_or_build(base, build)

        outside = data.draw(
            node_ids.filter(lambda n: n not in set(targets))
        )
        variants = [
            self._key(list(targets) + [outside], tags, k, seed, config),
            self._key(targets, tags, k + 1, seed, config),
            self._key(targets, tags, k, seed + 10, config),
            self._key(
                targets, tags, k, seed,
                SketchConfig(theta_max=config.theta_max + 1),
            ),
        ]
        remaining = sorted(
            {"c1", "c2", "c3", "c4", "c5", "c6"} - set(tags)
        )
        if remaining:
            extra_tag = data.draw(st.sampled_from(remaining))
            variants.append(
                self._key(targets, list(tags) + [extra_tag], k, seed, config)
            )
        for variant in variants:
            assert variant != base
            _asset, built_here = cache.get_or_build(variant, build)
            assert built_here
        assert build_count[0] == 1 + len(variants)
        # And the original is still a hit afterwards.
        _asset, built_here = cache.get_or_build(base, build)
        assert not built_here
        assert build_count[0] == 1 + len(variants)
