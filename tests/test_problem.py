"""Tests for JointQuery / JointResult / HistoryEntry."""

from __future__ import annotations

import pytest

from repro.core import HistoryEntry, JointQuery, JointResult
from repro.exceptions import InvalidQueryError
from repro.graphs import TagGraphBuilder


def _graph():
    builder = TagGraphBuilder(5)
    builder.add(0, 1, "a", 0.5)
    builder.add(1, 2, "b", 0.5)
    return builder.build()


class TestJointQuery:
    def test_normalizes_targets(self):
        q = JointQuery([3, 1, 3, 2], k=2, r=1)
        assert q.targets == (1, 2, 3)
        assert q.num_targets == 3

    def test_validate_ok(self):
        JointQuery([1, 2], k=2, r=2).validate(_graph())

    def test_empty_targets_rejected(self):
        with pytest.raises(InvalidQueryError):
            JointQuery([], k=1, r=1).validate(_graph())

    def test_target_out_of_range(self):
        with pytest.raises(InvalidQueryError):
            JointQuery([99], k=1, r=1).validate(_graph())

    def test_seed_budget_too_large(self):
        with pytest.raises(InvalidQueryError):
            JointQuery([1], k=99, r=1).validate(_graph())

    def test_tag_budget_too_large(self):
        with pytest.raises(InvalidQueryError):
            JointQuery([1], k=1, r=99).validate(_graph())

    def test_frozen(self):
        q = JointQuery([1], k=1, r=1)
        with pytest.raises(AttributeError):
            q.k = 5


class TestJointResult:
    def test_spread_fraction(self):
        result = JointResult(
            seeds=(0,), tags=("a",), spread=2.0,
            history=(HistoryEntry(0.0, (0,), ("a",), 2.0),),
            rounds=1, converged=True, elapsed_seconds=0.1,
        )
        assert result.spread_fraction(4) == pytest.approx(0.5)
        assert result.spread_fraction(0) == 0.0
