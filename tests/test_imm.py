"""Tests for the targeted IMM engine."""

from __future__ import annotations

import pytest

from repro import find_seeds
from repro.datasets import community_targets
from repro.graphs import TagGraphBuilder
from repro.sketch import SketchConfig, imm_select_seeds, trs_select_seeds

FAST = SketchConfig(pilot_samples=100, theta_min=200, theta_max=4000)


def _star_graph():
    builder = TagGraphBuilder(7)
    for v in range(1, 6):
        builder.add(0, v, "t", 1.0)
    return builder.build()


class TestIMM:
    def test_finds_obvious_hub(self):
        g = _star_graph()
        result = imm_select_seeds(g, [1, 2, 3, 4, 5], ["t"], 1, FAST, rng=0)
        assert result.seeds == (0,)
        assert result.estimated_spread == pytest.approx(5.0, abs=0.05)

    def test_lower_bound_is_valid(self):
        # True OPT for k=1 on the star is 5; LB must not exceed it much.
        g = _star_graph()
        result = imm_select_seeds(g, [1, 2, 3, 4, 5], ["t"], 1, FAST, rng=0)
        assert 1.0 <= result.lower_bound <= 5.5

    def test_theta_within_clamps(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=25, rng=0)
        result = imm_select_seeds(
            small_yelp.graph, targets, small_yelp.graph.tags[:5], 3,
            FAST, rng=0,
        )
        assert FAST.theta_min <= result.theta <= FAST.theta_max
        assert result.sampling_rounds >= 1

    def test_quality_matches_trs(self, small_yelp):
        from repro.diffusion import estimate_spread

        targets = community_targets(small_yelp, "vegas", size=25, rng=0)
        tags = small_yelp.graph.tags[:5]
        imm = imm_select_seeds(small_yelp.graph, targets, tags, 3, FAST, rng=0)
        trs = trs_select_seeds(small_yelp.graph, targets, tags, 3, FAST, rng=0)
        imm_v = estimate_spread(
            small_yelp.graph, imm.seeds, targets, tags,
            num_samples=400, rng=9,
        )
        trs_v = estimate_spread(
            small_yelp.graph, trs.seeds, targets, tags,
            num_samples=400, rng=9,
        )
        assert imm_v >= 0.8 * trs_v

    def test_respects_budget(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        result = imm_select_seeds(
            small_yelp.graph, targets, small_yelp.graph.tags[:4], 5,
            FAST, rng=0,
        )
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5

    def test_deterministic(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        tags = small_yelp.graph.tags[:4]
        a = imm_select_seeds(small_yelp.graph, targets, tags, 2, FAST, rng=4)
        b = imm_select_seeds(small_yelp.graph, targets, tags, 2, FAST, rng=4)
        assert a.seeds == b.seeds
        assert a.theta == b.theta

    def test_engine_dispatch(self):
        g = _star_graph()
        sel = find_seeds(
            g, [1, 2, 3], ["t"], 1, engine="imm", config=FAST, rng=0
        )
        assert sel.engine == "imm"
        assert sel.seeds == (0,)

    def test_ell_tightens_sampling(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        tags = small_yelp.graph.tags[:4]
        cfg = SketchConfig(pilot_samples=100, theta_min=10, theta_max=10**6)
        loose = imm_select_seeds(
            small_yelp.graph, targets, tags, 2, cfg, ell=0.5, rng=0
        )
        tight = imm_select_seeds(
            small_yelp.graph, targets, tags, 2, cfg, ell=2.0, rng=0
        )
        assert tight.theta >= loose.theta
