"""Property-based epoch safety for the versioned serving layer.

The dangerous failure mode of a mutable graph behind an asset cache is
*temporal aliasing*: a query at epoch ``e'`` being answered from an
asset computed at an earlier epoch ``e`` whose touch trace the edits
dirtied. The exact-key path is safe by construction (``epoch`` is a
key component), so these properties concentrate on the places where
keys are matched *loosely*: the degraded ``stale`` tier's
parameter-insensitive :meth:`AssetCache.find_stale` scan and the
``salvaged``-partial rung — both of which, before this PR's epoch
filter, would happily have crossed epochs.

Hypothesis drives randomized cache populations and seeded edit storms;
every property is checked against the real server execution path, not
a mock.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.joint import JointConfig
from repro.exceptions import QueryShedError
from repro.serve.cache import AssetCache
from repro.serve.keys import AssetKey
from repro.serve.qos import QosConfig
from repro.serve.server import CampaignServer
from repro.sketch import (
    SketchConfig,
    trs_build_repairable_sketch,
    trs_select_from_sketch,
)

from tests.test_mutable_differential import TAGS, EditStorm, make_graph

WAIT = 60.0

#: best_effort queries always land on the resident-cache-only rung.
STALE_ALWAYS = QosConfig(shed_threshold=1e-6, stale_threshold=1e-6)

SMALL_SKETCH = SketchConfig(theta_min=64, theta_max=256, pilot_samples=60)

KINDS = ("trs_sketch", "trs_sketch_partial", "result")
DIGESTS = ("d-one", "d-two")


class TestCacheEpochFiltering:
    """AssetCache-level properties (no server, microsecond-fast)."""

    @given(
        population=st.lists(
            st.tuples(
                st.sampled_from(KINDS),
                st.sampled_from(DIGESTS),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=4),
            ),
            max_size=16,
        ),
        kind=st.sampled_from(KINDS),
        digest=st.sampled_from(DIGESTS),
        query_epoch=st.integers(min_value=0, max_value=3),
    )
    def test_find_stale_never_crosses_epochs(
        self, population, kind, digest, query_epoch
    ):
        cache = AssetCache(max_bytes=1 << 20)
        for pkind, pdigest, epoch, param in population:
            key = AssetKey(pkind, pdigest, ("a",), (param,), epoch)
            cache.put(key, f"{pkind}@{epoch}/{param}", 64)
        hit = cache.find_stale(kind, digest, ("a",), epoch=query_epoch)
        if hit is not None:
            assert hit.key.kind == kind
            assert hit.key.targets_digest == digest
            assert hit.key.epoch == query_epoch
        else:
            # None only when genuinely nothing matches at that epoch.
            assert not any(
                k == kind and d == digest and e == query_epoch
                for k, d, e, _ in population
            )

    @given(
        epoch_a=st.integers(min_value=0, max_value=10),
        epoch_b=st.integers(min_value=0, max_value=10),
    )
    def test_epoch_is_a_key_component(self, epoch_a, epoch_b):
        base = ("trs_sketch", "digest", ("a",), (1, 2))
        ka = AssetKey(*base, epoch=epoch_a)
        kb = AssetKey(*base, epoch=epoch_b)
        assert (ka == kb) == (epoch_a == epoch_b)
        if epoch_a != epoch_b:
            cache = AssetCache(max_bytes=1 << 20)
            cache.put(ka, "old", 8)
            assert cache.peek(kb) is None

    def test_default_epoch_keeps_immutable_keys_stable(self):
        """4-field construction (pre-epoch call sites) still works."""
        key = AssetKey("result", "d", (), ("spread",))
        assert key.epoch == 0
        assert key == AssetKey("result", "d", (), ("spread",), epoch=0)

    @given(epochs=st.lists(st.integers(0, 5), min_size=2, max_size=8))
    def test_rekey_migrates_without_counter_noise(self, epochs):
        cache = AssetCache(max_bytes=1 << 20)
        keys = [
            AssetKey("trs_sketch", f"d{i}", (), (), e)
            for i, e in enumerate(epochs)
        ]
        for key in keys:
            cache.put(key, "v", 32)
        before = cache.stats()
        for key in keys:
            assert cache.rekey(key, key._replace(epoch=key.epoch + 1))
        after = cache.stats()
        assert after.hits == before.hits
        assert after.stale_hits == before.stale_hits
        assert after.entries == before.entries
        for key in keys:
            assert cache.peek(key) is None
            assert cache.peek(key._replace(epoch=key.epoch + 1)) is not None


class TestServerEpochSafety:
    """End-to-end properties through the real query path."""

    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        batch_size=st.integers(min_value=1, max_value=6),
        repair=st.booleans(),
    )
    def test_edits_migrate_every_resident_key(
        self, seed, batch_size, repair
    ):
        """After apply_edits, no resident key names a stale epoch, and
        the post-edit answer equals a cold library call at that epoch."""
        rng = np.random.default_rng(seed)
        graph = make_graph(rng, n=40, m=160)
        server = CampaignServer(
            graph,
            config=JointConfig(sketch=SMALL_SKETCH),
            mutable=True,
            pool_size=2,
        )
        try:
            targets = list(range(0, graph.num_nodes, 2))
            warm = server.find_seeds(
                targets, list(TAGS), 3, engine="trs", seed=7
            )
            assert warm.epoch == 0
            storm = EditStorm(graph, rng)
            edits = storm.batch(batch_size)
            if not edits:
                return
            summary = server.apply_edits(edits, repair=repair)
            assert summary["epoch"] == 1
            assert summary["previous_epoch"] == 0
            disposed = summary["assets"]
            assert (
                disposed["promoted"] + disposed["repaired"]
                + disposed["dropped"] >= 1
            )
            for key in server._cache.keys_snapshot():
                assert key.epoch == 1
            post = server.find_seeds(
                targets, list(TAGS), 3, engine="trs", seed=7
            )
            assert post.epoch == 1
            snap = server.mutable_graph.snapshot()
            cold = trs_build_repairable_sketch(
                snap, targets, TAGS, 3, seed=7,
                config=SMALL_SKETCH, mode="scalar",
            )
            expected = trs_select_from_sketch(snap, cold, 3)
            assert post.seeds == expected.seeds
        finally:
            server.close()

    def test_stale_tier_refuses_pre_edit_sketch(self):
        """The regression this PR guards against: a leaked old-epoch
        sketch must shed the stale-tier query, never answer it."""
        rng = np.random.default_rng(91)
        graph = make_graph(rng, n=40, m=160)
        server = CampaignServer(
            graph,
            config=JointConfig(sketch=SMALL_SKETCH),
            mutable=True,
            qos=STALE_ALWAYS,
            pool_size=2,
        )
        try:
            targets = list(range(0, graph.num_nodes, 2))
            snap0 = server.mutable_graph.snapshot()
            old_sketch = trs_build_repairable_sketch(
                snap0, targets, TAGS, 3, seed=0,
                config=SMALL_SKETCH, mode="scalar",
            )
            storm = EditStorm(graph, rng)
            server.apply_edits(storm.batch(4), repair=False)
            assert server.epoch == 1
            # Plant the pre-edit sketch as a leaked epoch-0 resident —
            # exactly what a missing epoch filter would happily serve.
            from repro.serve.keys import canonical_tags, targets_digest

            tdigest = targets_digest(targets, graph.num_nodes)
            tags_c = canonical_tags(TAGS)
            leaked = AssetKey(
                "trs_sketch", tdigest, tags_c, (3, 99, "other-params"),
                epoch=0,
            )
            server._cache.put(leaked, old_sketch, old_sketch.nbytes)
            future = server.submit_find_seeds(
                targets, list(TAGS), 3, engine="trs", seed=5,
                qos_class="best_effort",
            )
            with pytest.raises(QueryShedError):
                future.result(timeout=WAIT)
        finally:
            server.close()

    def test_stale_tier_serves_matching_epoch(self):
        """Same-epoch param-mismatched sketches still serve ``stale``."""
        rng = np.random.default_rng(92)
        graph = make_graph(rng, n=40, m=160)
        server = CampaignServer(
            graph,
            config=JointConfig(sketch=SMALL_SKETCH),
            mutable=True,
            qos=STALE_ALWAYS,
            pool_size=2,
        )
        try:
            targets = list(range(0, graph.num_nodes, 2))
            storm = EditStorm(graph, rng)
            server.apply_edits(storm.batch(3))
            warm = server.find_seeds(
                targets, list(TAGS), 3, engine="trs", seed=0,
                qos_class="interactive",
            )
            assert warm.epoch == 1
            resp = server.find_seeds(
                targets, list(TAGS), 3, engine="trs", seed=5,
                qos_class="best_effort",
            )
            assert resp.tier == "stale"
            assert resp.epoch == 1
        finally:
            server.close()

    def test_salvaged_tier_refuses_pre_edit_partial(self):
        """The salvaged rung applies the same epoch filter."""
        rng = np.random.default_rng(93)
        graph = make_graph(rng, n=40, m=160)
        server = CampaignServer(
            graph,
            config=JointConfig(sketch=SMALL_SKETCH),
            mutable=True,
            qos=STALE_ALWAYS,
            pool_size=2,
        )
        try:
            from repro.serve.keys import canonical_tags, targets_digest

            targets = list(range(0, graph.num_nodes, 2))
            storm = EditStorm(graph, rng)
            server.apply_edits(storm.batch(3), repair=False)

            class FakePartial:
                seeds = (1, 2, 3)
                estimated_spread = 4.0
                theta = 10

            leaked = AssetKey(
                "trs_sketch_partial",
                targets_digest(targets, graph.num_nodes),
                canonical_tags(TAGS),
                ("whatever",),
                epoch=0,
            )
            server._cache.put(leaked, FakePartial(), 64)
            future = server.submit_find_seeds(
                targets, list(TAGS), 3, engine="trs", seed=5,
                qos_class="best_effort",
            )
            with pytest.raises(QueryShedError):
                future.result(timeout=WAIT)
        finally:
            server.close()
