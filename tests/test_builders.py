"""Tests for TagGraphBuilder and graph_from_quadruples."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphConstructionError
from repro.graphs import TagGraphBuilder, graph_from_quadruples


class TestBuilder:
    def test_reuses_edge_id_for_same_pair(self):
        b = TagGraphBuilder(2)
        b.add(0, 1, "a", 0.3).add(0, 1, "b", 0.4)
        g = b.build()
        assert g.num_edges == 1
        assert g.edge_tag_map(0) == {"a": 0.3, "b": 0.4}

    def test_distinct_pairs_get_distinct_edges(self):
        b = TagGraphBuilder(3)
        b.add(0, 1, "a", 0.3).add(1, 0, "a", 0.4).add(1, 2, "a", 0.5)
        assert b.build().num_edges == 3

    def test_duplicate_assignment_rejected(self):
        b = TagGraphBuilder(2)
        b.add(0, 1, "a", 0.3)
        with pytest.raises(GraphConstructionError, match="duplicate"):
            b.add(0, 1, "a", 0.5)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphConstructionError, match="self-loop"):
            TagGraphBuilder(2).add(1, 1, "a", 0.3)

    def test_out_of_range_node(self):
        with pytest.raises(GraphConstructionError):
            TagGraphBuilder(2).add(0, 2, "a", 0.3)

    def test_bad_probability(self):
        with pytest.raises(GraphConstructionError):
            TagGraphBuilder(2).add(0, 1, "a", 0.0)

    def test_negative_node_count(self):
        with pytest.raises(GraphConstructionError):
            TagGraphBuilder(-2)

    def test_add_undirected(self):
        b = TagGraphBuilder(2)
        b.add_undirected(0, 1, "a", 0.3)
        g = b.build()
        assert g.num_edges == 2
        assert g.edge_tag_probability(0, "a") == pytest.approx(0.3)
        assert g.edge_tag_probability(1, "a") == pytest.approx(0.3)

    def test_num_edges_property(self):
        b = TagGraphBuilder(3)
        assert b.num_edges == 0
        b.add(0, 1, "a", 0.3)
        assert b.num_edges == 1

    def test_chaining_returns_self(self):
        b = TagGraphBuilder(2)
        assert b.add(0, 1, "a", 0.3) is b

    def test_empty_build(self):
        g = TagGraphBuilder(4).build()
        assert g.num_nodes == 4
        assert g.num_edges == 0


class TestGraphFromQuadruples:
    def test_round_trip(self):
        rows = [(0, 1, "a", 0.2), (1, 2, "b", 0.7), (0, 1, "b", 0.1)]
        g = graph_from_quadruples(3, rows)
        assert g.num_edges == 2
        assert g.edge_tag_map(0) == {"a": 0.2, "b": 0.1}

    def test_empty(self):
        g = graph_from_quadruples(2, [])
        assert g.num_edges == 0

    def test_propagates_errors(self):
        with pytest.raises(GraphConstructionError):
            graph_from_quadruples(2, [(0, 1, "a", 2.0)])
