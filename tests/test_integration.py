"""End-to-end integration tests across modules.

These run the whole pipeline — dataset → targets → joint optimization →
independent verification — plus cross-estimator agreement checks that
tie the sketch/index layers back to the exact oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    JointConfig,
    JointQuery,
    SketchConfig,
    TagSelectionConfig,
    baseline_greedy,
    estimate_spread,
    find_seeds,
    find_tags,
    jointly_select,
)
from repro.core import BaselineConfig, frequency_tags, random_tags
from repro.datasets import bfs_targets, community_targets, yelp
from repro.diffusion import exact_spread
from repro.index import make_lltrs_manager, make_ltrs_manager
from repro.index.itrs import indexed_select_seeds

FAST_SKETCH = SketchConfig(pilot_samples=100, theta_min=300, theta_max=1200)
FAST_TAGS = TagSelectionConfig(
    per_pair_paths=5, rr_theta=600, max_path_targets=25
)


class TestEstimatorAgreement:
    """TRS, indexed TRS, MC, and exact must tell the same story."""

    def test_all_estimators_agree_on_fig9(self, fig9_graph):
        tags = ["c4", "c5", "c6"]
        seeds = [0, 1, 2]
        targets = [6, 7, 8]
        truth = exact_spread(fig9_graph, seeds, targets, tags)
        mc = estimate_spread(
            fig9_graph, seeds, targets, tags, num_samples=8000, rng=0
        )
        assert mc == pytest.approx(truth, abs=0.08)

    def test_index_engines_match_trs_spread(self, small_yelp):
        targets = community_targets(small_yelp, "toronto", size=25, rng=0)
        tags = frequency_tags(small_yelp.graph, targets, 5)
        results = {}
        for engine in ("trs", "ltrs", "lltrs"):
            sel = find_seeds(
                small_yelp.graph, targets, tags, 3,
                engine=engine, config=FAST_SKETCH, rng=0,
            )
            # Evaluate all seed sets by one independent MC estimator.
            results[engine] = estimate_spread(
                small_yelp.graph, sel.seeds, targets, tags,
                num_samples=500, rng=42,
            )
        top = max(results.values())
        for engine, value in results.items():
            assert value >= 0.7 * top, (engine, results)


class TestFullPipeline:
    def test_yelp_city_campaign(self, small_yelp):
        targets = community_targets(small_yelp, "pittsburgh", size=25, rng=0)
        query = JointQuery(targets, k=3, r=5)
        cfg = JointConfig(
            max_rounds=2, sketch=FAST_SKETCH, tag_config=FAST_TAGS,
            eval_samples=100,
        )
        result = jointly_select(small_yelp.graph, query, cfg, rng=0)
        assert len(result.seeds) == 3
        assert 0 < len(result.tags) <= 5
        assert result.spread > 0

    def test_bfs_targets_pipeline(self, small_lastfm):
        targets = bfs_targets(small_lastfm.graph, 30)
        query = JointQuery(targets, k=3, r=4)
        cfg = JointConfig(
            max_rounds=2, sketch=FAST_SKETCH, tag_config=FAST_TAGS,
            eval_samples=100,
        )
        result = jointly_select(small_lastfm.graph, query, cfg, rng=0)
        assert result.spread > 0

    def test_selected_tags_beat_random_tags(self, small_yelp):
        # The case-study claim in miniature: optimized tags out-spread
        # random ones for the same seeds.
        targets = community_targets(small_yelp, "vegas", size=25, rng=0)
        seeds = find_seeds(
            small_yelp.graph, targets, small_yelp.graph.tags, 3,
            engine="trs", config=FAST_SKETCH, rng=0,
        ).seeds
        chosen = find_tags(
            small_yelp.graph, seeds, targets, 5,
            method="batch", config=FAST_TAGS, rng=0,
        ).tags
        rng = np.random.default_rng(0)
        random_spreads = []
        for _ in range(5):
            rtags = random_tags(small_yelp.graph, 5, rng=rng)
            random_spreads.append(
                estimate_spread(
                    small_yelp.graph, seeds, targets, rtags,
                    num_samples=300, rng=1,
                )
            )
        chosen_spread = estimate_spread(
            small_yelp.graph, seeds, targets, chosen,
            num_samples=300, rng=1,
        )
        assert chosen_spread > np.mean(random_spreads)

    def test_ltrs_manager_shared_between_calls_and_framework(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        tags = frequency_tags(small_yelp.graph, targets, 4)
        mgr = make_ltrs_manager(small_yelp.graph)
        first = indexed_select_seeds(
            small_yelp.graph, targets, tags, 2, mgr, FAST_SKETCH, rng=0
        )
        built_after_first = mgr.stats.worlds_built
        second = indexed_select_seeds(
            small_yelp.graph, targets, list(tags[:2]) + [
                t for t in small_yelp.graph.tags if t not in tags
            ][:2],
            2, mgr, FAST_SKETCH, rng=1,
        )
        # Only the two genuinely new tags triggered builds.
        assert mgr.stats.worlds_built > built_after_first
        assert first.seeds and second.seeds

    def test_lltrs_local_region_respected(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        mgr = make_lltrs_manager(small_yelp.graph, targets, FAST_SKETCH)
        tags = frequency_tags(small_yelp.graph, targets, 4)
        indexed_select_seeds(
            small_yelp.graph, targets, tags, 2, mgr, FAST_SKETCH, rng=0
        )
        covered = mgr.covered_mask
        for tag in mgr.indexed_tags:
            index = mgr.index_for(tag)
            for w in range(index.num_worlds):
                assert covered[index.world(w)].all()

    def test_baseline_and_iterative_same_interface(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        query = JointQuery(targets, k=2, r=3)
        iterative = jointly_select(
            small_yelp.graph, query,
            JointConfig(
                max_rounds=1, sketch=FAST_SKETCH, tag_config=FAST_TAGS,
                eval_samples=60,
            ),
            rng=0,
        )
        base = baseline_greedy(
            small_yelp.graph, query,
            BaselineConfig(rr_samples=150, eval_samples=40), rng=0,
        )
        for result in (iterative, base):
            assert len(result.seeds) == 2
            assert result.history
            assert result.elapsed_seconds > 0


class TestScaleKnob:
    def test_datasets_scale_linearly(self):
        small = yelp(scale=0.1)
        large = yelp(scale=0.3)
        ratio = large.graph.num_nodes / small.graph.num_nodes
        assert ratio == pytest.approx(3.0, rel=0.1)
        edge_ratio = large.graph.num_edges / small.graph.num_edges
        assert 2.0 < edge_ratio < 4.5
