"""Tests for TagGraph TSV serialization."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphConstructionError
from repro.graphs import TagGraphBuilder, load_tag_graph, save_tag_graph


def _graph():
    builder = TagGraphBuilder(4)
    builder.add(0, 1, "coffee & tea", 0.25)
    builder.add(0, 1, "arts", 0.9)
    builder.add(2, 3, "arts", 0.123456789)
    return builder.build()


class TestRoundTrip:
    def test_round_trip_equal(self, tmp_path):
        g = _graph()
        path = tmp_path / "g.tsv"
        save_tag_graph(g, path)
        assert load_tag_graph(path) == g

    def test_isolated_nodes_survive(self, tmp_path):
        g = TagGraphBuilder(10).build()
        path = tmp_path / "empty.tsv"
        save_tag_graph(g, path)
        assert load_tag_graph(path).num_nodes == 10

    def test_probabilities_exact(self, tmp_path):
        g = _graph()
        path = tmp_path / "g.tsv"
        save_tag_graph(g, path)
        loaded = load_tag_graph(path)
        assert loaded.edge_tag_probability(1, "arts") == pytest.approx(
            0.123456789, abs=0
        )

    def test_tags_with_spaces_survive(self, tmp_path):
        path = tmp_path / "g.tsv"
        save_tag_graph(_graph(), path)
        assert "coffee & tea" in load_tag_graph(path).tags


class TestMalformedFiles:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\t1\ta\t0.5\n")
        with pytest.raises(GraphConstructionError, match="header"):
            load_tag_graph(path)

    def test_unparsable_header(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("# nodes=abc\n")
        with pytest.raises(GraphConstructionError, match="unparsable"):
            load_tag_graph(path)

    def test_wrong_column_count(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("# nodes=3\n0\t1\ta\n")
        with pytest.raises(GraphConstructionError, match="4 tab-separated"):
            load_tag_graph(path)

    def test_unparsable_number(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("# nodes=3\n0\t1\ta\tNaNope\n")
        with pytest.raises(GraphConstructionError, match="unparsable"):
            load_tag_graph(path)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "ok.tsv"
        path.write_text("# nodes=2\n\n# a comment\n0\t1\ta\t0.5\n")
        g = load_tag_graph(path)
        assert g.num_edges == 1
