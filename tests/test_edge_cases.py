"""Edge cases and failure injection across the stack.

Degenerate-but-legal inputs: tagless edges, unreachable targets,
single-node graphs, saturated budgets, empty path pools, and queries
against tags whose probability mass is zero everywhere near the target.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    JointConfig,
    JointQuery,
    SketchConfig,
    TagSelectionConfig,
    estimate_spread,
    find_seeds,
    find_tags,
    jointly_select,
)
from repro.diffusion import exact_spread
from repro.graphs import TagGraphBuilder
from repro.sketch import trs_select_seeds
from repro.tags import collect_paths

FAST = SketchConfig(pilot_samples=50, theta_min=100, theta_max=400)
TAGS_FAST = TagSelectionConfig(per_pair_paths=3, mc_samples=50, rr_theta=200)


def _islands_graph():
    """Two disconnected components: {0→1} tagged 'a', {2→3} tagged 'b'."""
    builder = TagGraphBuilder(4)
    builder.add(0, 1, "a", 0.9)
    builder.add(2, 3, "b", 0.9)
    return builder.build()


class TestUnreachableTargets:
    def test_trs_returns_budget_even_when_unreachable(self):
        g = _islands_graph()
        # Target 3 is unreachable via tag 'a' (its component is 'b').
        result = trs_select_seeds(g, [3], ["a"], 1, FAST, rng=0)
        assert len(result.seeds) == 1
        # Seeding the target itself is the only way to influence it.
        assert result.seeds == (3,)

    def test_spread_estimates_zero_for_wrong_tag(self):
        g = _islands_graph()
        spread = estimate_spread(g, [0], [3], ["a"], num_samples=100, rng=0)
        assert spread == 0.0

    def test_exact_spread_zero_for_wrong_tag(self):
        g = _islands_graph()
        assert exact_spread(g, [0], [3], ["a"]) == 0.0

    def test_find_tags_with_no_connecting_paths(self):
        g = _islands_graph()
        # Seed 0 cannot reach target 3 at all: no paths, empty selection.
        sel = find_tags(g, [0], [3], 1, config=TAGS_FAST, rng=0)
        assert sel.tags == ()
        assert sel.estimated_spread == 0.0

    def test_collect_paths_empty(self):
        g = _islands_graph()
        assert collect_paths(g, [0], [3], TAGS_FAST, rng=0) == []


class TestDegenerateGraphs:
    def test_single_edge_graph_joint(self):
        builder = TagGraphBuilder(2)
        builder.add(0, 1, "only", 0.8)
        g = builder.build()
        cfg = JointConfig(
            max_rounds=1, sketch=FAST, tag_config=TAGS_FAST, eval_samples=50
        )
        result = jointly_select(g, JointQuery([1], k=1, r=1), cfg, rng=0)
        assert result.seeds in ((0,), (1,))
        assert result.tags == ("only",)

    def test_all_nodes_are_targets_and_seeds(self):
        builder = TagGraphBuilder(3)
        builder.add(0, 1, "t", 0.5)
        builder.add(1, 2, "t", 0.5)
        g = builder.build()
        # k = n: every node is a seed → all 3 targets influenced.
        result = trs_select_seeds(g, [0, 1, 2], ["t"], 3, FAST, rng=0)
        assert sorted(result.seeds) == [0, 1, 2]
        assert result.estimated_spread == pytest.approx(3.0, abs=0.01)

    def test_probability_one_everywhere(self):
        builder = TagGraphBuilder(4)
        for u in range(3):
            builder.add(u, u + 1, "t", 1.0)
        g = builder.build()
        spread = estimate_spread(g, [0], [1, 2, 3], ["t"], num_samples=10)
        assert spread == 3.0

    def test_tag_with_single_low_probability_edge(self):
        builder = TagGraphBuilder(2)
        builder.add(0, 1, "rare", 0.01)
        g = builder.build()
        value = exact_spread(g, [0], [1], ["rare"])
        assert value == pytest.approx(0.01)


class TestBudgetSaturation:
    def test_tag_budget_equal_to_vocabulary(self, fig9_graph):
        sel = find_tags(
            fig9_graph, [0, 1, 2], [6, 7, 8], fig9_graph.num_tags,
            config=TagSelectionConfig(
                per_pair_paths=10, prob_floor=0.0, evaluator_mode="exact"
            ),
            rng=0,
        )
        assert len(sel.tags) <= fig9_graph.num_tags

    def test_seed_budget_equal_to_nodes(self, line_graph):
        result = trs_select_seeds(
            line_graph, [3], ["a", "b", "c"], line_graph.num_nodes,
            FAST, rng=0,
        )
        assert len(result.seeds) == line_graph.num_nodes

    def test_joint_with_k_equals_targets(self):
        builder = TagGraphBuilder(4)
        builder.add(0, 1, "t", 0.3)
        builder.add(0, 2, "t", 0.3)
        builder.add(0, 3, "t", 0.3)
        g = builder.build()
        cfg = JointConfig(
            max_rounds=1, sketch=FAST, tag_config=TAGS_FAST, eval_samples=50
        )
        result = jointly_select(g, JointQuery([1, 2, 3], k=3, r=1), cfg, rng=0)
        # Seeding all three targets directly influences all of them.
        assert result.spread == pytest.approx(3.0, abs=0.2)


class TestEngineFallbacks:
    def test_lltrs_with_h_zero(self):
        # h=0 region contains only targets: every edge is uncovered and
        # handled by online coins — engine still works.
        builder = TagGraphBuilder(3)
        builder.add(0, 1, "t", 1.0)
        builder.add(1, 2, "t", 1.0)
        g = builder.build()
        cfg = SketchConfig(
            pilot_samples=50, theta_min=100, theta_max=200, h=0
        )
        sel = find_seeds(g, [2], ["t"], 1, engine="lltrs", config=cfg, rng=0)
        assert sel.seeds == (0,)

    def test_trs_on_edgeless_tag_subset(self):
        builder = TagGraphBuilder(3)
        builder.add(0, 1, "a", 0.5)
        builder.add(1, 2, "b", 0.5)
        g = builder.build()
        # Tag 'b' only: node 0 is useless, seed should be 1 (or 2).
        result = trs_select_seeds(g, [2], ["b"], 1, FAST, rng=0)
        assert result.seeds[0] in (1, 2)

    def test_greedy_mc_zero_probability_universe(self):
        from repro.seeds import greedy_mc_select_seeds

        builder = TagGraphBuilder(3)
        builder.add(0, 1, "a", 0.5)
        g = builder.build()
        # Tag 'a' never reaches target 2; all gains are zero but the
        # budget is still honoured.
        result = greedy_mc_select_seeds(
            g, [2], ["a"], 2, num_samples=20, rng=0
        )
        assert len(result.seeds) <= 2


class TestNumericalRobustness:
    def test_tiny_probabilities_dont_break_paths(self):
        builder = TagGraphBuilder(3)
        builder.add(0, 1, "t", 1e-6)
        builder.add(1, 2, "t", 1e-6)
        g = builder.build()
        cfg = TagSelectionConfig(per_pair_paths=3, prob_floor=0.0)
        paths = collect_paths(g, [0], [2], cfg, rng=0)
        assert len(paths) == 1
        assert paths[0].probability == pytest.approx(1e-12, rel=1e-6)

    def test_estimate_spread_with_duplicate_targets(self, line_graph):
        a = estimate_spread(
            line_graph, [0], [3, 3, 3], ["a", "b", "c"],
            num_samples=500, rng=0,
        )
        b = estimate_spread(
            line_graph, [0], [3], ["a", "b", "c"],
            num_samples=500, rng=0,
        )
        assert a == pytest.approx(b)

    def test_mask_dtype_tolerance(self, line_graph):
        from repro.diffusion import reachable_targets

        mask = np.ones(line_graph.num_edges, dtype=bool)
        assert reachable_targets(line_graph, [0], [3], mask) == 1
