"""Tests for on-disk index persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import community_targets
from repro.exceptions import IndexError_
from repro.graphs import TagGraphBuilder
from repro.index import (
    indexed_select_seeds,
    load_index,
    make_lltrs_manager,
    make_ltrs_manager,
    save_index,
)
from repro.sketch import SketchConfig

FAST = SketchConfig(pilot_samples=60, theta_min=150, theta_max=600)


def _graph():
    builder = TagGraphBuilder(5)
    builder.add(0, 1, "a", 0.6)
    builder.add(1, 2, "a", 0.7)
    builder.add(1, 2, "b", 0.3)
    builder.add(2, 3, "b", 0.8)
    builder.add(3, 4, "a", 0.9)
    return builder.build()


class TestRoundTrip:
    def test_worlds_identical(self, tmp_path):
        g = _graph()
        mgr = make_ltrs_manager(g)
        mgr.ensure_indexes(["a", "b"], 6, rng=0)
        save_index(mgr, tmp_path)
        loaded = load_index(g, tmp_path)
        assert loaded.indexed_tags == mgr.indexed_tags
        for tag in mgr.indexed_tags:
            original = mgr.index_for(tag)
            restored = loaded.index_for(tag)
            assert restored.num_worlds == original.num_worlds
            for i in range(original.num_worlds):
                assert np.array_equal(restored.world(i), original.world(i))

    def test_stats_restored(self, tmp_path):
        g = _graph()
        mgr = make_ltrs_manager(g)
        mgr.ensure_indexes(["a"], 4, rng=0)
        save_index(mgr, tmp_path)
        loaded = load_index(g, tmp_path)
        assert loaded.stats.worlds_built == mgr.stats.worlds_built
        assert loaded.stats.stored_edges == mgr.stats.stored_edges

    def test_bytes_written_positive(self, tmp_path):
        g = _graph()
        mgr = make_ltrs_manager(g)
        mgr.ensure_indexes(["a"], 4, rng=0)
        assert save_index(mgr, tmp_path) > 0

    def test_local_universe_survives(self, small_yelp, tmp_path):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        mgr = make_lltrs_manager(small_yelp.graph, targets, FAST)
        mgr.ensure_indexes(small_yelp.graph.tags[:3], 5, rng=0)
        save_index(mgr, tmp_path)
        loaded = load_index(small_yelp.graph, tmp_path)
        assert loaded.is_local
        assert np.array_equal(loaded.covered_mask, mgr.covered_mask)

    def test_identical_query_answers(self, small_yelp, tmp_path):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        tags = small_yelp.graph.tags[:4]
        mgr = make_ltrs_manager(small_yelp.graph)
        mgr.ensure_indexes(tags, 8, rng=0)
        save_index(mgr, tmp_path)
        loaded = load_index(small_yelp.graph, tmp_path)
        before = indexed_select_seeds(
            small_yelp.graph, targets, tags, 2, mgr, FAST, rng=42
        )
        after = indexed_select_seeds(
            small_yelp.graph, targets, tags, 2, loaded, FAST, rng=42
        )
        assert before.seeds == after.seeds
        assert before.estimated_spread == pytest.approx(
            after.estimated_spread
        )


class TestFailureModes:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(IndexError_, match="manifest"):
            load_index(_graph(), tmp_path)

    def test_wrong_graph_rejected(self, tmp_path):
        g = _graph()
        mgr = make_ltrs_manager(g)
        mgr.ensure_indexes(["a"], 3, rng=0)
        save_index(mgr, tmp_path)
        other = TagGraphBuilder(2)
        other.add(0, 1, "a", 0.5)
        with pytest.raises(IndexError_, match="edges"):
            load_index(other.build(), tmp_path)

    def test_missing_tag_file(self, tmp_path):
        g = _graph()
        mgr = make_ltrs_manager(g)
        mgr.ensure_indexes(["a", "b"], 3, rng=0)
        save_index(mgr, tmp_path)
        (tmp_path / "tag_00000.npz").unlink()
        with pytest.raises(IndexError_, match="missing index file"):
            load_index(g, tmp_path)

    def test_empty_manager_round_trips(self, tmp_path):
        g = _graph()
        mgr = make_ltrs_manager(g)
        save_index(mgr, tmp_path)
        loaded = load_index(g, tmp_path)
        assert loaded.indexed_tags == ()
