"""Tests for RR-set sampling (online coins and fixed-world variants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidQueryError
from repro.sketch import reverse_reachable_set, rr_set_from_edge_mask, sample_rr_sets


class TestReverseReachableSet:
    def test_contains_root(self, line_graph):
        rr = reverse_reachable_set(
            line_graph, 0, np.zeros(line_graph.num_edges), rng=0
        )
        assert rr.tolist() == [0]

    def test_certain_chain_collects_ancestors(self, line_graph):
        rr = reverse_reachable_set(
            line_graph, 3, np.ones(line_graph.num_edges), rng=0
        )
        assert sorted(rr.tolist()) == [0, 1, 2, 3]

    def test_source_has_no_ancestors(self, line_graph):
        rr = reverse_reachable_set(
            line_graph, 0, np.ones(line_graph.num_edges), rng=0
        )
        assert rr.tolist() == [0]

    def test_membership_rate_matches_reachability(self, line_graph):
        # P(node 2 ∈ RR(3)) = p(edge 2→3) = 0.5.
        probs = np.array([0.5, 0.5, 0.5])
        rng = np.random.default_rng(0)
        hits = sum(
            2 in reverse_reachable_set(line_graph, 3, probs, rng).tolist()
            for _ in range(4000)
        )
        assert hits / 4000 == pytest.approx(0.5, abs=0.03)

    def test_bad_root_raises(self, line_graph):
        with pytest.raises(InvalidQueryError):
            reverse_reachable_set(line_graph, 42, np.ones(3), rng=0)


class TestRRSetFromEdgeMask:
    def test_fixed_world(self, line_graph):
        mask = np.array([True, False, True])
        rr = rr_set_from_edge_mask(line_graph, 3, mask)
        assert sorted(rr.tolist()) == [2, 3]

    def test_full_world(self, diamond_graph):
        mask = np.ones(diamond_graph.num_edges, dtype=bool)
        rr = rr_set_from_edge_mask(diamond_graph, 3, mask)
        assert sorted(rr.tolist()) == [0, 1, 2, 3]

    def test_empty_world(self, diamond_graph):
        mask = np.zeros(diamond_graph.num_edges, dtype=bool)
        rr = rr_set_from_edge_mask(diamond_graph, 3, mask)
        assert rr.tolist() == [3]

    def test_deterministic(self, diamond_graph):
        mask = np.array([True, True, False, True])
        a = rr_set_from_edge_mask(diamond_graph, 3, mask)
        b = rr_set_from_edge_mask(diamond_graph, 3, mask)
        assert np.array_equal(np.sort(a), np.sort(b))

    def test_wrong_mask_shape(self, line_graph):
        with pytest.raises(InvalidQueryError):
            rr_set_from_edge_mask(line_graph, 0, np.ones(99, dtype=bool))


class TestSampleRRSets:
    def test_count(self, line_graph):
        rr_sets = sample_rr_sets(
            line_graph, [2, 3], np.ones(3), theta=25, rng=0
        )
        assert len(rr_sets) == 25

    def test_roots_only_from_targets(self, line_graph):
        rr_sets = sample_rr_sets(
            line_graph, [3], np.zeros(3), theta=10, rng=0
        )
        for rr in rr_sets:
            assert rr.tolist() == [3]

    def test_empty_targets_raises(self, line_graph):
        with pytest.raises(InvalidQueryError):
            sample_rr_sets(line_graph, [], np.ones(3), theta=5, rng=0)

    def test_nonpositive_theta_raises(self, line_graph):
        with pytest.raises(InvalidQueryError):
            sample_rr_sets(line_graph, [3], np.ones(3), theta=0, rng=0)

    def test_deterministic_with_seed(self, diamond_graph):
        probs = diamond_graph.all_edge_probabilities()
        a = sample_rr_sets(diamond_graph, [3], probs, theta=20, rng=9)
        b = sample_rr_sets(diamond_graph, [3], probs, theta=20, rng=9)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
