"""Doctest runner for modules whose docstrings carry examples."""

from __future__ import annotations

import doctest

import pytest

import repro.datasets.tag_model
import repro.graphs.aggregation
import repro.graphs.builders
import repro.utils.mathx
import repro.utils.timing

MODULES = [
    repro.datasets.tag_model,
    repro.graphs.aggregation,
    repro.graphs.builders,
    repro.utils.mathx,
    repro.utils.timing,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.failed == 0
    # Every listed module is here *because* it has runnable examples.
    assert result.attempted > 0
