"""Tests for tag aggregation functions (independent and topic-based)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.graphs import TopicModel, independent_aggregation, topic_aggregation


class TestIndependentAggregation:
    def test_empty_is_zero(self):
        assert independent_aggregation([]) == 0.0

    def test_single(self):
        assert independent_aggregation([0.3]) == pytest.approx(0.3)

    def test_noisy_or(self):
        assert independent_aggregation([0.5, 0.5]) == pytest.approx(0.75)

    def test_one_dominates(self):
        assert independent_aggregation([1.0, 0.2]) == pytest.approx(1.0)

    def test_order_invariant(self):
        a = independent_aggregation([0.1, 0.5, 0.9])
        b = independent_aggregation([0.9, 0.1, 0.5])
        assert a == pytest.approx(b)

    def test_monotone_in_extra_tag(self):
        base = independent_aggregation([0.3, 0.4])
        more = independent_aggregation([0.3, 0.4, 0.2])
        assert more >= base

    def test_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            independent_aggregation([1.2])


def _model():
    return TopicModel(
        topics=("z1", "z2"),
        edge_topic_probs=np.array([[0.8, 0.1], [0.2, 0.9]]),
        tag_topic_probs={
            "rock": np.array([0.9, 0.0]),
            "jazz": np.array([0.0, 0.7]),
        },
    )


class TestTopicModel:
    def test_posterior_single_tag(self):
        post = _model().topic_posterior(["rock"])
        assert post == pytest.approx([1.0, 0.0])

    def test_posterior_mixed(self):
        post = _model().topic_posterior(["rock", "jazz"])
        assert post.sum() == pytest.approx(1.0)
        assert post[0] == pytest.approx(0.9 / 1.6)

    def test_posterior_unknown_tag_falls_back_to_prior(self):
        post = _model().topic_posterior(["unknown"])
        assert post == pytest.approx([0.5, 0.5])

    def test_aggregation_shapes(self):
        probs = topic_aggregation(_model(), ["jazz"])
        assert probs.shape == (2,)
        assert probs[1] == pytest.approx(0.9)

    def test_aggregation_mixture(self):
        probs = topic_aggregation(_model(), ["rock", "jazz"])
        post = _model().topic_posterior(["rock", "jazz"])
        assert probs[0] == pytest.approx(0.8 * post[0] + 0.1 * post[1])

    def test_bad_edge_matrix(self):
        with pytest.raises(ConfigurationError):
            TopicModel(
                topics=("z1",),
                edge_topic_probs=np.array([[0.8, 0.1]]),
                tag_topic_probs={},
            )

    def test_bad_tag_vector(self):
        with pytest.raises(ConfigurationError):
            TopicModel(
                topics=("z1", "z2"),
                edge_topic_probs=np.array([[0.8, 0.1]]),
                tag_topic_probs={"rock": np.array([0.9])},
            )

    def test_bad_prior(self):
        with pytest.raises(ConfigurationError):
            TopicModel(
                topics=("z1", "z2"),
                edge_topic_probs=np.array([[0.8, 0.1]]),
                tag_topic_probs={},
                topic_prior=np.array([1.0]),
            )

    def test_custom_prior_used(self):
        model = TopicModel(
            topics=("z1", "z2"),
            edge_topic_probs=np.array([[0.8, 0.1]]),
            tag_topic_probs={"rock": np.array([0.5, 0.5])},
            topic_prior=np.array([0.9, 0.1]),
        )
        post = model.topic_posterior(["rock"])
        assert post[0] == pytest.approx(0.9)
