"""QoS suite: weighted scheduling, graded shedding, deadlines, breakers.

Covers the serving layer's overload contract:

* **Smooth WRR** — per-class dequeue order is deterministic,
  proportional to the configured weights over any window, and
  starvation-free for ``best_effort``.
* **Degradation ladder** — under load ``best_effort`` queries are
  served at a reduced-θ ``approximate`` tier (tagged with the θ used
  and the widened ε bound), then from resident assets only (``full`` /
  ``stale`` / ``salvaged``), then shed with a structured, retryable
  error. ``interactive`` queries are never silently degraded.
* **Deadline admission** — explicit deadlines are checked predictively
  against rolling p95s at the front door and again at dequeue time
  (queue expiry), with ``phase`` identifying which gate fired.
* **Circuit breaker** — consecutive build failures open a per-asset-
  kind breaker that fails fast with ``retry_after_ms``; probes close
  it again; budget cancellations are breaker-neutral.
* **Structured rejections** — the line protocol maps every
  :class:`QueryRejectedError` to a machine-readable error object.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.core.joint import JointConfig
from repro.exceptions import (
    BudgetExceededError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineRejectedError,
    QueryRejectedError,
    QueryShedError,
)
from repro.serve import CampaignServer, QosConfig, WeightedClassQueues
from repro.serve.chaos import ServeFaultPlan
from repro.serve.protocol import handle_line
from repro.serve.qos import CircuitBreaker, LatencyPredictor
from repro.sketch.theta import SketchConfig
from tests.conftest import FIG9_TARGETS

WAIT = 120.0

FAST_SKETCH = SketchConfig(theta_max=2_000, pilot_samples=50)

#: Utilization thresholds low enough that a single query on an idle
#: server already sits in the corresponding ladder rung.
DEGRADE_ALWAYS = QosConfig(shed_threshold=1e-6, stale_threshold=0.99)
STALE_ALWAYS = QosConfig(shed_threshold=1e-6, stale_threshold=1e-6)


def _server(graph, **kwargs):
    kwargs.setdefault("config", JointConfig(sketch=FAST_SKETCH))
    kwargs.setdefault("pool_size", 4)
    return CampaignServer(graph, **kwargs)


class TestWeightedClassQueues:
    def test_proportional_over_full_cycle(self):
        q = WeightedClassQueues({"interactive": 6, "batch": 3,
                                 "best_effort": 1})
        for cls in ("interactive", "batch", "best_effort"):
            for i in range(20):
                q.push(cls, (cls, i))
        drained = [q.pop()[0] for _ in range(10)]
        assert Counter(drained) == {
            "interactive": 6, "batch": 3, "best_effort": 1,
        }

    def test_fifo_within_class(self):
        q = WeightedClassQueues()
        for i in range(5):
            q.push("interactive", i)
        order = [q.pop() for _ in range(5)]
        assert order == [0, 1, 2, 3, 4]

    def test_best_effort_not_starved(self):
        """A lone best_effort query surfaces within one weight cycle."""
        q = WeightedClassQueues({"interactive": 6, "batch": 3,
                                 "best_effort": 1})
        q.push("best_effort", "lone")
        for i in range(100):
            q.push("interactive", i)
        popped = [q.pop() for _ in range(10)]
        assert "lone" in popped

    def test_idle_class_banks_no_credit(self):
        """A class empty for many cycles gets no catch-up burst."""
        q = WeightedClassQueues({"interactive": 6, "batch": 3,
                                 "best_effort": 1})
        for i in range(30):
            q.push("interactive", i)
        for _ in range(30):
            q.pop()
        # best_effort was idle throughout; now both are backlogged.
        for i in range(10):
            q.push("interactive", ("i", i))
            q.push("best_effort", ("b", i))
        first_seven = [q.pop()[0] for _ in range(7)]
        # 6:1 split resumes immediately — no best_effort burst.
        assert Counter(first_seven) == {"i": 6, "b": 1}

    def test_pop_empty_returns_none_and_drain(self):
        q = WeightedClassQueues()
        assert q.pop() is None
        q.push("batch", 1)
        q.push("interactive", 2)
        assert q.depth() == 2 == len(q)
        assert q.depths()["batch"] == 1
        assert sorted(q.drain()) == [1, 2]
        assert q.depth() == 0
        assert q.pop() is None


class TestLatencyPredictor:
    def test_cold_predictor_admits_everything(self):
        p = LatencyPredictor()
        assert p.p95("find_seeds") == 0.0
        assert p.p95_overall() == 0.0
        assert p.predicted_completion_ms("find_seeds", 10, 4) == 0.0

    def test_p95_and_window_bound(self):
        p = LatencyPredictor(window=8)
        for ms in range(100):  # only the last 8 samples survive
            p.observe("op", float(ms))
        snap = p.snapshot()["op"]
        assert snap["count"] == 8
        assert snap["p95_ms"] == pytest.approx(99.0)
        assert p.p95("op") == pytest.approx(99.0)

    def test_predicted_completion_formula(self):
        p = LatencyPredictor()
        for _ in range(10):
            p.observe("slow", 100.0)
        # wait = in_system / pool * p95_overall; completion adds p95(op)
        assert p.predicted_wait_ms(8, 4) == pytest.approx(200.0)
        assert p.predicted_completion_ms("slow", 8, 4) == pytest.approx(
            300.0
        )
        assert p.predicted_wait_ms(0, 4) == 0.0

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyPredictor(window=1)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = [0.0]
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_timeout", 5.0)
        breaker = CircuitBreaker(
            "trs_sketch", clock=lambda: clock[0], **kwargs
        )
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _clock = self._breaker()
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"  # 2 < threshold
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after_ms() > 0

    def test_success_resets_failure_streak(self):
        breaker, _clock = self._breaker()
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        breaker.allow()
        breaker.record_success()
        breaker.allow()
        breaker.record_failure()  # streak restarted: 1 of 3
        assert breaker.state == "closed"

    def test_half_open_single_probe_then_close(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        clock[0] = 6.0  # past reset_timeout
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.retry_after_ms() == 0.0

    def test_probe_failure_reopens(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        clock[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_release_probe_is_breaker_neutral(self):
        """A cancelled probe frees the slot without a verdict."""
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        clock[0] = 6.0
        assert breaker.allow()
        breaker.release_probe()  # e.g. BudgetExceededError in the build
        assert breaker.state == "half_open"
        assert breaker.allow()  # next probe may proceed immediately
        breaker.record_success()
        assert breaker.state == "closed"

    def test_transition_callback_sequence(self):
        seen = []
        clock = [0.0]
        breaker = CircuitBreaker(
            "k", failure_threshold=1, reset_timeout=1.0,
            on_transition=lambda kind, old, new: seen.append((old, new)),
            clock=lambda: clock[0],
        )
        breaker.allow()
        breaker.record_failure()
        clock[0] = 2.0
        breaker.allow()
        breaker.record_success()
        assert seen == [
            ("closed", "open"), ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker("k", failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker("k", reset_timeout=0.0)


class TestQosConfigValidation:
    def test_defaults_are_valid(self):
        cfg = QosConfig()
        assert cfg.weight_map == {
            "interactive": 6, "batch": 3, "best_effort": 1,
        }

    @pytest.mark.parametrize("kwargs", [
        {"weights": (("interactive", 6), ("batch", 3))},  # missing class
        {"weights": (("interactive", 6), ("batch", 3), ("bulk", 1))},
        {"weights": (("interactive", 0), ("batch", 3), ("best_effort", 1))},
        {"shed_threshold": 0.0},
        {"shed_threshold": 0.9, "stale_threshold": 0.5},  # inverted
        {"stale_threshold": 1.5},
        {"degrade_theta_factor": 0},
        {"predictor_window": 1},
        {"breaker_failure_threshold": 0},
        {"breaker_reset_timeout": 0.0},
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            QosConfig(**kwargs)


class TestDegradationLadder:
    def test_unknown_class_rejected_synchronously(self, fig9_graph):
        with _server(fig9_graph) as server:
            with pytest.raises(ConfigurationError):
                server.submit_find_seeds(
                    FIG9_TARGETS, ("c5",), 1, engine="trs",
                    qos_class="bulk",
                )

    def test_best_effort_served_approximate_under_load(self, fig9_graph):
        with _server(fig9_graph, qos=DEGRADE_ALWAYS) as server:
            resp = server.submit_find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0,
                qos_class="best_effort",
            ).result(timeout=WAIT)
        assert resp.tier == "approximate"
        assert resp.qos_class == "best_effort"
        info = resp.degraded
        assert info["kind"] == "reduced_theta"
        # θ budget divided by the degrade factor, floored at theta_min.
        assert info["theta_max"] == max(
            FAST_SKETCH.theta_min,
            FAST_SKETCH.theta_max // DEGRADE_ALWAYS.degrade_theta_factor,
        )
        assert info["theta_max_full"] == FAST_SKETCH.theta_max
        assert info["theta"] <= info["theta_max"]
        # ε widens as 1/sqrt(θ): the degraded bound is never tighter.
        assert info["epsilon_eff"] >= info["epsilon"]
        metrics = server.metrics()["counters"]
        assert metrics["serve.degraded"] == 1
        assert metrics["serve.degraded.approximate"] == 1

    def test_result_engine_approximate_tagged_and_keyed(self, fig9_graph):
        """Non-TRS engines honour the approximate tier too.

        The default engine routes through the whole-result cache path;
        a degraded answer there must carry the reduced-θ tag and key
        the cache with the reduced config, never colliding with the
        full-tier entry for the same query.
        """
        with _server(fig9_graph, qos=DEGRADE_ALWAYS) as server:
            degraded = server.submit_find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="lltrs", seed=0,
                qos_class="best_effort",
            ).result(timeout=WAIT)
            full = server.submit_find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="lltrs", seed=0,
                qos_class="interactive",
            ).result(timeout=WAIT)
            stats = server.cache_stats()
        assert degraded.tier == "approximate"
        info = degraded.degraded
        assert info["kind"] == "reduced_theta"
        assert info["theta_max"] == max(
            FAST_SKETCH.theta_min,
            FAST_SKETCH.theta_max // DEGRADE_ALWAYS.degrade_theta_factor,
        )
        assert info["theta_max_full"] == FAST_SKETCH.theta_max
        assert full.tier == "full"
        assert full.degraded is None
        # Distinct cache entries: the interactive query built fresh
        # rather than being served the reduced-θ result.
        assert stats.builds == 2

    def test_interactive_never_degraded(self, fig9_graph):
        """The ladder applies to best_effort only."""
        with _server(fig9_graph, qos=STALE_ALWAYS) as server:
            resp = server.submit_find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0,
                qos_class="interactive",
            ).result(timeout=WAIT)
        assert resp.tier == "full"
        assert resp.degraded is None

    def test_stale_only_exact_resident_hit_is_full(self, fig9_graph):
        with _server(fig9_graph, qos=STALE_ALWAYS) as server:
            warm = server.submit_find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0,
            ).result(timeout=WAIT)
            resp = server.submit_find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0,
                qos_class="best_effort",
            ).result(timeout=WAIT)
        # The resident asset answers exactly: no degradation to report.
        assert resp.tier == "full"
        assert resp.degraded is None
        assert resp.value.seeds == warm.value.seeds
        assert resp.value.estimated_spread == warm.value.estimated_spread

    def test_stale_only_mismatched_params_served_stale(self, fig9_graph):
        with _server(fig9_graph, qos=STALE_ALWAYS) as server:
            server.submit_find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0,
            ).result(timeout=WAIT)
            # Same targets/tags, different RNG seed: the exact key
            # misses but the resident sketch still covers the targets.
            resp = server.submit_find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=7,
                qos_class="best_effort",
            ).result(timeout=WAIT)
            stats = server.cache_stats()
            events = server.events.snapshot()
        assert resp.tier == "stale"
        assert resp.degraded["kind"] == "stale_asset"
        assert resp.degraded["theta"] > 0
        assert stats.builds == 1  # no fresh build for the stale answer
        assert stats.stale_hits == 1
        assert any(e["kind"] == "query.cache.stale_hit" for e in events)

    def test_stale_only_cold_cache_sheds(self, fig9_graph):
        with _server(fig9_graph, qos=STALE_ALWAYS) as server:
            future = server.submit_find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0,
                qos_class="best_effort",
            )
            with pytest.raises(QueryShedError) as err:
                future.result(timeout=WAIT)
            metrics = server.metrics()["counters"]
            events = server.events.snapshot()
        assert err.value.code == "shed"
        assert err.value.qos_class == "best_effort"
        assert err.value.retry_after_ms >= STALE_ALWAYS.min_retry_after_ms
        assert metrics["serve.rejected.shed"] == 1
        assert any(e["kind"] == "query.shed" for e in events)
        # Shedding leaves no residue: the same query, retried, builds.
        with _server(fig9_graph, qos=STALE_ALWAYS) as server:
            ok = server.submit_find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0,
            ).result(timeout=WAIT)
        assert ok.value.seeds


class TestDeadlines:
    def test_predictive_admission_rejects_unmeetable(self, fig9_graph):
        with _server(fig9_graph) as server:
            # Teach the predictor this op takes ~60s.
            for _ in range(10):
                server._predictor.observe("find_seeds", 60_000.0)
            with pytest.raises(DeadlineRejectedError) as err:
                server.submit_find_seeds(
                    FIG9_TARGETS, ("c5",), 1, engine="trs",
                    deadline=0.5,
                )
            metrics = server.metrics()["counters"]
        assert err.value.phase == "admission"
        assert err.value.predicted_ms >= 60_000.0
        assert err.value.retry_after_ms > 0
        assert metrics["serve.rejected.deadline"] == 1
        # Accounting: the rejected query never entered the system.
        assert server.health()["queued"] == 0

    def test_cold_predictor_admits_tight_deadline(self, fig9_graph):
        with _server(fig9_graph) as server:
            resp = server.submit_find_seeds(
                FIG9_TARGETS, ("c5",), 1, engine="trs", deadline=30.0,
            ).result(timeout=WAIT)
        assert resp.value.seeds

    def test_deadline_expires_in_queue(self, fig9_graph):
        """A query whose deadline elapses while queued is rejected at
        dequeue time with ``phase == "queue"``, not executed."""
        slow = ServeFaultPlan(
            seed=1, build_slow_rate=1.0, build_slow_seconds=0.3,
        )
        with _server(fig9_graph, pool_size=1, chaos=slow) as server:
            blocker = server.submit_find_seeds(
                FIG9_TARGETS, ("c5",), 1, engine="trs", seed=0,
            )
            doomed = server.submit_find_seeds(
                FIG9_TARGETS, ("c2", "c3"), 1, engine="trs", seed=0,
                deadline=0.05,
            )
            assert blocker.result(timeout=WAIT).value.seeds
            with pytest.raises(DeadlineRejectedError) as err:
                doomed.result(timeout=WAIT)
        assert err.value.phase == "queue"
        assert err.value.retry_after_ms > 0


class TestSalvage:
    def test_cancelled_build_salvages_partial(self, fig9_graph):
        """A budget-cancelled build deposits its partial for reuse."""
        with _server(fig9_graph) as server:
            with pytest.raises(BudgetExceededError):
                server.submit_find_seeds(
                    FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0,
                    max_samples=60,  # pilot passes; main sampling trips
                ).result(timeout=WAIT)
            metrics = server.metrics()["counters"]
            stats = server.cache_stats()
            events = server.events.snapshot()
            # The partial now answers a resident-only best_effort query
            # at the salvaged tier.
            resp = server.submit_find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0,
                qos_class="best_effort",
            ).result(timeout=WAIT)
        assert metrics["serve.cancelled"] == 1
        assert metrics["serve.salvaged"] == 1
        assert metrics.get("serve.errors", 0) == 0
        assert stats.puts == 1  # the partial entered via direct put
        assert any(e["kind"] == "query.build.salvaged" for e in events)
        if resp.tier == "salvaged":
            assert resp.degraded["kind"] == "salvaged_partial"
            assert resp.value.seeds
        else:
            # Under a permissive QoS config the retry simply rebuilt.
            assert resp.tier == "full"


class TestBreakerIntegration:
    def test_build_failures_open_breaker_and_fail_fast(self, fig9_graph):
        chaos = ServeFaultPlan(seed=0, build_error_rate=1.0)
        tag_sets = [("c1",), ("c2",), ("c3",), ("c4",)]
        with _server(fig9_graph, chaos=chaos) as server:
            for tags in tag_sets[:3]:
                with pytest.raises(Exception) as err:
                    server.submit_find_seeds(
                        FIG9_TARGETS, tags, 1, engine="trs",
                    ).result(timeout=WAIT)
                assert type(err.value).__name__ == "InjectedChaosError"
            assert server.breaker_states()["trs_sketch"] == "open"
            health = server.health()
            with pytest.raises(CircuitOpenError) as err:
                server.submit_find_seeds(
                    FIG9_TARGETS, tag_sets[3], 1, engine="trs",
                ).result(timeout=WAIT)
            metrics = server.metrics()["counters"]
        assert health["status"] == "degraded"
        assert health["degraded"] is True
        assert err.value.code == "breaker_open"
        assert err.value.retry_after_ms >= QosConfig().min_retry_after_ms
        assert metrics["serve.breaker.fastfail"] == 1
        assert metrics["serve.rejected.breaker_open"] == 1
        assert metrics["serve.breaker.open"] == 1

    def test_health_ok_when_idle(self, fig9_graph):
        with _server(fig9_graph) as server:
            health = server.health()
        assert health["status"] == "ok"
        assert health["degraded"] is False
        assert health["shedding"] is False
        assert health["breakers"] == {}


class TestProtocolStructuredErrors:
    def test_deadline_rejection_is_machine_readable(self, fig9_graph):
        with _server(fig9_graph) as server:
            for _ in range(10):
                server._predictor.observe("find_seeds", 60_000.0)
            reply = handle_line(server, json.dumps({
                "op": "find_seeds",
                "targets": list(FIG9_TARGETS),
                "tags": ["c5"],
                "k": 1,
                "engine": "trs",
                "deadline": 0.5,
                "class": "interactive",
            }))
        assert reply["ok"] is False
        error = reply["error"]
        assert error["code"] == "deadline"
        assert error["class"] == "interactive"
        assert error["retry_after_ms"] > 0
        assert reply["type"] == "DeadlineRejectedError"

    def test_shed_rejection_is_machine_readable(self, fig9_graph):
        with _server(fig9_graph, qos=STALE_ALWAYS) as server:
            reply = handle_line(server, json.dumps({
                "op": "find_seeds",
                "targets": list(FIG9_TARGETS),
                "tags": ["c5"],
                "k": 1,
                "engine": "trs",
                "class": "best_effort",
            }))
        assert reply["ok"] is False
        assert reply["error"]["code"] == "shed"
        assert reply["error"]["class"] == "best_effort"
        assert reply["error"]["retry_after_ms"] > 0

    def test_success_reply_carries_class_and_tier(self, fig9_graph):
        with _server(fig9_graph, qos=DEGRADE_ALWAYS) as server:
            reply = handle_line(server, json.dumps({
                "op": "find_seeds",
                "targets": list(FIG9_TARGETS),
                "tags": ["c5", "c4"],
                "k": 2,
                "engine": "trs",
                "class": "best_effort",
            }))
        assert reply["ok"] is True
        assert reply["class"] == "best_effort"
        assert reply["tier"] == "approximate"
        assert reply["degraded"]["kind"] == "reduced_theta"

    def test_non_rejection_errors_stay_flat(self, fig9_graph):
        with _server(fig9_graph) as server:
            reply = handle_line(server, json.dumps({
                "op": "find_seeds",
                "targets": [999],  # out of range → InvalidQueryError
                "tags": ["c5"],
                "k": 1,
            }))
        assert reply["ok"] is False
        assert isinstance(reply["error"], str)


def test_every_rejection_is_a_query_rejected_error():
    """The structured-rejection contract: one base class, stable codes."""
    assert issubclass(DeadlineRejectedError, QueryRejectedError)
    assert issubclass(QueryShedError, QueryRejectedError)
    assert issubclass(CircuitOpenError, QueryRejectedError)
    shed = QueryShedError(0.9, retry_after_ms=50.0,
                          qos_class="best_effort")
    assert shed.code == "shed"
    assert shed.retry_after_ms == 50.0
