"""Concurrency suite: single-flight, determinism, isolation, overload.

The server's claims under contention, each asserted directly:

* **Single-flight** — N concurrent identical queries build their shared
  asset exactly once (``builds`` counter), whether the latecomers join
  the in-flight build or hit the finished cache.
* **Determinism** — interleaved identical + distinct queries return
  bit-identical results to solo runs, regardless of scheduling.
* **Telemetry isolation** — two queries running concurrently on one
  pooled engine report the same per-query work counters as solo runs
  (the regression this suite exists to pin: a global registry would
  bleed one query's ``rr.samples_drawn`` into the other's report).
* **Admission control** — submits past ``pool_size + queue_capacity``
  raise :class:`ServerOverloadedError` without touching shared state.

Every blocking wait in this suite carries a wall-clock guard (future
timeouts), so a deadlock fails the suite instead of hanging it.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.joint import JointConfig
from repro.engine.parallel import SamplingEngine
from repro.exceptions import ServerClosedError, ServerOverloadedError
from repro.serve import CampaignServer
from repro.sketch.theta import SketchConfig
from tests.conftest import FIG9_SEEDS, FIG9_TARGETS

# Generous guard: any single fig9/yelp query finishes in well under this.
WAIT = 120.0

FAST_SKETCH = SketchConfig(theta_max=2_000, pilot_samples=50)


def _server(graph, **kwargs):
    kwargs.setdefault("config", JointConfig(sketch=FAST_SKETCH))
    kwargs.setdefault("pool_size", 4)
    return CampaignServer(graph, **kwargs)


class TestSingleFlight:
    def test_identical_queries_build_once(self, fig9_graph):
        n = 12
        with _server(fig9_graph) as server:
            futures = [
                server.submit_find_seeds(
                    FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0
                )
                for _ in range(n)
            ]
            responses = [f.result(timeout=WAIT) for f in futures]
            stats = server.cache_stats()
        assert stats.builds == 1
        assert stats.misses == 1
        assert stats.hits == n - 1  # joins are a subset of hits
        assert stats.singleflight_joins <= stats.hits
        first = responses[0]
        for resp in responses[1:]:
            assert resp.value.seeds == first.value.seeds
            assert (
                resp.value.estimated_spread == first.value.estimated_spread
            )
            # Hit or join, the report still carries the build's counters.
            assert (
                resp.report["metrics"]["counters"]
                == first.report["metrics"]["counters"]
            )

    def test_distinct_assets_each_build_once(self, fig9_graph):
        """4 distinct queries × 4 repeats → exactly 4 builds."""
        variants = [
            (("c5", "c4"), 0),
            (("c5", "c4"), 1),   # same tags, different seed → own asset
            (("c6", "c1"), 0),
            (("c2", "c3"), 0),
        ]
        with _server(fig9_graph) as server:
            futures = [
                server.submit_find_seeds(
                    FIG9_TARGETS, tags, 2, engine="trs", seed=seed
                )
                for _ in range(4)
                for tags, seed in variants
            ]
            responses = [f.result(timeout=WAIT) for f in futures]
            stats = server.cache_stats()
        assert stats.builds == len(variants)
        assert len(responses) == 16
        # All four repeats of each variant agree.
        by_variant = {}
        for (tags, seed), resp in zip(variants * 4, responses):
            key = (tags, seed)
            prior = by_variant.setdefault(key, resp)
            assert resp.value.seeds == prior.value.seeds
            assert (
                resp.value.estimated_spread
                == prior.value.estimated_spread
            )

    def test_failed_build_does_not_poison_cache(self, fig9_graph):
        """A query that errors leaves no cache entry; a retry succeeds."""
        from repro.exceptions import InvalidQueryError

        with _server(fig9_graph) as server:
            with pytest.raises(InvalidQueryError):
                # Target id out of range fails validation inside the op.
                server.find_seeds((999,), ("c5",), 1, engine="trs")
            ok = server.find_seeds(FIG9_TARGETS, ("c5",), 1, engine="trs")
        assert ok.cache == "miss"
        assert ok.value.seeds


class TestInterleavedDeterminism:
    def test_threaded_clients_match_solo_runs(self, fig9_graph):
        """8 client threads, mixed ops, vs solo answers on a fresh server."""
        workload = [
            ("seeds", (FIG9_TARGETS, ("c5", "c4"), 2), {"seed": 0}),
            ("seeds", (FIG9_TARGETS, ("c6", "c1"), 2), {"seed": 1}),
            ("tags", (FIG9_SEEDS, FIG9_TARGETS, 2), {"seed": 0}),
            ("spread", (FIG9_SEEDS, FIG9_TARGETS, ("c5",)), {"seed": 2}),
        ] * 4

        def run(server, item):
            op, args, kwargs = item
            if op == "seeds":
                return server.find_seeds(*args, engine="trs", **kwargs)
            if op == "tags":
                return server.find_tags(*args, **kwargs)
            return server.estimate_spread(*args, **kwargs)

        with _server(fig9_graph) as solo_server:
            solo = [run(solo_server, item) for item in workload[:4]]

        with _server(fig9_graph) as server:
            with ThreadPoolExecutor(max_workers=8) as clients:
                futures = [
                    clients.submit(run, server, item) for item in workload
                ]
                responses = [f.result(timeout=WAIT) for f in futures]

        for item, resp in zip(workload, responses):
            baseline = solo[workload.index(item)]
            if item[0] == "spread":
                assert resp.value == baseline.value
                continue
            if item[0] == "tags":
                assert resp.value.tags == baseline.value.tags
            else:
                assert resp.value.seeds == baseline.value.seeds
            assert (
                resp.report["metrics"]["counters"]
                == baseline.report["metrics"]["counters"]
            )

    def test_no_telemetry_bleed_between_concurrent_queries(self, fig9_graph):
        """Regression: per-query counters on a shared pooled engine.

        Two concurrent queries through one ``SamplingEngine`` must each
        report exactly the counters of their solo runs — before the
        per-query :class:`~repro.engine.QueryEngineView` isolation, the
        engine's telemetry registry was shared and ``rr.samples_drawn``
        (and every ``runtime.*`` counter) summed across queries.
        """
        query_a = dict(tags=("c5", "c4"), seed=0)
        query_b = dict(tags=("c6", "c1"), seed=3)

        def run_pair(concurrent):
            with SamplingEngine(mode="vectorized", workers=1) as engine:
                with _server(
                    fig9_graph, sampler=engine, pool_size=2
                ) as server:
                    if concurrent:
                        fa = server.submit_find_seeds(
                            FIG9_TARGETS, query_a["tags"], 2,
                            engine="trs", seed=query_a["seed"],
                        )
                        fb = server.submit_find_seeds(
                            FIG9_TARGETS, query_b["tags"], 2,
                            engine="trs", seed=query_b["seed"],
                        )
                        return fa.result(timeout=WAIT), fb.result(
                            timeout=WAIT
                        )
                    ra = server.find_seeds(
                        FIG9_TARGETS, query_a["tags"], 2,
                        engine="trs", seed=query_a["seed"],
                    )
                    rb = server.find_seeds(
                        FIG9_TARGETS, query_b["tags"], 2,
                        engine="trs", seed=query_b["seed"],
                    )
                    return ra, rb

        solo_a, solo_b = run_pair(concurrent=False)
        conc_a, conc_b = run_pair(concurrent=True)

        for solo, conc in ((solo_a, conc_a), (solo_b, conc_b)):
            assert conc.value.seeds == solo.value.seeds
            solo_counters = solo.report["metrics"]["counters"]
            conc_counters = conc.report["metrics"]["counters"]
            assert (
                conc_counters["rr.samples_drawn"]
                == solo_counters["rr.samples_drawn"]
            )
            assert conc_counters == solo_counters
        # Distinct queries: the two reports are NOT accidental copies.
        assert (
            conc_a.report["metrics"]["counters"]["rr.samples_drawn"]
            != 0
        )


class TestAdmissionControl:
    def test_overload_rejected_cleanly(self, fig9_graph):
        started = threading.Event()
        release = threading.Event()

        def blocking_runner(_ob):
            started.set()
            assert release.wait(timeout=WAIT)
            return None, "none"

        with _server(
            fig9_graph, pool_size=1, queue_capacity=1
        ) as server:
            first = server._submit("block", blocking_runner)
            # Wait for the runner to *execute* (not merely sit queued)
            # so the occupancy the later asserts see — one executing,
            # one queued, third rejected — is scheduling-independent.
            assert started.wait(timeout=WAIT)
            second = server._submit("block", blocking_runner)
            with pytest.raises(ServerOverloadedError) as excinfo:
                server._submit("block", blocking_runner)
            assert excinfo.value.capacity == 2
            rejected = server.metrics()["counters"]["serve.rejected"]
            assert rejected == 1
            release.set()
            first.result(timeout=WAIT)
            second.result(timeout=WAIT)
            # Capacity freed: real queries are admitted again.
            resp = server.find_seeds(
                FIG9_TARGETS, ("c5",), 1, engine="trs"
            )
            assert resp.value.seeds

    def test_rejected_query_leaves_no_state(self, fig9_graph):
        """A rejected submit must not occupy a slot or touch the cache."""
        started = threading.Event()
        release = threading.Event()

        def blocking_runner(_ob):
            started.set()
            assert release.wait(timeout=WAIT)
            return None, "none"

        with _server(
            fig9_graph, pool_size=1, queue_capacity=0
        ) as server:
            blocker = server._submit("block", blocking_runner)
            # The blocker must hold the single pool slot before the
            # rejection loop — queued-vs-executing must not matter.
            assert started.wait(timeout=WAIT)
            for _ in range(5):
                with pytest.raises(ServerOverloadedError):
                    server.submit_find_seeds(
                        FIG9_TARGETS, ("c5",), 1, engine="trs"
                    )
            assert len(server._cache._entries) == 0
            release.set()
            blocker.result(timeout=WAIT)

    def test_closed_server_rejects(self, fig9_graph):
        server = _server(fig9_graph)
        resp = server.find_seeds(FIG9_TARGETS, ("c5",), 1, engine="trs")
        assert resp.value.seeds
        server.close()
        with pytest.raises(ServerClosedError):
            server.find_seeds(FIG9_TARGETS, ("c5",), 1, engine="trs")

    def test_close_racing_submits_rejects_cleanly(self, fig9_graph):
        """Regression: a submit racing close() must see ServerClosedError
        (or succeed/overload), never the shut-down executor's raw
        RuntimeError."""
        n_clients = 8
        server = _server(fig9_graph)
        barrier = threading.Barrier(n_clients + 1)
        outcomes: list[object] = []
        outcomes_lock = threading.Lock()

        def client(seed):
            barrier.wait(timeout=WAIT)
            try:
                future = server.submit_find_seeds(
                    FIG9_TARGETS, ("c5",), 1, engine="trs", seed=seed
                )
                future.result(timeout=WAIT)
                outcome: object = "ok"
            except (ServerClosedError, ServerOverloadedError):
                outcome = "rejected"
            except BaseException as exc:  # the bug: raw RuntimeError
                outcome = exc
            with outcomes_lock:
                outcomes.append(outcome)

        threads = [
            threading.Thread(target=client, args=(seed,))
            for seed in range(n_clients)
        ]
        for t in threads:
            t.start()
        barrier.wait(timeout=WAIT)
        server.close()
        for t in threads:
            t.join(timeout=WAIT)
        assert all(not t.is_alive() for t in threads)
        assert len(outcomes) == n_clients
        unexpected = [o for o in outcomes if o not in ("ok", "rejected")]
        assert not unexpected, f"raw exceptions leaked: {unexpected!r}"

    def test_queue_depth_gauge_returns_to_zero(self, fig9_graph):
        with _server(fig9_graph) as server:
            futures = [
                server.submit_find_seeds(
                    FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=s
                )
                for s in range(4)
            ]
            for f in futures:
                f.result(timeout=WAIT)
        assert server.metrics()["gauges"]["serve.queue.depth"] == 0.0


class TestServerHygiene:
    def test_metrics_poll_concurrent_with_cache_traffic(self, fig9_graph):
        """Regression: metrics() used to hold the metrics lock while
        taking the cache lock (stats()), while cache counter bumps take
        them in the opposite order — a concurrent metrics poll plus any
        cache-active query deadlocked both threads. The wall-clock
        guards below turn a reintroduced inversion into a failure."""
        n_queries = 8
        with _server(fig9_graph) as server:
            stop = threading.Event()
            poll_errors: list[BaseException] = []

            def poll():
                while not stop.is_set():
                    try:
                        server.metrics()
                    except BaseException as exc:  # pragma: no cover
                        poll_errors.append(exc)
                        return

            pollers = [threading.Thread(target=poll) for _ in range(4)]
            for t in pollers:
                t.start()
            try:
                # Distinct seeds -> distinct keys -> a miss+build cache
                # event (under the cache lock) per query.
                futures = [
                    server.submit_find_seeds(
                        FIG9_TARGETS, ("c5",), 1, engine="trs", seed=s
                    )
                    for s in range(n_queries)
                ]
                responses = [f.result(timeout=WAIT) for f in futures]
            finally:
                stop.set()
                for t in pollers:
                    t.join(timeout=WAIT)
            assert all(not t.is_alive() for t in pollers)
            assert not poll_errors
            assert len(responses) == n_queries
            snapshot = server.metrics()
        assert snapshot["counters"]["serve.queries"] == n_queries
        assert snapshot["counters"]["serve.cache.builds"] == n_queries

    def test_probability_cache_enabled_and_bounded(self, fig9_graph):
        with _server(fig9_graph, prob_cache_entries=4) as server:
            # Same tag set under different seeds: distinct sketch assets,
            # but the aggregated probability array is memoized.
            for tags, seed in (
                (("c5",), 0), (("c4",), 0), (("c5", "c4"), 0), (("c5",), 1)
            ):
                server.find_seeds(
                    FIG9_TARGETS, tags, 1, engine="trs", seed=seed
                )
            stats = fig9_graph.probability_cache_stats()
        assert stats["enabled"]
        assert stats["entries"] <= 4
        assert stats["hits"] >= 1

    def test_reports_have_serve_query_span_root(self, fig9_graph):
        with _server(fig9_graph) as server:
            resp = server.find_seeds(
                FIG9_TARGETS, ("c5",), 1, engine="trs"
            )
        roots = [span["name"] for span in resp.report["trace"]]
        assert roots == ["serve.query"]
