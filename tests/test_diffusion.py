"""Tests for cascades, possible worlds, MC estimation, and the exact oracle.

The exact oracle is validated against hand-computed closed forms, and
the MC estimator against the oracle — this chain is what lets the rest
of the suite trust the estimators.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion import (
    estimate_spread,
    estimate_spread_fraction,
    exact_spread,
    reachable_targets,
    sample_possible_world,
    simulate_cascade,
    world_probability,
)
from repro.exceptions import EstimationError, InvalidQueryError
from repro.graphs import TagGraphBuilder


class TestSimulateCascade:
    def test_certain_chain_activates_all(self, line_graph):
        g = line_graph
        probs = np.ones(g.num_edges)
        active = simulate_cascade(g, [0], probs, rng=0)
        assert active.all()

    def test_zero_probs_activate_only_seeds(self, line_graph):
        g = line_graph
        probs = np.zeros(g.num_edges)
        active = simulate_cascade(g, [0, 2], probs, rng=0)
        assert active.tolist() == [True, False, True, False]

    def test_seeds_always_active(self, line_graph):
        active = simulate_cascade(
            line_graph, [3], np.zeros(line_graph.num_edges), rng=0
        )
        assert active[3]

    def test_empty_seed_set(self, line_graph):
        active = simulate_cascade(
            line_graph, [], np.ones(line_graph.num_edges), rng=0
        )
        assert not active.any()

    def test_bad_seed_raises(self, line_graph):
        with pytest.raises(InvalidQueryError):
            simulate_cascade(
                line_graph, [99], np.ones(line_graph.num_edges), rng=0
            )

    def test_deterministic_with_seed(self, diamond_graph):
        probs = diamond_graph.edge_probabilities(["a", "b", "c"])
        a = simulate_cascade(diamond_graph, [0], probs, rng=5)
        b = simulate_cascade(diamond_graph, [0], probs, rng=5)
        assert np.array_equal(a, b)

    def test_activation_rate_matches_probability(self, line_graph):
        # P(node 1 active | seed 0) = p(edge 0) = 0.7.
        probs = np.array([0.7, 0.0, 0.0])
        rng = np.random.default_rng(0)
        hits = sum(
            simulate_cascade(line_graph, [0], probs, rng)[1]
            for _ in range(3000)
        )
        assert hits / 3000 == pytest.approx(0.7, abs=0.03)


class TestReachableTargets:
    def test_counts_reachable(self, line_graph):
        mask = np.array([True, True, False])
        assert reachable_targets(line_graph, [0], [1, 2, 3], mask) == 2

    def test_seed_is_its_own_target(self, line_graph):
        mask = np.zeros(3, dtype=bool)
        assert reachable_targets(line_graph, [2], [2], mask) == 1

    def test_duplicates_in_targets_counted_once(self, line_graph):
        mask = np.ones(3, dtype=bool)
        assert reachable_targets(line_graph, [0], [3, 3, 3], mask) == 1

    def test_no_edges(self, line_graph):
        mask = np.zeros(3, dtype=bool)
        assert reachable_targets(line_graph, [0], [3], mask) == 0


class TestPossibleWorld:
    def test_mask_shape(self, diamond_graph):
        probs = diamond_graph.all_edge_probabilities()
        mask = sample_possible_world(diamond_graph, probs, rng=0)
        assert mask.shape == (diamond_graph.num_edges,)

    def test_extreme_probs(self, line_graph):
        mask = sample_possible_world(line_graph, np.ones(3), rng=0)
        assert mask.all()

    def test_wrong_shape_raises(self, line_graph):
        with pytest.raises(ValueError):
            sample_possible_world(line_graph, np.ones(99), rng=0)

    def test_world_probability_product(self):
        mask = np.array([True, False])
        probs = np.array([0.3, 0.4])
        assert world_probability(mask, probs) == pytest.approx(0.3 * 0.6)

    def test_world_probability_impossible(self):
        mask = np.array([False])
        probs = np.array([1.0])
        assert world_probability(mask, probs) == 0.0

    def test_world_probabilities_sum_to_one(self):
        probs = np.array([0.3, 0.8])
        total = 0.0
        for bits in range(4):
            mask = np.array([bool(bits & 1), bool(bits & 2)])
            total += world_probability(mask, probs)
        assert total == pytest.approx(1.0)

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            world_probability(np.array([True]), np.array([0.5, 0.5]))


class TestExactSpread:
    def test_line_graph_closed_form(self, line_graph):
        # σ({0}, {3}) = 0.5^3.
        value = exact_spread(line_graph, [0], [3], ["a", "b", "c"])
        assert value == pytest.approx(0.125)

    def test_multiple_targets_sum(self, line_graph):
        value = exact_spread(line_graph, [0], [1, 2, 3], ["a", "b", "c"])
        assert value == pytest.approx(0.5 + 0.25 + 0.125)

    def test_fig4_non_submodularity(self, fig4_graph):
        seeds, targets = [0, 3], [2, 5]
        s_c1 = exact_spread(fig4_graph, seeds, targets, ["c1"])
        s_c1c3 = exact_spread(fig4_graph, seeds, targets, ["c1", "c3"])
        s_c1c2 = exact_spread(fig4_graph, seeds, targets, ["c1", "c2"])
        s_all = exact_spread(fig4_graph, seeds, targets, ["c1", "c2", "c3"])
        assert s_c1 == pytest.approx(0.3)
        assert s_c1c3 == pytest.approx(0.3)
        assert s_c1c2 == pytest.approx(0.3)
        assert s_all == pytest.approx(1.02)
        # Lemma 1: the marginal of c3 grows with the larger base set.
        assert (s_all - s_c1c2) > (s_c1c3 - s_c1)

    def test_target_is_seed(self, line_graph):
        assert exact_spread(line_graph, [1], [1], ["a"]) == pytest.approx(1.0)

    def test_empty_seeds(self, line_graph):
        assert exact_spread(line_graph, [], [3], ["a"]) == 0.0

    def test_too_many_edges_raises(self):
        builder = TagGraphBuilder(30)
        for u in range(25):
            builder.add(u, u + 1, "t", 0.5)
        with pytest.raises(EstimationError, match="enumeration"):
            exact_spread(builder.build(), [0], [25], ["t"])

    def test_certain_edges_not_enumerated(self):
        # 20 probability-1 edges would exceed the limit if branched on.
        builder = TagGraphBuilder(21)
        for u in range(20):
            builder.add(u, u + 1, "t", 1.0)
        value = exact_spread(builder.build(), [0], [20], ["t"])
        assert value == pytest.approx(1.0)

    def test_subset_of_tags(self, diamond_graph):
        # Only tag "a": edges (0,1)=0.8 and (0,2)=0.5 active; target 3
        # unreachable (its in-edges need b or c).
        value = exact_spread(diamond_graph, [0], [3], ["a"])
        assert value == 0.0


class TestEstimateSpread:
    def test_matches_exact_on_line(self, line_graph):
        exact = exact_spread(line_graph, [0], [2, 3], ["a", "b", "c"])
        mc = estimate_spread(
            line_graph, [0], [2, 3], ["a", "b", "c"],
            num_samples=6000, rng=1,
        )
        assert mc == pytest.approx(exact, abs=0.05)

    def test_matches_exact_on_fig9(self, fig9_graph):
        tags = ["c4", "c5", "c6"]
        exact = exact_spread(fig9_graph, [0, 1, 2], [6, 7, 8], tags)
        mc = estimate_spread(
            fig9_graph, [0, 1, 2], [6, 7, 8], tags,
            num_samples=8000, rng=2,
        )
        assert mc == pytest.approx(exact, abs=0.07)

    def test_empty_seeds_zero(self, line_graph):
        assert estimate_spread(line_graph, [], [3], ["a"], rng=0) == 0.0

    def test_empty_targets_raises(self, line_graph):
        with pytest.raises(InvalidQueryError):
            estimate_spread(line_graph, [0], [], ["a"], rng=0)

    def test_bad_samples_raises(self, line_graph):
        with pytest.raises(InvalidQueryError):
            estimate_spread(line_graph, [0], [3], ["a"], num_samples=0)

    def test_unknown_tag_raises(self, line_graph):
        with pytest.raises(InvalidQueryError):
            estimate_spread(line_graph, [0], [3], ["zzz"], rng=0)

    def test_precomputed_edge_probs(self, line_graph):
        probs = line_graph.edge_probabilities(["a", "b", "c"])
        a = estimate_spread(
            line_graph, [0], [3], ["a", "b", "c"],
            num_samples=500, rng=3, edge_probs=probs,
        )
        b = estimate_spread(
            line_graph, [0], [3], ["a", "b", "c"], num_samples=500, rng=3
        )
        assert a == pytest.approx(b)

    def test_fraction(self, line_graph):
        frac = estimate_spread_fraction(
            line_graph, [0], [0, 1], ["a"], num_samples=2000, rng=0
        )
        # Target 0 always active; target 1 with prob 0.5.
        assert frac == pytest.approx(0.75, abs=0.03)

    def test_monotone_in_tags(self, fig9_graph):
        few = estimate_spread(
            fig9_graph, [0, 1, 2], [6, 7, 8], ["c4"],
            num_samples=4000, rng=4,
        )
        more = estimate_spread(
            fig9_graph, [0, 1, 2], [6, 7, 8], ["c4", "c5"],
            num_samples=4000, rng=4,
        )
        assert more >= few - 0.05
