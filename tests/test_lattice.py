"""Tests for path-batches and the batch lattice (Figure 10)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidQueryError
from repro.tags import (
    BatchLattice,
    PathBatch,
    TagSelectionConfig,
    build_batches,
    collect_paths,
)
from tests.conftest import FIG9_SEEDS, FIG9_TARGETS


def _path(edges, tags, prob=0.5, nodes=None):
    from repro.tags import TagPath

    if nodes is None:
        nodes = tuple(range(len(edges) + 1))
    return TagPath(
        nodes=tuple(nodes), edge_ids=tuple(edges),
        tag_choices=tuple(tags), probability=prob,
    )


class TestBuildBatches:
    def test_groups_by_exact_tag_set(self):
        paths = [
            _path([0], ["a"]),
            _path([1], ["a"]),
            _path([2, 3], ["a", "b"]),
        ]
        batches = build_batches(paths)
        by_tags = {b.tag_set: b for b in batches}
        assert by_tags[frozenset({"a"})].path_indices == (0, 1)
        assert by_tags[frozenset({"a", "b"})].path_indices == (2,)

    def test_budget_filter(self):
        paths = [_path([0, 1, 2], ["a", "b", "c"]), _path([3], ["a"])]
        batches = build_batches(paths, max_tags=2)
        assert len(batches) == 1
        assert batches[0].tag_set == frozenset({"a"})

    def test_sorted_by_level(self):
        paths = [_path([0, 1], ["a", "b"]), _path([2], ["c"])]
        batches = build_batches(paths)
        assert [b.cost for b in batches] == [1, 2]

    def test_empty(self):
        assert build_batches([]) == []

    def test_new_tags(self):
        batch = PathBatch(frozenset({"a", "b"}), (0,))
        assert batch.new_tags(frozenset({"a"})) == frozenset({"b"})
        assert batch.cost == 2


class TestLatticeFig9:
    @pytest.fixture
    def fig9_lattice(self, fig9_graph):
        cfg = TagSelectionConfig(per_pair_paths=10, prob_floor=0.0)
        paths = collect_paths(fig9_graph, FIG9_SEEDS, FIG9_TARGETS, cfg, rng=0)
        return paths, BatchLattice(build_batches(paths, max_tags=3))

    def test_expected_batches(self, fig9_lattice):
        _, lattice = fig9_lattice
        tag_sets = {b.tag_set for b in lattice.batches}
        assert tag_sets == {
            frozenset({"c2", "c3"}),
            frozenset({"c4"}),
            frozenset({"c5"}),
            frozenset({"c6"}),
            frozenset({"c4", "c5"}),
            frozenset({"c5", "c6"}),
        }

    def test_levels(self, fig9_lattice):
        _, lattice = fig9_lattice
        assert len(lattice.levels[1]) == 3
        assert len(lattice.levels[2]) == 3

    def test_batch_c4c5_has_two_paths(self, fig9_lattice):
        paths, lattice = fig9_lattice
        batch = next(
            b for b in lattice.batches
            if b.tag_set == frozenset({"c4", "c5"})
        )
        edge_sets = {paths[i].edge_ids for i in batch.path_indices}
        assert edge_sets == {(3, 9), (4, 9)}  # e4e10 and e5e10

    def test_descendants_of_c4c5(self, fig9_lattice):
        # Des P(c4,c5) = {P(c4,c5), P(c4), P(c5)} — Example 4.
        paths, lattice = fig9_lattice
        idx = next(
            i for i, b in enumerate(lattice.batches)
            if b.tag_set == frozenset({"c4", "c5"})
        )
        descendant_tags = {
            lattice.batches[d].tag_set for d in lattice.descendants(idx)
        }
        assert descendant_tags == {
            frozenset({"c4", "c5"}), frozenset({"c4"}), frozenset({"c5"}),
        }

    def test_descendant_paths_match_example4(self, fig9_lattice):
        # Activating {c4, c5} activates e4e10, e5e10, e7, e6e12.
        paths, lattice = fig9_lattice
        active = lattice.active_paths({"c4", "c5"})
        edge_sets = {paths[i].edge_ids for i in active}
        assert edge_sets == {(3, 9), (4, 9), (6,), (5, 11)}

    def test_children_links_are_subsets(self, fig9_lattice):
        _, lattice = fig9_lattice
        for parent, kids in lattice.children.items():
            for kid in kids:
                assert (
                    lattice.batches[kid].tag_set
                    < lattice.batches[parent].tag_set
                    or lattice.batches[kid].tag_set
                    <= lattice.batches[parent].tag_set
                )

    def test_activated_by_everything(self, fig9_lattice):
        paths, lattice = fig9_lattice
        all_tags = {"c2", "c3", "c4", "c5", "c6"}
        assert len(lattice.activated_by(all_tags)) == len(lattice.batches)
        assert len(lattice.active_paths(all_tags)) == len(paths)

    def test_activated_by_nothing(self, fig9_lattice):
        _, lattice = fig9_lattice
        assert lattice.activated_by(set()) == []

    def test_descendants_bad_index(self, fig9_lattice):
        _, lattice = fig9_lattice
        with pytest.raises(InvalidQueryError):
            lattice.descendants(999)
