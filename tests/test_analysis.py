"""Tests for repro.analysis: tables and comparisons."""

from __future__ import annotations

import pytest

from repro.analysis import (
    compare_seed_engines,
    compare_tag_methods,
    format_table,
)
from repro.datasets import community_targets
from repro.sketch import SketchConfig
from repro.tags import TagSelectionConfig

FAST = SketchConfig(pilot_samples=60, theta_min=150, theta_max=500)
TAGS_FAST = TagSelectionConfig(per_pair_paths=3, rr_theta=300,
                               max_path_targets=15)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["alpha", 1.0], ["b", 22.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "22.50" in lines[2]

    def test_title_and_rule(self):
        text = format_table(["x"], [[1]], title="My table", rule="-")
        assert text.splitlines()[1] == "My table"
        assert set(text.splitlines()[0]) == {"-"}

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert text.split() == ["a", "b"]

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[0.125]])
        assert "0.12" in text


class TestCompareSeedEngines:
    def test_reports_per_engine(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        tags = small_yelp.graph.tags[:4]
        reports = compare_seed_engines(
            small_yelp.graph, targets, tags, 2,
            engines=("trs", "lltrs"), config=FAST,
            eval_samples=60, rng=0,
        )
        assert [r.engine for r in reports] == ["trs", "lltrs"]
        for report in reports:
            assert len(report.seeds) == 2
            assert report.verified_spread >= 0.0
            assert report.elapsed_seconds >= 0.0

    def test_unknown_engine_rejected(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=10, rng=0)
        with pytest.raises(ValueError, match="unknown engines"):
            compare_seed_engines(
                small_yelp.graph, targets, small_yelp.graph.tags[:2], 1,
                engines=("warp-drive",), config=FAST, rng=0,
            )


class TestCompareTagMethods:
    def test_shared_pool(self, fig9_graph):
        from tests.conftest import FIG9_SEEDS, FIG9_TARGETS

        cfg = TagSelectionConfig(
            per_pair_paths=10, prob_floor=0.0, evaluator_mode="exact"
        )
        reports = compare_tag_methods(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 3,
            config=cfg, eval_samples=500, rng=0,
        )
        by_method = {r.method: r for r in reports}
        assert set(by_method) == {"batch", "individual"}
        # The Example 3/4 outcome shows through the comparison API too.
        assert by_method["batch"].verified_spread > (
            by_method["individual"].verified_spread
        )

    def test_unknown_method_rejected(self, fig9_graph):
        from tests.conftest import FIG9_SEEDS, FIG9_TARGETS

        with pytest.raises(ValueError, match="unknown methods"):
            compare_tag_methods(
                fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 2,
                methods=("oracle",), rng=0,
            )
