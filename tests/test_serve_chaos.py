"""Chaos-harness suite: seeded, replayable serve-layer fault injection.

The :class:`ServeFaultPlan` contract under test:

* **Determinism** — every injection decision is a pure function of
  ``(seed, site, per-site ordinal)``: two plans with the same seed and
  rates take identical decision sequences; a different seed takes a
  different one.
* **Site independence** — enabling one site (or its rate) never shifts
  another site's decision sequence, and per-kind build sites are
  independent of each other.
* **Server integration** — injected admission failures reject cleanly
  before accounting; injected dequeue failures surface on the query's
  future without leaking in-system slots; injected build failures
  drive the circuit breaker; an attached engine ``FaultPlan`` composes
  worker-level faults into the same scenario.
"""

from __future__ import annotations

import pytest

from repro.core.joint import JointConfig
from repro.engine import FaultPlan
from repro.engine.parallel import RetryPolicy, SamplingEngine
from repro.exceptions import ConfigurationError
from repro.serve import CampaignServer, InjectedChaosError, ServeFaultPlan
from repro.sketch.theta import SketchConfig
from tests.conftest import FIG9_TARGETS

WAIT = 120.0

FAST_SKETCH = SketchConfig(theta_max=2_000, pilot_samples=50)


def _server(graph, **kwargs):
    kwargs.setdefault("config", JointConfig(sketch=FAST_SKETCH))
    kwargs.setdefault("pool_size", 4)
    return CampaignServer(graph, **kwargs)


def _admission_decisions(plan: ServeFaultPlan, n: int = 200) -> list[int]:
    """Ordinals at which the admission site fires over ``n`` events."""
    fired = []
    for i in range(n):
        try:
            plan.at_admission()
        except InjectedChaosError as exc:
            assert exc.site == "admission"
            assert exc.ordinal == i
            fired.append(i)
    return fired


def _build_decisions(plan: ServeFaultPlan, kind: str,
                     n: int = 200) -> list[int]:
    fired = []
    for _ in range(n):
        try:
            plan.before_build(kind)
        except InjectedChaosError as exc:
            assert exc.site == "build"
            fired.append(exc.ordinal)
    return fired


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = ServeFaultPlan(seed=42, admission_error_rate=0.3)
        b = ServeFaultPlan(seed=42, admission_error_rate=0.3)
        fired_a = _admission_decisions(a)
        fired_b = _admission_decisions(b)
        assert fired_a == fired_b
        assert fired_a  # at rate 0.3 over 200 events, some must fire
        assert a.counters() == b.counters() == {"admission": 200}

    def test_different_seed_different_decisions(self):
        a = ServeFaultPlan(seed=0, admission_error_rate=0.3)
        b = ServeFaultPlan(seed=1, admission_error_rate=0.3)
        assert _admission_decisions(a) != _admission_decisions(b)

    def test_rate_zero_never_fires_but_counts(self):
        plan = ServeFaultPlan(seed=0)
        assert _admission_decisions(plan) == []
        plan.at_dequeue()
        plan.before_build("trs_sketch")
        assert plan.counters() == {
            "admission": 200,
            "dequeue": 1,
            "build_slow:trs_sketch": 1,
            "build:trs_sketch": 1,
        }

    def test_rate_one_always_fires(self):
        plan = ServeFaultPlan(seed=0, dequeue_error_rate=1.0)
        for i in range(5):
            with pytest.raises(InjectedChaosError) as err:
                plan.at_dequeue()
            assert err.value.ordinal == i


class TestSiteIndependence:
    def test_sites_have_independent_counters(self):
        """Admission events never shift dequeue decisions."""
        a = ServeFaultPlan(seed=7, dequeue_error_rate=0.4)
        b = ServeFaultPlan(seed=7, dequeue_error_rate=0.4)
        for _ in range(50):  # only plan a sees admission traffic
            a.at_admission()
        fired_a, fired_b = [], []
        for plan, fired in ((a, fired_a), (b, fired_b)):
            for _ in range(100):
                try:
                    plan.at_dequeue()
                except InjectedChaosError as exc:
                    fired.append(exc.ordinal)
        assert fired_a == fired_b

    def test_slow_site_does_not_shift_error_site(self):
        """Enabling build slow-down keeps build-error ordinals fixed."""
        base = ServeFaultPlan(seed=3, build_error_rate=0.4)
        slowed = ServeFaultPlan(
            seed=3, build_error_rate=0.4,
            build_slow_rate=1.0, build_slow_seconds=0.0,
        )
        assert (_build_decisions(base, "trs_sketch")
                == _build_decisions(slowed, "trs_sketch"))

    def test_build_sites_keyed_by_kind(self):
        """Different asset kinds draw from independent sequences."""
        plan = ServeFaultPlan(seed=5, build_error_rate=0.4)
        fired_a = _build_decisions(plan, "trs_sketch", n=100)
        fired_b = _build_decisions(plan, "result", n=100)
        # Interleaving order cannot matter: a fresh plan seeing only
        # "result" events reproduces the same "result" sequence.
        fresh = ServeFaultPlan(seed=5, build_error_rate=0.4)
        assert _build_decisions(fresh, "result", n=100) == fired_b
        assert fired_a != fired_b  # and the kinds genuinely differ


class TestValidationAndErrors:
    @pytest.mark.parametrize("kwargs", [
        {"admission_error_rate": -0.1},
        {"dequeue_error_rate": 1.5},
        {"build_slow_rate": 2.0},
        {"build_error_rate": -1.0},
        {"build_slow_seconds": -0.5},
    ])
    def test_rejects_bad_rates(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServeFaultPlan(seed=0, **kwargs)

    def test_injected_error_is_catchable_library_error(self):
        from repro.exceptions import ReproError

        err = InjectedChaosError("dequeue", 3, detail="spice")
        assert isinstance(err, ReproError)
        assert err.site == "dequeue"
        assert err.ordinal == 3
        assert "spice" in str(err)

    def test_deadline_skew(self):
        plan = ServeFaultPlan(seed=0, deadline_skew_s=0.25)
        assert plan.skew_deadline(1.0) == pytest.approx(0.75)
        assert plan.skew_deadline(None) is None
        assert ServeFaultPlan(seed=0).skew_deadline(1.0) == 1.0


class TestServerIntegration:
    def test_admission_chaos_rejects_before_accounting(self, fig9_graph):
        chaos = ServeFaultPlan(seed=0, admission_error_rate=1.0)
        with _server(fig9_graph, chaos=chaos) as server:
            with pytest.raises(InjectedChaosError):
                server.submit_find_seeds(
                    FIG9_TARGETS, ("c5",), 1, engine="trs",
                )
            health = server.health()
            metrics = server.metrics()["counters"]
            events = server.events.snapshot()
        # The query never entered the system.
        assert health["in_flight"] == 0
        assert health["queued"] == 0
        assert metrics["serve.chaos.admission"] == 1
        injected = [e for e in events if e["kind"] == "chaos.injected"]
        assert injected and injected[0]["attrs"]["site"] == "admission"

    def test_dequeue_chaos_fails_future_without_leaking(self, fig9_graph):
        chaos = ServeFaultPlan(seed=0, dequeue_error_rate=1.0)
        with _server(fig9_graph, chaos=chaos) as server:
            futures = [
                server.submit_find_seeds(
                    FIG9_TARGETS, ("c5",), 1, engine="trs",
                )
                for _ in range(4)
            ]
            for future in futures:
                with pytest.raises(InjectedChaosError):
                    future.result(timeout=WAIT)
            health = server.health()
            metrics = server.metrics()["counters"]
        # Every slot was reclaimed: nothing in flight, nothing queued.
        assert health["in_flight"] == 0
        assert health["queued"] == 0
        assert health["utilization"] == 0.0
        assert metrics["serve.chaos.dequeue"] == 4
        assert metrics["serve.errors"] == 4

    def test_build_chaos_is_deterministic_across_servers(self, fig9_graph):
        """The same seed yields the same per-query outcome sequence."""
        tag_sets = [("c1",), ("c2",), ("c3",), ("c4",), ("c5",), ("c6",)]

        def outcomes(seed):
            chaos = ServeFaultPlan(seed=seed, build_error_rate=0.5)
            record = []
            with _server(fig9_graph, chaos=chaos) as server:
                for tags in tag_sets:
                    try:
                        server.submit_find_seeds(
                            FIG9_TARGETS, tags, 1, engine="trs",
                        ).result(timeout=WAIT)
                        record.append("ok")
                    except InjectedChaosError:
                        record.append("chaos")
                    except Exception as exc:  # breaker may open mid-run
                        record.append(type(exc).__name__)
            return record

        first = outcomes(11)
        assert outcomes(11) == first
        assert set(first) & {"ok", "chaos", "CircuitOpenError"}

    def test_engine_plan_composes_with_serve_chaos(self, small_yelp):
        """One scenario: worker death below, serve-layer chaos above."""
        plan = ServeFaultPlan(
            seed=0, engine_plan=FaultPlan().kill_shard(3),
        )
        engine = SamplingEngine(
            shard_size=8, workers=2,
            retry_policy=RetryPolicy(
                backoff_base=0.001, backoff_max=0.005, jitter=0.0,
            ),
        )
        graph = small_yelp.graph
        with engine:
            with _server(graph, sampler=engine, chaos=plan) as server:
                assert engine.fault_plan is plan.engine_plan
                tags = tuple(graph.tags[:2])
                targets = tuple(range(min(12, graph.num_nodes)))
                resp = server.submit_find_seeds(
                    targets, tags, 2, engine="trs", seed=0,
                ).result(timeout=WAIT)
        assert resp.value.seeds
        # The worker kill actually happened and was survived; per-query
        # engine views publish runtime counters into the query report.
        counters = resp.report["metrics"]["counters"]
        assert counters["runtime.pool_rebuilds"] >= 1
        assert counters["runtime.shards_retried"] >= 1
