"""Tests for the TagGraph data structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphConstructionError, InvalidQueryError
from repro.graphs import TagGraph, TagGraphBuilder


def _simple_graph():
    builder = TagGraphBuilder(3)
    builder.add(0, 1, "x", 0.4)
    builder.add(0, 1, "y", 0.5)
    builder.add(1, 2, "x", 0.9)
    return builder.build()


class TestConstruction:
    def test_counts(self):
        g = _simple_graph()
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.num_tags == 2
        assert g.tags == ("x", "y")

    def test_empty_graph(self):
        g = TagGraph(0, [], [], {})
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.tags == ()

    def test_isolated_nodes_preserved(self):
        g = TagGraph(5, [0], [1], {"t": (np.array([0]), np.array([0.5]))})
        assert g.num_nodes == 5
        assert g.out_edge_ids(4).size == 0

    def test_negative_node_count(self):
        with pytest.raises(GraphConstructionError):
            TagGraph(-1, [], [], {})

    def test_mismatched_src_dst(self):
        with pytest.raises(GraphConstructionError):
            TagGraph(3, [0, 1], [1], {})

    def test_node_out_of_range(self):
        with pytest.raises(GraphConstructionError):
            TagGraph(2, [0], [5], {})

    def test_bad_edge_id_in_tag(self):
        with pytest.raises(GraphConstructionError):
            TagGraph(2, [0], [1], {"t": (np.array([3]), np.array([0.5]))})

    def test_duplicate_edge_in_tag(self):
        with pytest.raises(GraphConstructionError):
            TagGraph(
                2, [0], [1],
                {"t": (np.array([0, 0]), np.array([0.5, 0.6]))},
            )

    @pytest.mark.parametrize("prob", [0.0, -0.5, 1.5])
    def test_bad_probability(self, prob):
        with pytest.raises(GraphConstructionError):
            TagGraph(2, [0], [1], {"t": (np.array([0]), np.array([prob]))})

    def test_tags_sorted(self):
        builder = TagGraphBuilder(2)
        builder.add(0, 1, "zeta", 0.1)
        builder.add(0, 1, "alpha", 0.2)
        assert builder.build().tags == ("alpha", "zeta")


class TestProbabilities:
    def test_single_tag(self):
        g = _simple_graph()
        probs = g.edge_probabilities(["x"])
        assert probs[0] == pytest.approx(0.4)
        assert probs[1] == pytest.approx(0.9)

    def test_independent_aggregation(self):
        g = _simple_graph()
        probs = g.edge_probabilities(["x", "y"])
        assert probs[0] == pytest.approx(1 - 0.6 * 0.5)
        assert probs[1] == pytest.approx(0.9)

    def test_no_tags_gives_zero(self):
        g = _simple_graph()
        assert np.all(g.edge_probabilities([]) == 0.0)

    def test_unknown_tag_raises(self):
        with pytest.raises(InvalidQueryError):
            _simple_graph().edge_probabilities(["nope"])

    def test_all_edge_probabilities(self):
        g = _simple_graph()
        assert np.allclose(
            g.all_edge_probabilities(), g.edge_probabilities(["x", "y"])
        )

    def test_edge_tag_probability(self):
        g = _simple_graph()
        assert g.edge_tag_probability(0, "y") == pytest.approx(0.5)
        assert g.edge_tag_probability(1, "y") == 0.0

    def test_edge_tag_map(self):
        g = _simple_graph()
        assert g.edge_tag_map(0) == {"x": 0.4, "y": 0.5}

    def test_edge_tag_map_out_of_range(self):
        with pytest.raises(InvalidQueryError):
            _simple_graph().edge_tag_map(9)

    def test_tag_edges_views_readonly(self):
        g = _simple_graph()
        ids, probs = g.tag_edges("x")
        with pytest.raises(ValueError):
            ids[0] = 7
        with pytest.raises(ValueError):
            probs[0] = 0.1


class TestAdjacency:
    def test_out_edges(self):
        g = _simple_graph()
        assert set(g.dst[g.out_edge_ids(0)].tolist()) == {1}
        assert set(g.dst[g.out_edge_ids(1)].tolist()) == {2}

    def test_in_edges(self):
        g = _simple_graph()
        assert set(g.src[g.in_edge_ids(2)].tolist()) == {1}
        assert g.in_edge_ids(0).size == 0

    def test_neighbors(self):
        g = _simple_graph()
        assert g.out_neighbors(0).tolist() == [1]
        assert g.in_neighbors(1).tolist() == [0]

    def test_degrees(self):
        g = _simple_graph()
        assert g.out_degrees().tolist() == [1, 1, 0]
        assert g.in_degrees().tolist() == [0, 1, 1]

    def test_bad_node_raises(self):
        with pytest.raises(InvalidQueryError):
            _simple_graph().out_edge_ids(7)

    def test_csr_consistency(self):
        g = _simple_graph()
        indptr, edges = g.reverse_csr()
        assert indptr[-1] == g.num_edges
        # Every edge appears exactly once, grouped by destination.
        assert sorted(edges.tolist()) == list(range(g.num_edges))
        for node in range(g.num_nodes):
            for eid in edges[indptr[node]:indptr[node + 1]]:
                assert g.dst[eid] == node


class TestEquality:
    def test_equal_to_itself_rebuilt(self):
        assert _simple_graph() == _simple_graph()

    def test_not_equal_different_prob(self):
        builder = TagGraphBuilder(3)
        builder.add(0, 1, "x", 0.4)
        builder.add(0, 1, "y", 0.5)
        builder.add(1, 2, "x", 0.8)
        assert _simple_graph() != builder.build()

    def test_not_equal_other_type(self):
        assert _simple_graph() != 42
