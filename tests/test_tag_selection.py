"""Tests for individual-paths and batch-paths tag selection.

The headline assertions re-enact the paper's Example 3 and Example 4 on
the Figure 9 graph: individual selection gets trapped at spread 1.44
with tags {c2, c3, c5}, batch selection reaches {c4, c5, c6} with
spread ≈ 2.61.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.tags import (
    TagSelectionConfig,
    batch_paths_select_tags,
    collect_paths,
    find_tags,
    individual_paths_select_tags,
)
from tests.conftest import FIG9_SEEDS, FIG9_TARGETS

EXACT_CFG = TagSelectionConfig(
    per_pair_paths=10, prob_floor=0.0, evaluator_mode="exact"
)


@pytest.fixture
def fig9_paths(fig9_graph):
    return collect_paths(
        fig9_graph, FIG9_SEEDS, FIG9_TARGETS, EXACT_CFG, rng=0
    )


class TestIndividualExample3:
    def test_selects_c2_c3_c5(self, fig9_graph, fig9_paths):
        sel = individual_paths_select_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 3,
            EXACT_CFG, rng=0, paths=fig9_paths,
        )
        assert set(sel.tags) == {"c2", "c3", "c5"}
        assert sel.method == "individual"

    def test_spread_is_paper_value(self, fig9_graph, fig9_paths):
        sel = individual_paths_select_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 3,
            EXACT_CFG, rng=0, paths=fig9_paths,
        )
        assert sel.estimated_spread == pytest.approx(1.44, abs=0.01)

    def test_first_pick_is_e3e8(self, fig9_graph, fig9_paths):
        sel = individual_paths_select_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 3,
            EXACT_CFG, rng=0, paths=fig9_paths,
        )
        assert sel.selected_paths[0].edge_ids == (2, 7)


class TestBatchExample4:
    def test_selects_c4_c5_c6(self, fig9_graph, fig9_paths):
        sel = batch_paths_select_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 3,
            EXACT_CFG, rng=0, paths=fig9_paths,
        )
        assert set(sel.tags) == {"c4", "c5", "c6"}
        assert sel.method == "batch"

    def test_spread_beats_individual(self, fig9_graph, fig9_paths):
        batch = batch_paths_select_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 3,
            EXACT_CFG, rng=0, paths=fig9_paths,
        )
        indiv = individual_paths_select_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 3,
            EXACT_CFG, rng=0, paths=fig9_paths,
        )
        assert batch.estimated_spread == pytest.approx(2.61, abs=0.03)
        assert batch.estimated_spread > indiv.estimated_spread + 1.0

    def test_first_round_picks_c4_c5(self, fig9_graph, fig9_paths):
        sel = batch_paths_select_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 2,
            EXACT_CFG, rng=0, paths=fig9_paths,
        )
        assert set(sel.tags) == {"c4", "c5"}
        assert sel.estimated_spread == pytest.approx(2.206, abs=0.01)

    def test_selected_paths_are_activated_set(self, fig9_graph, fig9_paths):
        sel = batch_paths_select_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 2,
            EXACT_CFG, rng=0, paths=fig9_paths,
        )
        edge_sets = {p.edge_ids for p in sel.selected_paths}
        assert edge_sets == {(3, 9), (4, 9), (6,), (5, 11)}


class TestBudgets:
    def test_r1_picks_best_single_tag(self, fig9_graph, fig9_paths):
        sel = batch_paths_select_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 1,
            EXACT_CFG, rng=0, paths=fig9_paths,
        )
        # Single-tag candidates: c4 (e7, 0.8), c5 (e6e12, 0.63), c6 (e9, 0.6).
        assert sel.tags == ("c4",)

    def test_budget_never_exceeded(self, fig9_graph, fig9_paths):
        for r in (1, 2, 3, 4):
            sel = batch_paths_select_tags(
                fig9_graph, FIG9_SEEDS, FIG9_TARGETS, r,
                EXACT_CFG, rng=0, paths=fig9_paths,
            )
            assert len(sel.tags) <= r

    def test_large_budget_takes_everything_useful(self, fig9_graph, fig9_paths):
        sel = batch_paths_select_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 6,
            EXACT_CFG, rng=0, paths=fig9_paths,
        )
        assert set(sel.tags) == {"c2", "c3", "c4", "c5", "c6"}

    def test_bad_budget(self, fig9_graph):
        with pytest.raises(InvalidQueryError):
            batch_paths_select_tags(
                fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 0, EXACT_CFG, rng=0
            )

    def test_budget_larger_than_vocab(self, fig9_graph):
        with pytest.raises(InvalidQueryError):
            batch_paths_select_tags(
                fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 99, EXACT_CFG, rng=0
            )


class TestFindTagsAPI:
    def test_dispatch_batch(self, fig9_graph, fig9_paths):
        sel = find_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 3,
            method="batch", config=EXACT_CFG, rng=0, paths=fig9_paths,
        )
        assert sel.method == "batch"

    def test_dispatch_individual(self, fig9_graph, fig9_paths):
        sel = find_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 3,
            method="individual", config=EXACT_CFG, rng=0, paths=fig9_paths,
        )
        assert sel.method == "individual"

    def test_unknown_method(self, fig9_graph):
        with pytest.raises(ConfigurationError):
            find_tags(fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 3, method="x")

    def test_collects_paths_when_missing(self, fig9_graph):
        sel = find_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 3,
            method="batch", config=EXACT_CFG, rng=0,
        )
        assert set(sel.tags) == {"c4", "c5", "c6"}

    def test_batch_beats_individual_on_yelp(self, small_yelp):
        from repro.datasets import community_targets

        targets = community_targets(small_yelp, "vegas", size=25, rng=0)
        seeds = [int(v) for v in targets[:3]]
        cfg = TagSelectionConfig(per_pair_paths=5, rr_theta=800)
        paths = collect_paths(small_yelp.graph, seeds, targets, cfg, rng=0)
        batch = find_tags(
            small_yelp.graph, seeds, targets, 5,
            method="batch", config=cfg, rng=0, paths=paths,
        )
        indiv = find_tags(
            small_yelp.graph, seeds, targets, 5,
            method="individual", config=cfg, rng=0, paths=paths,
        )
        assert batch.estimated_spread >= indiv.estimated_spread * 0.9
