"""Tests for the index-based seed-selection engines (I-TRS / L-TRS / LL-TRS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import community_targets
from repro.graphs import TagGraphBuilder
from repro.index import (
    average_pairwise_common_indexes,
    indexed_select_seeds,
    make_itrs_manager,
    make_lltrs_manager,
    make_ltrs_manager,
)
from repro.sketch import SketchConfig, trs_select_seeds

FAST = SketchConfig(pilot_samples=100, theta_min=200, theta_max=1500)


def _star_graph():
    builder = TagGraphBuilder(7)
    for v in range(1, 6):
        builder.add(0, v, "t", 1.0)
    builder.add(6, 1, "u", 0.2)
    return builder.build()


class TestIndexedSelection:
    def test_finds_obvious_hub(self):
        g = _star_graph()
        mgr = make_ltrs_manager(g)
        result = indexed_select_seeds(
            g, [1, 2, 3, 4, 5], ["t"], 1, mgr, FAST, rng=0
        )
        assert result.seeds == (0,)
        assert result.estimated_spread == pytest.approx(5.0, abs=0.05)

    def test_itrs_manager_prebuilds_all_tags(self):
        g = _star_graph()
        mgr = make_itrs_manager(g, theta=1000, r=2, config=FAST, rng=0)
        assert mgr.indexed_tags == ("t", "u")

    def test_ltrs_builds_lazily(self):
        g = _star_graph()
        mgr = make_ltrs_manager(g)
        assert mgr.indexed_tags == ()
        indexed_select_seeds(g, [1, 2], ["t"], 1, mgr, FAST, rng=0)
        assert mgr.indexed_tags == ("t",)  # only the queried tag

    def test_ltrs_reuses_across_queries(self):
        g = _star_graph()
        mgr = make_ltrs_manager(g)
        indexed_select_seeds(g, [1, 2], ["t"], 1, mgr, FAST, rng=0)
        worlds_before = mgr.stats.worlds_built
        indexed_select_seeds(g, [1, 2], ["t"], 1, mgr, FAST, rng=1)
        assert mgr.stats.worlds_built == worlds_before  # Lemma 3 reuse

    def test_lltrs_universe_is_local(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        mgr = make_lltrs_manager(small_yelp.graph, targets, FAST)
        assert mgr.is_local
        assert mgr.covered_mask.sum() < small_yelp.graph.num_edges

    def test_lltrs_smaller_index_than_ltrs(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        tags = small_yelp.graph.tags[:5]
        full = make_ltrs_manager(small_yelp.graph)
        local = make_lltrs_manager(small_yelp.graph, targets, FAST)
        indexed_select_seeds(
            small_yelp.graph, targets, tags, 3, full, FAST, rng=0
        )
        indexed_select_seeds(
            small_yelp.graph, targets, tags, 3, local, FAST, rng=0
        )
        assert local.stats.stored_edges < full.stats.stored_edges

    def test_accuracy_close_to_trs(self, small_yelp):
        # Table 2's claim: I-TRS deviates from TRS by a small margin.
        targets = community_targets(small_yelp, "vegas", size=30, rng=0)
        tags = small_yelp.graph.tags[:6]
        cfg = SketchConfig(pilot_samples=200, theta_min=1500, theta_max=4000)
        trs = trs_select_seeds(small_yelp.graph, targets, tags, 5, cfg, rng=0)
        mgr = make_ltrs_manager(small_yelp.graph)
        itrs = indexed_select_seeds(
            small_yelp.graph, targets, tags, 5, mgr, cfg, rng=0
        )
        assert itrs.estimated_spread == pytest.approx(
            trs.estimated_spread, rel=0.2
        )

    def test_theta_c_recorded_and_small(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        mgr = make_ltrs_manager(small_yelp.graph)
        result = indexed_select_seeds(
            small_yelp.graph, targets, small_yelp.graph.tags[:5], 2,
            mgr, FAST, rng=0,
        )
        assert 0 < result.theta_c < result.theta

    def test_world_choices_recorded_on_request(self):
        g = _star_graph()
        mgr = make_ltrs_manager(g)
        result = indexed_select_seeds(
            g, [1, 2], ["t", "u"], 1, mgr, FAST, rng=0, record_choices=True
        )
        assert result.world_choices is not None
        assert len(result.world_choices) == result.theta
        assert set(result.world_choices[0]) == {"t", "u"}
        # The diagnostic of Figure 7 is computable from the record.
        c_of_g = average_pairwise_common_indexes(result.world_choices)
        assert c_of_g >= 0.0

    def test_choices_not_recorded_by_default(self):
        g = _star_graph()
        mgr = make_ltrs_manager(g)
        result = indexed_select_seeds(g, [1, 2], ["t"], 1, mgr, FAST, rng=0)
        assert result.world_choices is None

    def test_duplicate_tags_deduped(self):
        g = _star_graph()
        mgr = make_ltrs_manager(g)
        result = indexed_select_seeds(
            g, [1, 2], ["t", "t"], 1, mgr, FAST, rng=0
        )
        assert result.seeds == (0,)

    def test_hybrid_traversal_crosses_boundary(self):
        # Local region of target 2 with h=1 covers only edge 1→2; the
        # chain 0→1→2 has probability-1 edges, so RR sets must still
        # reach node 0 through the online-coin fallback.
        builder = TagGraphBuilder(3)
        builder.add(0, 1, "t", 1.0)
        builder.add(1, 2, "t", 1.0)
        g = builder.build()
        cfg = SketchConfig(
            pilot_samples=50, theta_min=100, theta_max=200, h=1
        )
        mgr = make_lltrs_manager(g, [2], cfg)
        result = indexed_select_seeds(g, [2], ["t"], 1, mgr, cfg, rng=0)
        assert result.seeds == (0,) or result.estimated_spread >= 1.0

    def test_spread_fraction_helper(self):
        g = _star_graph()
        mgr = make_ltrs_manager(g)
        result = indexed_select_seeds(g, [1, 2], ["t"], 1, mgr, FAST, rng=0)
        assert result.spread_fraction(2) == pytest.approx(1.0, abs=0.05)
        assert result.spread_fraction(0) == 0.0
