"""Fault-injection tests for the fault-tolerant sampling runtime.

The core claim under test: **failure handling never changes results**.
Every recovery path — serial retries, pool rebuilds after worker
kills, poison-driven degradation to the in-process path, the
hung-shard watchdog — must produce output bit-identical to a clean
run with the same master seed, because retried shards replay their
``SeedSequence`` spawn-tree streams exactly.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.monte_carlo import estimate_spread
from repro.engine import (
    Deadline,
    FaultPlan,
    RetryPolicy,
    RunBudget,
    RunTelemetry,
    SamplingEngine,
)
from repro.engine.rr_storage import RRCollection
from repro.engine.runtime import is_permanent
from repro.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    ReproError,
    ShardFailedError,
)
from repro.seeds.api import find_seeds
from repro.sketch.trs import trs_select_seeds
from repro.utils.validation import as_target_array

#: Fast-backoff policy so retry tests don't sleep for real.
FAST = RetryPolicy(backoff_base=0.001, backoff_max=0.005, jitter=0.0)


@pytest.fixture(scope="module")
def query(small_yelp):
    graph = small_yelp.graph
    targets = as_target_array(
        list(range(12)), graph.num_nodes, context="test"
    )
    edge_probs = graph.edge_probabilities(list(graph.tags[:3]))
    return graph, targets, edge_probs


def _rr(engine, query, theta=64, seed=11):
    graph, targets, edge_probs = query
    return engine.sample_rr_sets(
        graph, targets, edge_probs, theta, np.random.default_rng(seed)
    )


def _assert_same(a: RRCollection, b: RRCollection) -> None:
    np.testing.assert_array_equal(a.members, b.members)
    np.testing.assert_array_equal(a.indptr, b.indptr)


def _clean(query, theta=64, seed=11, **kwargs):
    with SamplingEngine(shard_size=8, **kwargs) as engine:
        return _rr(engine, query, theta=theta, seed=seed)


# ---------------------------------------------------------------------------
# Policy / budget primitives
# ---------------------------------------------------------------------------


def test_retry_policy_validates():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=-0.1)


def test_retry_policy_delay_grows_and_caps():
    policy = RetryPolicy(
        backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3, jitter=0.0
    )
    import random

    rng = random.Random(0)
    delays = [policy.delay(i, rng) for i in range(4)]
    assert delays[0] == pytest.approx(0.1)
    assert delays[1] == pytest.approx(0.2)
    assert delays[2] == pytest.approx(0.3)  # capped
    assert delays[3] == pytest.approx(0.3)


def test_permanence_classification():
    from repro.engine.faults import InjectedFault, InjectedPermanentFault

    assert is_permanent(ReproError("boom"))
    assert is_permanent(InjectedPermanentFault("boom"))
    assert not is_permanent(InjectedFault("boom"))
    assert not is_permanent(TimeoutError("slow"))


def test_deadline_never_and_expiry():
    assert not Deadline(None).expired()
    assert Deadline(None).remaining() is None
    expired = Deadline(1e-9)
    time.sleep(0.005)
    assert expired.expired()
    assert expired.remaining() <= 0.0
    with pytest.raises(ConfigurationError):
        Deadline(0.0)


def test_budget_sample_cap_trips():
    budget = RunBudget(max_samples=10)
    budget.charge_samples(10)  # exactly at the cap: fine
    with pytest.raises(BudgetExceededError) as info:
        budget.charge_samples(1, partial="kept")
    assert info.value.reason == "max_samples"
    assert info.value.partial == "kept"


def test_budget_member_cap_trips():
    budget = RunBudget(max_rr_members=100)
    budget.charge_rr_members(60)
    with pytest.raises(BudgetExceededError) as info:
        budget.charge_rr_members(60)
    assert info.value.reason == "max_rr_members"


def test_telemetry_merge_and_summary():
    a = RunTelemetry(shards_run=3, shards_retried=1)
    b = RunTelemetry(shards_run=2, pool_rebuilds=1)
    a.merge(b)
    assert a.shards_run == 5
    assert "shards_retried=1" in a.summary()
    assert RunTelemetry().summary() == "clean"


def test_engine_validates_configuration():
    with pytest.raises(ConfigurationError):
        SamplingEngine(workers=0)
    with pytest.raises(ConfigurationError):
        SamplingEngine(shard_size=0)


# ---------------------------------------------------------------------------
# Serial retry determinism
# ---------------------------------------------------------------------------


def test_serial_retry_is_bit_identical(query):
    clean = _clean(query)
    plan = FaultPlan().fail_shard(1, attempts=(0, 1)).fail_shard(4)
    with SamplingEngine(
        shard_size=8, retry_policy=FAST, fault_plan=plan
    ) as engine:
        faulted = _rr(engine, query)
        assert engine.telemetry.shards_retried == 3
        assert engine.telemetry.shards_failed == 0
    _assert_same(clean, faulted)


def test_serial_permanent_fault_propagates(query):
    plan = FaultPlan().fail_shard(2, permanent=True)
    with SamplingEngine(
        shard_size=8, retry_policy=FAST, fault_plan=plan
    ) as engine:
        with pytest.raises(ShardFailedError) as info:
            _rr(engine, query)
    assert info.value.shard_index == 2
    assert info.value.attempts == 1  # permanent: no retry


def test_serial_retry_exhaustion(query):
    plan = FaultPlan().fail_shard(0, attempts=(0, 1, 2, 3, 4))
    policy = RetryPolicy(
        max_attempts=3, backoff_base=0.001, backoff_max=0.002, jitter=0.0
    )
    with SamplingEngine(
        shard_size=8, retry_policy=policy, fault_plan=plan
    ) as engine:
        with pytest.raises(ShardFailedError) as info:
            _rr(engine, query)
    assert info.value.attempts == 3


@settings(max_examples=10, deadline=None)
@given(
    schedule=st.dictionaries(
        st.tuples(st.integers(0, 7), st.integers(0, 1)),
        st.just("fail"),
        max_size=6,
    )
)
def test_any_retry_schedule_leaves_results_unchanged(small_yelp, schedule):
    """Property: arbitrary transient-failure schedules never change bits."""
    graph = small_yelp.graph
    targets = as_target_array(
        list(range(12)), graph.num_nodes, context="test"
    )
    edge_probs = graph.edge_probabilities(list(graph.tags[:3]))
    query = (graph, targets, edge_probs)
    clean = _clean(query)
    plan = FaultPlan(shard_faults=dict(schedule))
    with SamplingEngine(
        shard_size=8, retry_policy=FAST, fault_plan=plan
    ) as engine:
        faulted = _rr(engine, query)
    _assert_same(clean, faulted)


# ---------------------------------------------------------------------------
# Pool recovery paths
# ---------------------------------------------------------------------------


def test_pool_kill_rebuilds_and_matches(query):
    clean = _clean(query)
    plan = FaultPlan().kill_shard(3)
    with SamplingEngine(
        shard_size=8, workers=2, retry_policy=FAST, fault_plan=plan
    ) as engine:
        faulted = _rr(engine, query)
        assert engine.telemetry.pool_rebuilds >= 1
    _assert_same(clean, faulted)


def test_bitparallel_pool_kill_rebuilds_and_matches(query):
    """Worker death mid-shard under the bit-parallel kernels.

    The bit-parallel mode ships its CSR to workers through shared
    memory, so a BrokenProcessPool rebuild has more to get right than
    the vectorized path: the replacement pool must re-attach the
    segments, the retried shard must replay its SeedSequence stream
    into identical packed worlds, and closing the engine must leave
    zero shared-memory segments behind.
    """
    from repro.engine.shared_csr import active_tokens

    clean = _clean(query, mode="bitparallel")
    plan = FaultPlan().kill_shard(3)
    with SamplingEngine(
        mode="bitparallel", shard_size=8, workers=2,
        retry_policy=FAST, fault_plan=plan,
    ) as engine:
        faulted = _rr(engine, query)
        assert engine.telemetry.pool_rebuilds >= 1
    _assert_same(clean, faulted)
    assert active_tokens() == frozenset(), (
        "shared-memory CSR segments leaked across the pool rebuild"
    )


def test_poisoned_pool_degrades_to_serial(query):
    clean = _clean(query)
    plan = FaultPlan().poison_pool_after(0, times=10)
    policy = RetryPolicy(
        max_pool_rebuilds=1, backoff_base=0.001, backoff_max=0.002,
        jitter=0.0,
    )
    with SamplingEngine(
        shard_size=8, workers=2, retry_policy=policy, fault_plan=plan
    ) as engine:
        faulted = _rr(engine, query)
        assert engine.telemetry.degradations == 1
    _assert_same(clean, faulted)


def test_hung_shard_watchdog_recovers(query):
    clean = _clean(query)
    plan = FaultPlan().hang_shard(2, seconds=20.0)
    policy = RetryPolicy(
        shard_timeout=0.4, backoff_base=0.001, backoff_max=0.002,
        jitter=0.0,
    )
    with SamplingEngine(
        shard_size=8, workers=2, retry_policy=policy, fault_plan=plan
    ) as engine:
        faulted = _rr(engine, query)
        assert engine.telemetry.shards_retried >= 1
    _assert_same(clean, faulted)


def test_injected_interrupt_raises_keyboard_interrupt(query):
    plan = FaultPlan().interrupt_after_shards(3)
    with SamplingEngine(shard_size=8, fault_plan=plan) as engine:
        with pytest.raises(KeyboardInterrupt):
            _rr(engine, query)


# ---------------------------------------------------------------------------
# Budgets through the stack
# ---------------------------------------------------------------------------


def test_engine_budget_partial_is_prefix(query):
    clean = _clean(query)
    budget = RunBudget(max_rr_members=int(clean.members.size * 0.4))
    with SamplingEngine(shard_size=8) as engine:
        graph, targets, edge_probs = query
        with pytest.raises(BudgetExceededError) as info:
            engine.sample_rr_sets(
                graph, targets, edge_probs, 64,
                np.random.default_rng(11), budget=budget,
            )
    partial = info.value.partial
    assert isinstance(partial, RRCollection)
    assert 0 < len(partial) < 64
    # The partial is a prefix of the clean run, not some reshuffle.
    np.testing.assert_array_equal(
        partial.members, clean.members[: partial.members.size]
    )


def test_scalar_path_budget_partial(small_yelp):
    graph = small_yelp.graph
    tags = list(graph.tags[:3])
    with pytest.raises(BudgetExceededError) as info:
        estimate_spread(
            graph, list(range(3)), list(range(20)), tags,
            num_samples=50, rng=0, budget=RunBudget(wall_seconds=1e-6),
        )
    assert isinstance(info.value.partial, float)


def test_trs_budget_partial_result(small_yelp):
    graph = small_yelp.graph
    tags = list(graph.tags[:3])
    with SamplingEngine(shard_size=8) as engine:
        with pytest.raises(BudgetExceededError) as info:
            trs_select_seeds(
                graph, list(range(20)), tags, 3, rng=5, engine=engine,
                budget=RunBudget(max_samples=100),
            )
    partial = info.value.partial
    assert partial is not None
    assert partial.opt_t_estimate is None or partial.opt_t_estimate >= 1.0
    assert partial.theta <= 100


def test_find_seeds_wraps_budget_partial(small_yelp):
    graph = small_yelp.graph
    tags = list(graph.tags[:3])
    with pytest.raises(BudgetExceededError) as info:
        find_seeds(
            graph, list(range(20)), tags, 3, engine="trs", rng=5,
            budget=RunBudget(wall_seconds=1e-6),
        )
    from repro.seeds.api import SeedSelection

    assert isinstance(info.value.partial, SeedSelection)


# ---------------------------------------------------------------------------
# Telemetry propagation
# ---------------------------------------------------------------------------


def test_results_carry_telemetry(small_yelp):
    graph = small_yelp.graph
    tags = list(graph.tags[:3])
    plan = FaultPlan().fail_shard(0)
    with SamplingEngine(
        shard_size=8, retry_policy=FAST, fault_plan=plan
    ) as engine:
        selection = find_seeds(
            graph, list(range(20)), tags, 3, engine="trs", rng=5,
            sampler=engine,
        )
    assert selection.telemetry is not None
    assert selection.telemetry["shards_retried"] >= 1
    scalar = find_seeds(graph, list(range(20)), tags, 3, rng=5)
    assert scalar.telemetry is None
