"""Tests for the LT diffusion extension and the MIA estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion import (
    estimate_lt_spread,
    exact_spread,
    lt_edge_weights,
    lt_reverse_reachable_set,
    mia_spread,
    sample_live_edges,
    simulate_lt_cascade,
)
from repro.exceptions import InvalidQueryError
from repro.graphs import TagGraphBuilder


def _fan_in_graph():
    """Three sources 0,1,2 → 3 with probabilities summing above 1."""
    builder = TagGraphBuilder(4)
    builder.add(0, 3, "t", 0.6)
    builder.add(1, 3, "t", 0.5)
    builder.add(2, 3, "t", 0.4)
    return builder.build()


class TestLTWeights:
    def test_normalizes_over_capacity(self):
        g = _fan_in_graph()
        weights = lt_edge_weights(g, ["t"])
        incoming = weights.sum()  # all edges enter node 3
        assert incoming == pytest.approx(1.0)
        # Relative proportions preserved.
        assert weights[0] / weights[1] == pytest.approx(0.6 / 0.5)

    def test_under_capacity_unchanged(self, line_graph):
        weights = lt_edge_weights(line_graph, ["a", "b", "c"])
        assert np.allclose(
            weights, line_graph.edge_probabilities(["a", "b", "c"])
        )

    def test_cap_parameter(self):
        g = _fan_in_graph()
        weights = lt_edge_weights(g, ["t"], cap=0.5)
        assert weights.sum() == pytest.approx(0.5)

    def test_bad_cap(self):
        with pytest.raises(InvalidQueryError):
            lt_edge_weights(_fan_in_graph(), ["t"], cap=0.0)


class TestLTCascade:
    def test_seeds_always_active(self, line_graph):
        weights = np.zeros(line_graph.num_edges)
        active = simulate_lt_cascade(line_graph, [2], weights, rng=0)
        assert active.tolist() == [False, False, True, False]

    def test_weight_one_chain_fully_activates(self):
        builder = TagGraphBuilder(3)
        builder.add(0, 1, "t", 1.0)
        builder.add(1, 2, "t", 1.0)
        g = builder.build()
        weights = lt_edge_weights(g, ["t"])
        active = simulate_lt_cascade(g, [0], weights, rng=0)
        assert active.all()

    def test_activation_rate_matches_weight(self, line_graph):
        # Single in-edge with weight w: P(activate) = P(θ ≤ w) = w.
        weights = np.array([0.3, 0.0, 0.0])
        rng = np.random.default_rng(0)
        hits = sum(
            simulate_lt_cascade(line_graph, [0], weights, rng)[1]
            for _ in range(4000)
        )
        assert hits / 4000 == pytest.approx(0.3, abs=0.03)

    def test_live_edge_equivalence(self):
        # Forward LT simulation and the live-edge world must produce the
        # same activation distribution (Kempe et al.'s equivalence).
        g = _fan_in_graph()
        weights = lt_edge_weights(g, ["t"])
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(2)
        n = 6000
        threshold_rate = sum(
            simulate_lt_cascade(g, [0], weights, rng_a)[3] for _ in range(n)
        ) / n
        live_rate = 0
        for _ in range(n):
            mask = sample_live_edges(g, weights, rng_b)
            live_rate += bool(mask[0])  # node 3 picked edge from node 0
        live_rate /= n
        assert threshold_rate == pytest.approx(live_rate, abs=0.03)

    def test_bad_weights_shape(self, line_graph):
        with pytest.raises(InvalidQueryError):
            simulate_lt_cascade(line_graph, [0], np.ones(99), rng=0)


class TestLiveEdges:
    def test_at_most_one_incoming_per_node(self):
        g = _fan_in_graph()
        weights = lt_edge_weights(g, ["t"])
        rng = np.random.default_rng(0)
        for _ in range(200):
            mask = sample_live_edges(g, weights, rng)
            per_node = np.bincount(
                g.dst[np.flatnonzero(mask)], minlength=g.num_nodes
            )
            assert per_node.max() <= 1

    def test_selection_distribution(self):
        g = _fan_in_graph()
        weights = lt_edge_weights(g, ["t"])
        rng = np.random.default_rng(3)
        counts = np.zeros(g.num_edges)
        n = 6000
        for _ in range(n):
            counts += sample_live_edges(g, weights, rng)
        assert counts[0] / n == pytest.approx(weights[0], abs=0.03)
        assert counts[2] / n == pytest.approx(weights[2], abs=0.03)


class TestLTRRSets:
    def test_contains_root(self, line_graph):
        weights = np.zeros(line_graph.num_edges)
        rr = lt_reverse_reachable_set(line_graph, 2, weights, rng=0)
        assert rr.tolist() == [2]

    def test_chain_membership_rate(self, line_graph):
        # P(node 2 ∈ RR(3)) = weight of edge 2→3 = 0.5.
        weights = np.array([0.5, 0.5, 0.5])
        rng = np.random.default_rng(0)
        hits = sum(
            2 in lt_reverse_reachable_set(line_graph, 3, weights, rng).tolist()
            for _ in range(4000)
        )
        assert hits / 4000 == pytest.approx(0.5, abs=0.03)

    def test_is_a_path(self, small_yelp):
        weights = lt_edge_weights(small_yelp.graph, small_yelp.graph.tags[:5])
        rng = np.random.default_rng(0)
        rr = lt_reverse_reachable_set(small_yelp.graph, 0, weights, rng)
        # Live-edge reverse walks are simple paths: all members distinct.
        assert len(set(rr.tolist())) == rr.size


class TestEstimateLTSpread:
    def test_chain_closed_form(self, line_graph):
        # LT weights equal the probabilities here (single in-edges), and
        # on a chain the activation of node 3 from seed 0 is 0.5^3.
        value = estimate_lt_spread(
            line_graph, [0], [3], ["a", "b", "c"],
            num_samples=8000, rng=0,
        )
        assert value == pytest.approx(0.125, abs=0.02)

    def test_empty_seeds(self, line_graph):
        assert estimate_lt_spread(line_graph, [], [3], ["a"], rng=0) == 0.0

    def test_monotone_in_seeds(self):
        g = _fan_in_graph()
        one = estimate_lt_spread(g, [0], [3], ["t"], num_samples=3000, rng=0)
        three = estimate_lt_spread(
            g, [0, 1, 2], [3], ["t"], num_samples=3000, rng=0
        )
        assert three >= one


class TestMIA:
    def test_exact_on_chain(self, line_graph):
        mia = mia_spread(line_graph, [0], [3], ["a", "b", "c"], theta=1e-6)
        exact = exact_spread(line_graph, [0], [3], ["a", "b", "c"])
        assert mia == pytest.approx(exact)

    def test_exact_on_in_tree(self):
        # In-tree into node 4: MIA is exact on trees.
        builder = TagGraphBuilder(5)
        builder.add(0, 2, "t", 0.5)
        builder.add(1, 2, "t", 0.6)
        builder.add(2, 4, "t", 0.7)
        builder.add(3, 4, "t", 0.8)
        g = builder.build()
        mia = mia_spread(g, [0, 1, 3], [4], ["t"], theta=1e-9)
        exact = exact_spread(g, [0, 1, 3], [4], ["t"])
        assert mia == pytest.approx(exact)

    def test_seed_target_is_one(self, line_graph):
        assert mia_spread(line_graph, [2], [2], ["a"]) == 1.0

    def test_theta_prunes_long_paths(self, line_graph):
        # Path prob 0.125 < θ=0.2: pruned to zero.
        value = mia_spread(line_graph, [0], [3], ["a", "b", "c"], theta=0.2)
        assert value == 0.0

    def test_bad_theta(self, line_graph):
        with pytest.raises(InvalidQueryError):
            mia_spread(line_graph, [0], [3], ["a"], theta=0.0)

    def test_close_to_mc_on_sparse_graph(self, small_lastfm):
        from repro.diffusion import estimate_spread

        g = small_lastfm.graph
        tags = g.tags[:4]
        seeds = [0, 1]
        targets = list(range(10, 40))
        mia = mia_spread(g, seeds, targets, tags, theta=0.001)
        mc = estimate_spread(
            g, seeds, targets, tags, num_samples=2000, rng=0
        )
        # MIA is a heuristic: demand agreement within a factor of ~2.
        assert mia == pytest.approx(mc, rel=1.0, abs=1.0)

    def test_ignores_unreachable_targets(self):
        builder = TagGraphBuilder(3)
        builder.add(0, 1, "t", 0.9)
        g = builder.build()
        assert mia_spread(g, [0], [2], ["t"]) == 0.0
