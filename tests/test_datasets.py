"""Tests for the synthetic dataset substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    bfs_targets,
    community_targets,
    dblp,
    generate_community_graph,
    lastfm,
    twitter,
    yelp,
)
from repro.datasets.named import YELP_CITIES, YELP_ENTERTAINMENT, YELP_FOOD
from repro.datasets.tag_model import (
    TagModelConfig,
    assign_tag_probabilities,
    frequency_to_probability,
)
from repro.exceptions import ConfigurationError, InvalidQueryError


class TestGenerator:
    def test_shapes(self):
        src, dst, comm = generate_community_graph(100, rng=0)
        assert src.shape == dst.shape
        assert comm.shape == (100,)

    def test_no_self_loops(self):
        src, dst, _ = generate_community_graph(100, rng=0)
        assert (src != dst).all()

    def test_no_duplicate_edges(self):
        src, dst, _ = generate_community_graph(100, rng=0)
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert len(pairs) == src.size

    def test_community_locality(self):
        src, dst, comm = generate_community_graph(
            200, num_communities=4, intra_community_fraction=0.9, rng=0
        )
        intra = (comm[src] == comm[dst]).mean()
        assert intra > 0.7

    def test_hub_structure(self):
        src, dst, _ = generate_community_graph(
            300, attractiveness_exponent=1.2, rng=0
        )
        in_deg = np.bincount(dst, minlength=300)
        # A heavy-tailed in-degree: the max hub well above the mean.
        assert in_deg.max() >= 4 * max(in_deg.mean(), 1.0)

    def test_deterministic(self):
        a = generate_community_graph(80, rng=3)
        b = generate_community_graph(80, rng=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"num_nodes": 10, "num_communities": 0},
            {"num_nodes": 10, "num_communities": 99},
            {"num_nodes": 10, "avg_out_degree": 0.5},
            {"num_nodes": 10, "intra_community_fraction": 1.5},
        ],
    )
    def test_bad_params(self, kwargs):
        with pytest.raises(ConfigurationError):
            generate_community_graph(**kwargs, rng=0)


class TestTagModel:
    def test_probability_transform(self):
        assert frequency_to_probability(0, 5) == 0.0
        assert frequency_to_probability(5, 5) == pytest.approx(
            1 - np.exp(-1.0)
        )

    def test_transform_monotone(self):
        assert frequency_to_probability(10, 5) > frequency_to_probability(2, 5)

    def test_transform_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            frequency_to_probability(1, 0)
        with pytest.raises(ConfigurationError):
            frequency_to_probability(-1, 5)

    def test_assign_rows_valid(self):
        src, dst, comm = generate_community_graph(50, rng=0)
        rows = assign_tag_probabilities(
            src, dst, comm, ["t1", "t2", "t3"], rng=0
        )
        assert rows
        for u, v, tag, prob in rows:
            assert tag in ("t1", "t2", "t3")
            assert 0.0 < prob <= 1.0

    def test_a_controls_mean_probability(self):
        src, dst, comm = generate_community_graph(60, rng=0)
        lo = assign_tag_probabilities(
            src, dst, comm, ["t"], TagModelConfig(a=80.0), rng=0
        )
        hi = assign_tag_probabilities(
            src, dst, comm, ["t"], TagModelConfig(a=5.0), rng=0
        )
        assert np.mean([r[3] for r in lo]) < np.mean([r[3] for r in hi])

    def test_preferred_tags_respected(self):
        src, dst, comm = generate_community_graph(
            60, num_communities=2, rng=0
        )
        rows = assign_tag_probabilities(
            src, dst, comm, ["a", "b", "c", "d"],
            TagModelConfig(community_affinity=1.0),
            preferred_tags=[[0], [1]], rng=0,
        )
        for u, _v, tag, _p in rows:
            expected = "a" if comm[u] == 0 else "b"
            assert tag == expected

    def test_preferred_tags_must_cover_communities(self):
        src, dst, comm = generate_community_graph(
            30, num_communities=3, rng=0
        )
        with pytest.raises(ConfigurationError):
            assign_tag_probabilities(
                src, dst, comm, ["a"], preferred_tags=[[0]], rng=0
            )

    def test_empty_vocab_rejected(self):
        src, dst, comm = generate_community_graph(20, rng=0)
        with pytest.raises(ConfigurationError):
            assign_tag_probabilities(src, dst, comm, [], rng=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"a": 0.0},
            {"tags_per_edge_mean": 0.5},
            {"community_affinity": 2.0},
            {"preferred_pool_size": 0},
            {"freq_mean": 0.0},
        ],
    )
    def test_bad_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            TagModelConfig(**kwargs)


class TestNamedDatasets:
    @pytest.mark.parametrize("factory", [lastfm, dblp, yelp, twitter])
    def test_small_scale_builds(self, factory):
        data = factory(scale=0.1)
        assert data.graph.num_nodes > 0
        assert data.graph.num_edges > 0
        assert data.graph.num_tags > 0

    def test_characteristics_table4_shape(self):
        data = yelp(scale=0.1)
        chars = data.characteristics()
        assert set(chars) == {
            "name", "nodes", "edges", "tags",
            "prob_mean", "prob_std", "prob_quartiles",
        }
        assert 0.1 < chars["prob_mean"] < 0.6

    def test_yelp_has_three_cities(self):
        data = yelp(scale=0.1)
        assert data.community_names == YELP_CITIES
        for city in YELP_CITIES:
            assert data.community_members(city).size > 0

    def test_yelp_city_tag_affinity(self):
        # The case-study precondition: Vegas in-edges are dominated by
        # entertainment tags, Pittsburgh's by food tags.
        from repro.core import frequency_tag_scores

        data = yelp(scale=0.25)
        for city, pool in (
            ("vegas", YELP_ENTERTAINMENT),
            ("pittsburgh", YELP_FOOD),
        ):
            members = data.community_members(city)
            scores = frequency_tag_scores(data.graph, members)
            ranked = sorted(scores, key=lambda t: -scores[t])[:6]
            overlap = len(set(ranked) & set(pool))
            assert overlap >= 3, (city, ranked)

    def test_lastfm_high_a_keeps_probs_reasonable(self):
        chars = lastfm(scale=0.3).characteristics()
        assert 0.1 < chars["prob_mean"] < 0.45

    def test_a_parameter_shifts_probabilities(self):
        low = yelp(scale=0.1, a=80.0).characteristics()["prob_mean"]
        high = yelp(scale=0.1, a=3.0).characteristics()["prob_mean"]
        assert low < 0.15 < high

    def test_unknown_community(self):
        with pytest.raises(InvalidQueryError):
            yelp(scale=0.1).community_members("atlantis")

    def test_scale_too_small(self):
        with pytest.raises(ConfigurationError):
            lastfm(scale=0.001)

    def test_deterministic_by_seed(self):
        assert yelp(scale=0.1, seed=1).graph == yelp(scale=0.1, seed=1).graph


class TestTargets:
    def test_bfs_targets_size(self, small_yelp):
        targets = bfs_targets(small_yelp.graph, 25)
        assert targets.size == 25
        assert np.unique(targets).size == 25

    def test_bfs_targets_include_hubs(self, small_yelp):
        targets = bfs_targets(small_yelp.graph, 20, num_roots=2)
        in_deg = small_yelp.graph.in_degrees()
        top = int(np.argmax(in_deg))
        assert top in targets

    def test_bfs_targets_colocated(self, small_yelp):
        # Targets should be concentrated in few communities.
        targets = bfs_targets(small_yelp.graph, 30)
        labels = small_yelp.communities[targets]
        dominant = np.bincount(labels).max()
        assert dominant >= 0.5 * targets.size

    def test_bfs_targets_whole_graph(self, small_yelp):
        n = small_yelp.graph.num_nodes
        targets = bfs_targets(small_yelp.graph, n)
        assert targets.size == n

    def test_bfs_targets_bad_size(self, small_yelp):
        with pytest.raises(InvalidQueryError):
            bfs_targets(small_yelp.graph, 0)
        with pytest.raises(InvalidQueryError):
            bfs_targets(small_yelp.graph, 10**6)

    def test_community_targets_all(self, small_yelp):
        members = small_yelp.community_members("vegas")
        targets = community_targets(small_yelp, "vegas")
        assert np.array_equal(targets, np.sort(members))

    def test_community_targets_sampled(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=10, rng=0)
        assert targets.size == 10
        members = set(small_yelp.community_members("vegas").tolist())
        assert set(targets.tolist()) <= members

    def test_community_targets_deterministic(self, small_yelp):
        a = community_targets(small_yelp, "vegas", size=10, rng=4)
        b = community_targets(small_yelp, "vegas", size=10, rng=4)
        assert np.array_equal(a, b)

    def test_community_targets_bad_size(self, small_yelp):
        with pytest.raises(InvalidQueryError):
            community_targets(small_yelp, "vegas", size=0, rng=0)
