"""Tests for the performance caches backing the hot loops."""

from __future__ import annotations

import math

import pytest

from repro.graphs import TagGraphBuilder
from repro.tags import BatchLattice, build_batches
from repro.tags.paths import TagPath


def _graph():
    builder = TagGraphBuilder(3)
    builder.add(0, 1, "a", 0.5)
    builder.add(0, 1, "b", 0.25)
    builder.add(1, 2, "a", 0.8)
    return builder.build()


class TestEdgeTagNeglogs:
    def test_values_match_log(self):
        g = _graph()
        neglogs = g.edge_tag_neglogs()
        assert dict(neglogs[0]) == pytest.approx(
            {"a": -math.log(0.5), "b": -math.log(0.25)}
        )
        assert dict(neglogs[1]) == pytest.approx({"a": -math.log(0.8)})

    def test_cached_identity(self):
        g = _graph()
        assert g.edge_tag_neglogs() is g.edge_tag_neglogs()

    def test_consistent_with_tag_map(self):
        g = _graph()
        for eid in range(g.num_edges):
            mapping = g.edge_tag_map(eid)
            for tag, neglog in g.edge_tag_neglogs()[eid]:
                assert math.exp(-neglog) == pytest.approx(mapping[tag])

    def test_sorted_by_tag(self):
        g = _graph()
        tags = [t for t, _ in g.edge_tag_neglogs()[0]]
        assert tags == sorted(tags)


def _path(edges, tags):
    return TagPath(
        nodes=tuple(range(len(edges) + 1)),
        edge_ids=tuple(edges),
        tag_choices=tuple(tags),
        probability=0.5,
    )


class TestLatticeBitmasks:
    def test_activated_by_matches_frozenset_semantics(self):
        paths = [
            _path([0], ["a"]),
            _path([1, 2], ["a", "b"]),
            _path([3], ["c"]),
            _path([4, 5], ["b", "c"]),
        ]
        lattice = BatchLattice(build_batches(paths))
        for selected in (
            set(), {"a"}, {"a", "b"}, {"b", "c"}, {"a", "b", "c"}, {"zzz"},
        ):
            expected = [
                idx
                for idx, batch in enumerate(lattice.batches)
                if batch.tag_set <= frozenset(selected)
            ]
            assert lattice.activated_by(selected) == expected, selected

    def test_unknown_tags_ignored(self):
        paths = [_path([0], ["a"])]
        lattice = BatchLattice(build_batches(paths))
        assert lattice.activated_by({"a", "unknown"}) == [0]

    def test_many_tags_beyond_64_bits(self):
        # Arbitrary-precision masks must survive > 64 distinct tags.
        paths = [_path([i], [f"tag-{i}"]) for i in range(70)]
        lattice = BatchLattice(build_batches(paths))
        all_tags = {f"tag-{i}" for i in range(70)}
        assert len(lattice.activated_by(all_tags)) == 70
        assert lattice.activated_by({"tag-69"}) == [
            idx
            for idx, b in enumerate(lattice.batches)
            if b.tag_set == frozenset({"tag-69"})
        ]
