"""Property tests for consistent-hash placement (`ring.py` + `keys.py`).

The sharded service's cache-affinity story rests on three properties,
checked here with Hypothesis over randomized member sets and key
populations:

* **Determinism** — placement is a pure function of (members,
  replicas, key): independently built rings agree on every key, and
  membership-churn round trips restore the original placement exactly.
* **Minimal disruption** — removing a member remaps *only* that
  member's keys (everyone else's placement is untouched), adding a
  member moves keys only *onto* the new member, and the moved fraction
  concentrates around ``1/N``.
* **Affinity stability** — :func:`routing_token` is invariant under
  everything that doesn't change the asset a query consumes (target
  permutation/duplication, tag order, QoS/deadline/report knobs), and
  sensitive to everything that does (k, seed, engine, targets).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.serve.keys import routing_token
from repro.serve.ring import HashRing

import pytest

MEMBERS = st.lists(
    st.sampled_from([f"w{i}" for i in range(12)]),
    min_size=1, max_size=8, unique=True,
)
KEYS = st.lists(st.text(min_size=1, max_size=24), min_size=1, max_size=80)


def _placements(ring: HashRing, keys) -> dict:
    return {key: ring.place(key) for key in keys}


class TestDeterminism:
    @given(members=MEMBERS, keys=KEYS)
    def test_independent_rings_agree(self, members, keys):
        a = HashRing(members)
        b = HashRing(reversed(members))  # insertion order is irrelevant
        assert _placements(a, keys) == _placements(b, keys)

    @given(members=MEMBERS, keys=KEYS, data=st.data())
    def test_churn_round_trip_restores_placement(self, members, keys, data):
        ring = HashRing(members)
        before = _placements(ring, keys)
        member = data.draw(st.sampled_from(members))
        ring.remove(member)
        ring.add(member)
        assert _placements(ring, keys) == before

    @given(members=MEMBERS, keys=KEYS)
    def test_placement_lands_on_a_member(self, members, keys):
        ring = HashRing(members)
        for key in keys:
            assert ring.place(key) in ring.members

    def test_empty_ring_refuses_placement(self):
        with pytest.raises(ConfigurationError):
            HashRing().place("anything")

    @given(members=MEMBERS, keys=KEYS)
    def test_preference_head_is_place(self, members, keys):
        ring = HashRing(members)
        for key in keys:
            pref = ring.preference(key, count=len(members))
            assert pref[0] == ring.place(key)
            # Distinct failover members, all real.
            assert len(set(pref)) == len(pref)
            assert set(pref) <= ring.members


class TestMinimalDisruption:
    @given(members=MEMBERS, keys=KEYS, data=st.data())
    def test_removal_remaps_only_the_removed_members_keys(
        self, members, keys, data
    ):
        if len(members) < 2:
            return
        ring = HashRing(members)
        before = _placements(ring, keys)
        victim = data.draw(st.sampled_from(members))
        ring.remove(victim)
        after = _placements(ring, keys)
        for key in keys:
            if before[key] == victim:
                assert after[key] != victim
            else:
                # Keys owned by surviving members must not move at all.
                assert after[key] == before[key]

    @given(members=MEMBERS, keys=KEYS, data=st.data())
    def test_addition_moves_keys_only_onto_the_new_member(
        self, members, keys, data
    ):
        ring = HashRing(members)
        before = _placements(ring, keys)
        newcomer = data.draw(
            st.sampled_from([f"n{i}" for i in range(4)])
        )
        ring.add(newcomer)
        after = _placements(ring, keys)
        for key in keys:
            if after[key] != before[key]:
                assert after[key] == newcomer

    @settings(max_examples=10, deadline=None)
    @given(workers=st.integers(min_value=2, max_value=8))
    def test_remapped_fraction_is_about_one_over_n(self, workers):
        """With V=128 virtual points the moved share concentrates
        around 1/N; allow generous slack (≤ 2/N) rather than asserting
        the expectation exactly."""
        members = [f"w{i}" for i in range(workers)]
        keys = [f"key-{i}" for i in range(3000)]
        ring = HashRing(members)
        before = _placements(ring, keys)
        ring.add("extra")
        after = _placements(ring, keys)
        moved = sum(1 for k in keys if after[k] != before[k])
        fraction = moved / len(keys)
        # Growing N -> N+1 should move ~1/(N+1) of keys.
        assert fraction <= 2.0 / (workers + 1)
        assert fraction > 0.0

    def test_load_is_roughly_balanced(self):
        members = [f"w{i}" for i in range(4)]
        ring = HashRing(members)
        keys = [f"campaign-{i}" for i in range(4000)]
        loads = {m: 0 for m in members}
        for key in keys:
            loads[ring.place(key)] += 1
        mean = len(keys) / len(members)
        for member, load in loads.items():
            assert 0.5 * mean <= load <= 1.6 * mean, (member, loads)


NODE_IDS = st.lists(
    st.integers(min_value=0, max_value=99), min_size=1, max_size=12
)
TAGS = st.lists(
    st.sampled_from(["a", "b", "c", "music", "food"]),
    min_size=0, max_size=4,
)


class TestRoutingTokenAffinity:
    @given(targets=NODE_IDS, tags=TAGS, data=st.data())
    def test_invariant_under_request_noise(self, targets, tags, data):
        """Permuting targets/tags, duplicating targets, and toggling
        per-call knobs must not move the campaign to another worker."""
        base = {
            "op": "find_seeds", "targets": targets, "tags": tags,
            "k": 3, "seed": 7, "engine": "trs",
        }
        token = routing_token(base)

        shuffled = dict(base)
        shuffled["targets"] = data.draw(st.permutations(targets))
        shuffled["tags"] = data.draw(st.permutations(tags))
        shuffled["targets"] = list(shuffled["targets"]) + [targets[0]]
        assert routing_token(shuffled) == token

        knobbed = dict(
            base, deadline=0.25, qos_class="batch", report=True,
            max_samples=10, id="req-42",
        )
        assert routing_token(knobbed) == token

    @given(targets=NODE_IDS, tags=TAGS)
    def test_sensitive_to_asset_identity(self, targets, tags):
        base = {
            "op": "find_seeds", "targets": targets, "tags": tags,
            "k": 3, "seed": 7, "engine": "trs",
        }
        token = routing_token(base)
        assert routing_token(dict(base, k=4)) != token
        assert routing_token(dict(base, seed=8)) != token
        assert routing_token(dict(base, engine="imm")) != token
        assert routing_token(dict(base, op="spread")) != token
        grown = dict(base, targets=list(targets) + [100])
        assert routing_token(grown) != token

    @given(targets=NODE_IDS, tags=TAGS, members=MEMBERS)
    def test_equivalent_requests_share_a_worker(self, targets, tags, members):
        """End to end: the ring places all noise-variants of one
        campaign on the same worker."""
        ring = HashRing(members)
        base = {
            "op": "find_seeds", "targets": targets, "tags": tags,
            "k": 2, "seed": 1, "engine": "trs",
        }
        noisy = {
            "op": "find_seeds",
            "targets": list(reversed(targets)) + list(targets),
            "tags": list(reversed(tags)),
            "k": 2, "seed": 1, "engine": "trs",
            "deadline": 1.0, "class": "interactive", "report": True,
        }
        assert ring.place(routing_token(base)) == ring.place(
            routing_token(noisy)
        )
