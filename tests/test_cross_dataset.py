"""Cross-dataset invariants: the full pipeline on every analogue.

Each named dataset must support the whole workflow (targets →
frequency scores → seed engines → tag selection → joint) with sane
outputs — regression protection for generator changes.
"""

from __future__ import annotations

import pytest

from repro import (
    JointConfig,
    JointQuery,
    SketchConfig,
    TagSelectionConfig,
    estimate_spread,
    find_seeds,
    find_tags,
    jointly_select,
)
from repro.core import frequency_tags
from repro.datasets import bfs_targets, dblp, lastfm, twitter, yelp
from repro.graphs import graph_stats

FAST = SketchConfig(pilot_samples=60, theta_min=150, theta_max=500)
TAGS_FAST = TagSelectionConfig(
    per_pair_paths=3, rr_theta=300, max_path_targets=12, max_queue=10_000
)
FACTORIES = {
    "lastfm": lastfm,
    "dblp": dblp,
    "yelp": yelp,
    "twitter": twitter,
}


@pytest.fixture(scope="module", params=sorted(FACTORIES))
def scenario(request):
    data = FACTORIES[request.param](scale=0.12)
    targets = bfs_targets(data.graph, min(15, data.graph.num_nodes // 2))
    return request.param, data, targets


class TestPipelinePerDataset:
    def test_structure_sane(self, scenario):
        name, data, _targets = scenario
        stats = graph_stats(data.graph)
        assert stats.num_edges > stats.num_nodes / 2
        assert 0.05 < stats.prob_mean < 0.6
        assert stats.tags_per_edge_mean >= 1.0
        assert stats.max_in_degree >= 3  # hubs exist

    def test_frequency_tags_nonzero(self, scenario):
        _name, data, targets = scenario
        tags = frequency_tags(data.graph, targets, 3)
        assert len(tags) == 3

    def test_seed_selection_reaches_targets(self, scenario):
        _name, data, targets = scenario
        tags = frequency_tags(data.graph, targets, 3)
        sel = find_seeds(
            data.graph, targets, tags, 2, engine="trs", config=FAST, rng=0
        )
        verified = estimate_spread(
            data.graph, sel.seeds, targets, tags, num_samples=150, rng=1
        )
        assert verified > 0.5  # at least some targets reachable

    def test_tag_selection_returns_tags(self, scenario):
        _name, data, targets = scenario
        seeds = [int(t) for t in targets[:2]]
        sel = find_tags(
            data.graph, seeds, targets, 3, config=TAGS_FAST, rng=0
        )
        assert len(sel.tags) >= 1

    def test_joint_runs_and_improves_on_nothing(self, scenario):
        _name, data, targets = scenario
        cfg = JointConfig(
            max_rounds=1, sketch=FAST, tag_config=TAGS_FAST, eval_samples=60
        )
        result = jointly_select(
            data.graph, JointQuery(targets, k=2, r=3), cfg, rng=0
        )
        assert result.spread > 0.0
        assert len(result.seeds) == 2
