"""Tests for the joint iterative framework (Algorithm 2) and the baseline."""

from __future__ import annotations

import pytest

from repro.core import (
    BaselineConfig,
    JointConfig,
    JointQuery,
    baseline_greedy,
    jointly_select,
)
from repro.datasets import community_targets
from repro.diffusion import estimate_spread
from repro.exceptions import ConfigurationError
from repro.sketch import SketchConfig
from repro.tags import TagSelectionConfig

FAST_JOINT = JointConfig(
    max_rounds=3,
    sketch=SketchConfig(pilot_samples=80, theta_min=200, theta_max=800),
    tag_config=TagSelectionConfig(
        per_pair_paths=5, rr_theta=500, max_path_targets=30
    ),
    eval_samples=100,
)


class TestJointConfig:
    def test_defaults_valid(self):
        JointConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_rounds": 0},
            {"convergence_tol": -1.0},
            {"seed_engine": "bogus"},
            {"tag_method": "bogus"},
            {"seed_init": "bogus"},
            {"tag_init": "bogus"},
            {"eval_samples": 0},
            {"eliminate_fraction": 0.0},
        ],
    )
    def test_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            JointConfig(**kwargs)


class TestJointlySelect:
    @pytest.fixture(scope="class")
    def yelp_run(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=25, rng=0)
        query = JointQuery(targets, k=4, r=5)
        result = jointly_select(small_yelp.graph, query, FAST_JOINT, rng=0)
        return small_yelp, query, result

    def test_budgets_respected(self, yelp_run):
        _, query, result = yelp_run
        assert len(result.seeds) == query.k
        assert len(result.tags) <= query.r
        assert len(set(result.seeds)) == query.k

    def test_history_steps_are_half_iterations(self, yelp_run):
        _, _, result = yelp_run
        steps = [h.step for h in result.history]
        assert steps[0] == 0.0
        assert steps[1] == 0.5
        assert steps == sorted(steps)

    def test_returned_spread_is_best_history(self, yelp_run):
        _, _, result = yelp_run
        assert result.spread == pytest.approx(
            max(h.spread for h in result.history)
        )

    def test_solution_beats_initialization(self, yelp_run):
        _, _, result = yelp_run
        assert result.spread >= result.history[0].spread - 1e-9

    def test_reported_spread_verifiable(self, yelp_run):
        dataset, query, result = yelp_run
        independent = estimate_spread(
            dataset.graph, result.seeds, query.targets, result.tags,
            num_samples=400, rng=99,
        )
        assert independent == pytest.approx(result.spread, rel=0.25, abs=2.0)

    def test_rounds_bounded(self, yelp_run):
        _, _, result = yelp_run
        assert 1 <= result.rounds <= FAST_JOINT.max_rounds

    def test_converges_quickly_like_paper(self, small_yelp):
        # Table 6: RS+FT converges within ~3-4 rounds (MC noise can add
        # one confirmation round on this small instance).
        targets = community_targets(small_yelp, "vegas", size=25, rng=1)
        cfg = JointConfig(
            max_rounds=6,
            sketch=FAST_JOINT.sketch,
            tag_config=FAST_JOINT.tag_config,
            eval_samples=FAST_JOINT.eval_samples,
        )
        result = jointly_select(
            small_yelp.graph, JointQuery(targets, k=3, r=4), cfg, rng=1
        )
        assert result.converged
        assert result.rounds <= 5

    def test_deterministic(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=2)
        query = JointQuery(targets, k=2, r=3)
        a = jointly_select(small_yelp.graph, query, FAST_JOINT, rng=3)
        b = jointly_select(small_yelp.graph, query, FAST_JOINT, rng=3)
        assert a.seeds == b.seeds
        assert a.tags == b.tags

    @pytest.mark.parametrize("seed_init,tag_init", [
        ("random", "random"),
        ("random", "frequency"),
        ("ims", "random"),
        ("ims", "frequency"),
    ])
    def test_all_init_combinations_run(self, small_yelp, seed_init, tag_init):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        cfg = JointConfig(
            max_rounds=2,
            seed_init=seed_init,
            tag_init=tag_init,
            sketch=FAST_JOINT.sketch,
            tag_config=FAST_JOINT.tag_config,
            eval_samples=60,
        )
        result = jointly_select(
            small_yelp.graph, JointQuery(targets, k=2, r=3), cfg, rng=0
        )
        assert len(result.seeds) == 2

    def test_elimination_restricts_universe(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        cfg = JointConfig(
            max_rounds=1,
            eliminate_fraction=0.3,
            sketch=FAST_JOINT.sketch,
            tag_config=FAST_JOINT.tag_config,
            eval_samples=60,
        )
        result = jointly_select(
            small_yelp.graph, JointQuery(targets, k=2, r=3), cfg, rng=0
        )
        assert len(result.tags) <= 3

    def test_pad_tags_fills_budget(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        cfg = JointConfig(
            max_rounds=1,
            pad_tags=True,
            sketch=FAST_JOINT.sketch,
            tag_config=FAST_JOINT.tag_config,
            eval_samples=60,
        )
        result = jointly_select(
            small_yelp.graph, JointQuery(targets, k=2, r=6), cfg, rng=0
        )
        assert len(result.tags) == 6

    @pytest.mark.parametrize("engine", ["trs", "ltrs", "lltrs"])
    def test_seed_engines(self, small_yelp, engine):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        cfg = JointConfig(
            max_rounds=1,
            seed_engine=engine,
            sketch=FAST_JOINT.sketch,
            tag_config=FAST_JOINT.tag_config,
            eval_samples=60,
        )
        result = jointly_select(
            small_yelp.graph, JointQuery(targets, k=2, r=3), cfg, rng=0
        )
        assert len(result.seeds) == 2


class TestBaselineGreedy:
    def test_budgets(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        result = baseline_greedy(
            small_yelp.graph, JointQuery(targets, k=3, r=4),
            BaselineConfig(rr_samples=200, eval_samples=50), rng=0,
        )
        assert len(result.seeds) == 3
        assert len(result.tags) == 4

    def test_asymmetric_budgets(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        result = baseline_greedy(
            small_yelp.graph, JointQuery(targets, k=1, r=4),
            BaselineConfig(rr_samples=200, eval_samples=50), rng=0,
        )
        assert len(result.seeds) == 1
        assert len(result.tags) == 4

    def test_positive_spread(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        result = baseline_greedy(
            small_yelp.graph, JointQuery(targets, k=3, r=4),
            BaselineConfig(rr_samples=200, eval_samples=50), rng=0,
        )
        assert result.spread > 0.0

    def test_iterative_not_worse_than_baseline(self, small_yelp):
        # The paper's headline comparison (Figures 13–14), allowing MC
        # slack on this small instance.
        targets = community_targets(small_yelp, "vegas", size=25, rng=0)
        query = JointQuery(targets, k=4, r=5)
        iterative = jointly_select(small_yelp.graph, query, FAST_JOINT, rng=0)
        base = baseline_greedy(
            small_yelp.graph, query,
            BaselineConfig(rr_samples=200, eval_samples=50), rng=0,
        )
        assert iterative.spread >= base.spread * 0.85

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            BaselineConfig(rr_samples=0)
        with pytest.raises(ConfigurationError):
            BaselineConfig(tag_candidates=0)
