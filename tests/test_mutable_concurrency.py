"""Concurrency and fault tolerance of the mutable serving substrate.

Three claims, each load-bearing for serving edits in production:

1. **No torn reads.** A query is pinned to one ``(graph, epoch)`` pair
   for its whole lifetime; a writer storming edits underneath
   concurrent readers never produces an answer that mixes epochs. The
   proof is behavioural: every answer is recomputed from a cold build
   on ``MutableTagGraph.snapshot(answer.epoch)`` — the historical-epoch
   replay — and must match bit-for-bit.
2. **Worker death mid-storm is invisible.** Killing a pool worker
   while queries and edits interleave must yield answers bit-identical
   to a fault-free server of the same shape (the engine's
   ``SeedSequence`` replay contract, here exercised through the full
   serve + mutation stack).
3. **No leaked shared memory.** Each epoch's snapshot is republished
   to the pool through a fresh shared-CSR segment; superseded epochs
   must be reclaimed by the weakref path once unpinned, and closing
   the engine must leave zero live segments — across pool rebuilds.
"""

from __future__ import annotations

import gc
import threading
import time

import numpy as np

from repro.core.joint import JointConfig
from repro.engine import FaultPlan, RetryPolicy, SamplingEngine
from repro.engine.shared_csr import active_tokens
from repro.serve.server import CampaignServer
from repro.sketch import (
    SketchConfig,
    trs_build_repairable_sketch,
    trs_select_from_sketch,
)

from tests.test_mutable_differential import TAGS, EditStorm, make_graph

#: Fast-backoff policy so recovery tests don't sleep for real.
FAST = RetryPolicy(backoff_base=0.001, backoff_max=0.005, jitter=0.0)

SMALL = SketchConfig(theta_min=64, theta_max=256, pilot_samples=60)

N_READERS = 3
QUERIES_PER_READER = 6
WRITER_BATCHES = 5


def _cold_seeds(mutable, epoch, targets, seed):
    """Library-level recomputation of the answer at a pinned epoch."""
    snap = mutable.snapshot(epoch)
    sketch = trs_build_repairable_sketch(
        snap, targets, TAGS, 3, seed=seed, config=SMALL, mode="scalar"
    )
    return trs_select_from_sketch(snap, sketch, 3).seeds


def test_readers_never_see_torn_epochs_during_edit_storm():
    rng = np.random.default_rng(404)
    graph = make_graph(rng, n=40, m=160)
    server = CampaignServer(
        graph, config=JointConfig(sketch=SMALL), mutable=True, pool_size=3
    )
    targets = list(range(0, graph.num_nodes, 2))
    per_reader: dict[int, list] = {r: [] for r in range(N_READERS)}
    errors: list[BaseException] = []
    started = threading.Barrier(N_READERS + 1)

    def reader(rid: int) -> None:
        try:
            started.wait(timeout=10)
            for i in range(QUERIES_PER_READER):
                seed = rid * 100 + i
                resp = server.find_seeds(
                    targets, list(TAGS), 3, engine="trs", seed=seed
                )
                per_reader[rid].append((resp.epoch, seed, resp.seeds))
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    def writer() -> None:
        try:
            started.wait(timeout=10)
            storm = EditStorm(graph, np.random.default_rng(405))
            for _ in range(WRITER_BATCHES):
                server.apply_edits(storm.batch(3))
                time.sleep(0.01)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(r,)) for r in range(N_READERS)
    ]
    threads.append(threading.Thread(target=writer))
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert server.epoch == WRITER_BATCHES

        mutable = server.mutable_graph
        for rid, answers in per_reader.items():
            assert len(answers) == QUERIES_PER_READER
            epochs = [e for e, _, _ in answers]
            # A reader issues queries sequentially, and epochs only
            # ever advance — so its observed epochs are monotone.
            assert epochs == sorted(epochs), (rid, epochs)
            for epoch, seed, seeds in answers:
                assert seeds == _cold_seeds(mutable, epoch, targets, seed), (
                    f"reader {rid} answer at epoch {epoch} (seed {seed}) "
                    "does not match a cold build of that epoch — torn read"
                )
    finally:
        server.close()


def test_worker_kill_mid_storm_is_bit_identical_to_fault_free():
    graph = make_graph(np.random.default_rng(7), n=40, m=160)
    targets = list(range(0, graph.num_nodes, 2))

    def run(fault_plan):
        with SamplingEngine(
            mode="bitparallel", shard_size=8, workers=2,
            retry_policy=FAST, fault_plan=fault_plan,
            parallel_threshold=0,
        ) as engine:
            server = CampaignServer(
                graph,
                config=JointConfig(sketch=SMALL),
                mutable=True,
                sampler=engine,
            )
            try:
                storm = EditStorm(graph, np.random.default_rng(8))
                answers = []
                rebuilds = 0
                for step in range(3):
                    resp = server.find_seeds(
                        targets, list(TAGS), 3, engine="trs", seed=step
                    )
                    answers.append((resp.epoch, resp.seeds, resp.spread))
                    # Engine views isolate telemetry per query, so pool
                    # rebuilds surface in the query report's runtime
                    # counters, not on the parent engine.
                    counters = resp.report["metrics"]["counters"]
                    rebuilds += counters.get("runtime.pool_rebuilds", 0)
                    server.apply_edits(storm.batch(2))
            finally:
                server.close()
        return answers, rebuilds

    clean, clean_rebuilds = run(None)
    faulted, fault_rebuilds = run(FaultPlan().kill_shard(1))
    assert clean_rebuilds == 0
    assert fault_rebuilds >= 1, "the kill plan never fired"
    assert faulted == clean, (
        "worker death changed served answers:\n"
        f"clean:   {clean}\nfaulted: {faulted}"
    )
    assert active_tokens() == frozenset(), (
        "shared-memory CSR segments leaked across the pool rebuild"
    )


def test_epoch_republish_reclaims_superseded_segments():
    graph = make_graph(np.random.default_rng(21), n=40, m=160)
    targets = list(range(0, graph.num_nodes, 2))
    with SamplingEngine(
        mode="bitparallel", shard_size=8, workers=2,
        retry_policy=FAST, parallel_threshold=0,
    ) as engine:
        server = CampaignServer(
            graph,
            config=JointConfig(sketch=SMALL),
            mutable=True,
            sampler=engine,
        )
        try:
            storm = EditStorm(graph, np.random.default_rng(22))
            peak = 0
            for step in range(3):
                # Spread queries route the *snapshot itself* through the
                # pool, forcing a shared-CSR publication per epoch.
                server.estimate_spread(
                    seeds=[0, 1], targets=targets, tags=list(TAGS),
                    num_samples=128, seed=step,
                )
                peak = max(peak, engine.published_graph_count())
                server.apply_edits(storm.batch(2), repair=False)
            server.estimate_spread(
                seeds=[0, 1], targets=targets, tags=list(TAGS),
                num_samples=128, seed=99,
            )
            peak = max(peak, engine.published_graph_count())
            # Republish actually happened: base graph + at least one
            # epoch snapshot were live simultaneously.
            assert peak >= 2
        finally:
            server.close()
        # Superseded epoch snapshots are now unreferenced; the weakref
        # finalizers must reclaim their segments. Only the base graph
        # (still referenced by this test and as the mutable's base) and
        # the current snapshot (the MutableTagGraph's cache) may stay.
        gc.collect()
        assert engine.published_graph_count() <= 2
    assert active_tokens() == frozenset(), (
        "closing the engine left shared-memory segments live"
    )
