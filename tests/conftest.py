"""Shared fixtures: the paper's worked examples and small synthetic data.

``fig4_graph`` and ``fig9_graph`` are exact reconstructions of the
paper's Figure 4 (non-submodularity counterexample) and Figure 9 / 10
(tag-selection worked example); every probability was recovered from
the arithmetic in the paper's text, so the expected spreads (0.3 /
1.02, 0.81, 2.21, 2.61, …) are testable to machine precision through
the exact possible-world oracle.
"""

from __future__ import annotations

import pytest

from repro.datasets import lastfm, yelp
from repro.graphs import TagGraphBuilder


@pytest.fixture
def fig4_graph():
    """Paper Figure 4: two disjoint 2-hop chains, tag-disjoint edges.

    Nodes: s1=0, v1=1, t1=2, s2=3, v2=4, t2=5.
    Seeds {s1, s2}, targets {t1, t2}.
    σ(·, {c1}) = 0.3 and σ(·, {c1, c2, c3}) = 1.02 — the
    non-submodularity counterexample of Lemma 1.
    """
    builder = TagGraphBuilder(6)
    builder.add(0, 1, "c1", 0.5)
    builder.add(1, 2, "c1", 0.6)
    builder.add(3, 4, "c2", 0.8)
    builder.add(4, 5, "c3", 0.9)
    return builder.build()


#: Figure 9 edge list: (name, u, v, tag, prob). Node ids: A..I = 0..8.
FIG9_EDGES = [
    ("e1", 0, 1, "c1", 0.9),
    ("e2", 2, 1, "c6", 0.8),
    ("e3", 0, 3, "c2", 0.9),
    ("e4", 1, 4, "c5", 0.7),
    ("e5", 2, 4, "c5", 0.9),
    ("e6", 2, 5, "c5", 0.9),
    ("e7", 1, 6, "c4", 0.8),
    ("e8", 3, 6, "c3", 0.9),
    ("e9", 0, 7, "c6", 0.6),
    ("e10", 4, 7, "c4", 0.8),
    ("e11", 4, 8, "c6", 0.8),
    ("e12", 5, 8, "c5", 0.7),
]

FIG9_SEEDS = (0, 1, 2)  # A, B, C
FIG9_TARGETS = (6, 7, 8)  # G, H, I


@pytest.fixture
def fig9_graph():
    """Paper Figure 9: the tag-selection worked example (Examples 3 & 4)."""
    builder = TagGraphBuilder(9)
    for _name, u, v, tag, prob in FIG9_EDGES:
        builder.add(u, v, tag, prob)
    return builder.build()


@pytest.fixture
def line_graph():
    """0 → 1 → 2 → 3 chain, one tag per edge, probability 0.5 each."""
    builder = TagGraphBuilder(4)
    builder.add(0, 1, "a", 0.5)
    builder.add(1, 2, "b", 0.5)
    builder.add(2, 3, "c", 0.5)
    return builder.build()


@pytest.fixture
def diamond_graph():
    """0 → {1, 2} → 3 diamond with overlapping tags.

    Edge (0,1): tags a=0.8, b=0.4; (0,2): a=0.5; (1,3): b=0.6;
    (2,3): c=0.9.
    """
    builder = TagGraphBuilder(4)
    builder.add(0, 1, "a", 0.8)
    builder.add(0, 1, "b", 0.4)
    builder.add(0, 2, "a", 0.5)
    builder.add(1, 3, "b", 0.6)
    builder.add(2, 3, "c", 0.9)
    return builder.build()


@pytest.fixture(scope="session")
def small_yelp():
    """Session-scoped small Yelp analogue for integration-ish tests."""
    return yelp(scale=0.15, seed=13)


@pytest.fixture(scope="session")
def small_lastfm():
    """Session-scoped small lastFM analogue."""
    return lastfm(scale=0.5, seed=7)
