"""Chaos battery for the sharded service: SIGKILL'd workers must be invisible.

Failure contract under test (see ``docs/sharding.md``):

* a worker SIGKILL'd **mid-query** is respawned and the in-flight
  retryable work replayed — the client still gets an answer that is
  bit-identical to a fault-free run;
* outcome accounting is exact: every issued request is classified as
  done, degraded, rejected, or errored — nothing is double-counted and
  nothing vanishes (``errors == 0`` for retryable ops);
* a respawned worker replays the edit journal, so post-edit kills do
  not fork the fleet's epoch;
* scatter queries (non-retryable fan-outs) are restarted whole and
  still reproduce the fault-free answer;
* the shared-memory graph segment never leaks: after ``close()`` the
  process-local registry of live shm tokens is empty, even after
  worker deaths.

Fault injection uses the seeded :class:`~repro.serve.chaos.ServeFaultPlan`
(``build_slow_rate=1.0``) inside the workers so every asset build
sleeps deterministically — widening the kill window without making
answers timing-dependent (chaos sleeps never change result bytes).
"""

from __future__ import annotations

import copy
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.joint import JointConfig
from repro.engine.shared_csr import active_tokens
from repro.graphs.tag_graph import TagGraph
from repro.serve import ShardedCampaignService, WorkerSpec
from repro.serve.protocol import handle_request
from repro.sketch.theta import SketchConfig

FAST_SKETCH = SketchConfig(theta_max=600, pilot_samples=30)
CONFIG = JointConfig(sketch=FAST_SKETCH)
#: Every build sleeps this long — wide enough to land a SIGKILL inside.
SLOW = {"seed": 1, "build_slow_rate": 1.0, "build_slow_seconds": 0.5}

TARGETS = list(range(10, 24))


def make_graph(num_nodes: int = 40, num_edges: int = 160) -> TagGraph:
    rng = np.random.default_rng(23)
    src = rng.integers(0, num_nodes, num_edges).astype(np.int64)
    dst = (src + 1 + rng.integers(0, num_nodes - 1, num_edges)) % num_nodes
    ids = np.sort(
        rng.choice(num_edges, size=num_edges // 2, replace=False)
    ).astype(np.int64)
    return TagGraph(
        num_nodes, src, dst.astype(np.int64),
        {"a": (ids, rng.uniform(0.05, 0.4, ids.size))},
    )


GRAPH = make_graph()


def request_for(seed: int, **extra) -> dict:
    return {
        "op": "find_seeds", "targets": TARGETS, "tags": ["a"], "k": 2,
        "engine": "trs", "seed": seed, **extra,
    }


def answer_of(response: dict) -> tuple:
    assert response["ok"], response
    return (tuple(response["seeds"]), response["spread"], response["epoch"])


def _spec(**overrides) -> WorkerSpec:
    kwargs = dict(config=CONFIG, engine_mode="vectorized", pool_size=2)
    kwargs.update(overrides)
    return WorkerSpec(**kwargs)


@pytest.fixture(scope="module")
def fault_free_answers():
    """Answers from a chaos-free fleet — the oracle every chaos run
    must still reproduce bit for bit."""
    with ShardedCampaignService(GRAPH, workers=3, spec=_spec()) as service:
        answers = {
            seed: answer_of(
                handle_request(service, request_for(seed))
            )
            for seed in range(8)
        }
        scatter = answer_of(
            handle_request(service, request_for(50, scatter=True))
        )
    return answers, scatter


class TestKillMidQuery:
    def test_sigkill_during_build_is_invisible_to_the_client(
        self, fault_free_answers
    ):
        answers, _ = fault_free_answers
        service = ShardedCampaignService(
            GRAPH, workers=3, spec=_spec(chaos=SLOW)
        )
        try:
            request = request_for(3)
            victim = service.worker_for(request)
            victim_pid = service.worker_pids()[victim]

            with ThreadPoolExecutor(1) as pool:
                future = pool.submit(
                    handle_request, service, copy.deepcopy(request)
                )
                # The build sleeps 0.5 s; kill the owning worker while
                # the query is inside it.
                time.sleep(0.15)
                os.kill(victim_pid, signal.SIGKILL)
                response = future.result(timeout=120)

            assert answer_of(response) == answers[3]

            health = service.health()
            assert health["status"] == "ok"  # fully respawned
            assert health["workers"][victim]["respawns"] == 1
            assert health["workers"][victim]["pid"] != victim_pid
            counters = service.metrics()["counters"]
            assert counters["router.respawns"] == 1
            assert counters["router.retries"] >= 1

            # The respawned worker serves the same campaign, same bytes.
            again = handle_request(service, request_for(3))
            assert answer_of(again) == answers[3]
        finally:
            service.close()
        assert active_tokens() == frozenset()

    def test_scatter_query_restarts_whole_after_a_kill(self):
        """Scatter fan-outs are non-retryable per shard: a worker death
        mid-build fails the whole query, and the router restarts it
        from scratch over the surviving fleet — reproducing the
        fault-free answer (the pipeline is deterministic in θ and the
        RNG prefix, not in the fleet size).

        Chaos sleeps don't apply here (scatter builds bypass the asset
        cache), so the kill window comes from the build itself: a
        pinned large θ on the scalar engine over a bigger graph keeps
        every worker inside ``sample_rr_partition`` for hundreds of
        milliseconds.
        """
        graph = make_graph(300, 2400)
        slow_theta = JointConfig(sketch=SketchConfig(
            theta_min=16_000, theta_max=16_000, pilot_samples=50,
        ))
        service = ShardedCampaignService(
            graph, workers=3,
            spec=WorkerSpec(
                config=slow_theta, engine_mode="scalar", pool_size=2
            ),
        )
        try:
            request = request_for(50, scatter=True)
            # Scatter answers are never cached — this fault-free run is
            # the oracle for the killed run of the identical request.
            baseline = answer_of(
                handle_request(service, copy.deepcopy(request))
            )

            pids = service.worker_pids()
            with ThreadPoolExecutor(1) as pool:
                future = pool.submit(
                    handle_request, service, copy.deepcopy(request)
                )
                time.sleep(0.15)
                os.kill(pids["w1"], signal.SIGKILL)
                response = future.result(timeout=120)

            assert answer_of(response) == baseline
            counters = service.metrics()["counters"]
            assert counters["router.scatter_restarts"] >= 1
            assert service.health()["status"] == "ok"
        finally:
            service.close()
        assert active_tokens() == frozenset()


class TestOutcomeAccounting:
    def test_every_issued_request_is_accounted_exactly_once(
        self, fault_free_answers
    ):
        """Fire a concurrent burst, SIGKILL one worker mid-burst, and
        classify every outcome: done + degraded + rejected + errors
        must equal issued, with zero errors — worker death surfaces as
        retries, never as client-visible failures or lost futures."""
        answers, _ = fault_free_answers
        service = ShardedCampaignService(
            GRAPH, workers=3,
            spec=_spec(chaos=dict(SLOW, build_slow_seconds=0.3)),
        )
        issued = 8
        try:
            kill_at = threading.Barrier(issued + 1)

            def one(seed: int) -> dict:
                kill_at.wait(timeout=60)
                return handle_request(service, request_for(seed))

            with ThreadPoolExecutor(issued) as pool:
                futures = [pool.submit(one, seed) for seed in range(issued)]
                kill_at.wait(timeout=60)
                time.sleep(0.1)
                os.kill(service.worker_pids()["w0"], signal.SIGKILL)
                responses = [f.result(timeout=120) for f in futures]

            done = degraded = rejected = errors = 0
            for seed, response in enumerate(responses):
                if response.get("ok"):
                    if response.get("tier", "full") == "full":
                        done += 1
                    else:
                        degraded += 1
                    assert answer_of(response) == answers[seed]
                elif isinstance(response.get("error"), dict):
                    rejected += 1
                else:
                    errors += 1
            assert done + degraded + rejected + errors == issued
            assert errors == 0
            assert done >= 1  # the burst wasn't shed wholesale

            # Router-side accounting agrees with the client's view.
            admission = service.health()["admission"]
            assert admission["admitted"] + admission["rejected"] >= issued
            assert admission["in_flight"] == 0
            assert service.metrics()["counters"]["router.respawns"] == 1
        finally:
            service.close()
        assert active_tokens() == frozenset()


class TestJournalReplay:
    def test_respawned_worker_replays_edits_and_rejoins_the_epoch(self):
        service = ShardedCampaignService(
            GRAPH, workers=2, spec=_spec(mutable=True, chaos=None)
        )
        try:
            edits = [
                {"op": "tag_set", "edge_id": 4, "tag": "a", "prob": 0.33},
            ]
            summary = handle_request(
                service, {"op": "apply_edits", "edits": edits}
            )
            assert summary["ok"] and summary["epoch"] == 1

            post_edit = {
                seed: answer_of(handle_request(service, request_for(seed)))
                for seed in range(4)
            }
            assert all(a[2] == 1 for a in post_edit.values())

            os.kill(service.worker_pids()["w0"], signal.SIGKILL)
            deadline = time.monotonic() + 30
            while service.health()["workers"]["w0"]["respawns"] == 0:
                assert time.monotonic() < deadline, "respawn never happened"
                time.sleep(0.05)

            # The fresh w0 process replayed the journal before taking
            # traffic: same epoch, same post-edit answers, everywhere.
            for reply in service.broadcast({"op": "health"}):
                assert reply["health"]["epoch"] == 1
            for seed in range(4):
                got = answer_of(handle_request(service, request_for(seed)))
                assert got == post_edit[seed]
        finally:
            service.close()
        assert active_tokens() == frozenset()


class TestRespawnBudget:
    def test_exhausted_budget_retires_the_worker_and_degrades_health(self):
        service = ShardedCampaignService(
            GRAPH, workers=2, spec=_spec(), max_respawns=1
        )
        try:
            for _ in range(2):
                pid = service.worker_pids().get("w0")
                if pid is None:
                    break
                os.kill(pid, signal.SIGKILL)
                deadline = time.monotonic() + 30
                while service.worker_pids().get("w0") == pid:
                    assert time.monotonic() < deadline
                    time.sleep(0.05)

            deadline = time.monotonic() + 30
            while service.health()["status"] != "degraded":
                assert time.monotonic() < deadline, service.health()
                time.sleep(0.05)
            assert "w0" not in service.ring.members
            assert service.num_workers == 1

            # The surviving worker still answers every campaign.
            for seed in range(4):
                assert handle_request(service, request_for(seed))["ok"]
        finally:
            service.close()
        assert active_tokens() == frozenset()
