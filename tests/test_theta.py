"""Tests for SketchConfig, θ computation (Theorem 5), and OPT_T estimation."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError, EstimationError
from repro.sketch import SketchConfig, compute_theta, estimate_opt_t
from repro.utils.mathx import log_binomial


class TestSketchConfig:
    def test_defaults_match_paper(self):
        cfg = SketchConfig()
        assert cfg.epsilon == 0.1
        assert cfg.delta == 0.01
        assert cfg.alpha == 1.0
        assert cfg.h == 3

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.1])
    def test_bad_epsilon(self, eps):
        with pytest.raises(ConfigurationError):
            SketchConfig(epsilon=eps)

    def test_bad_theta_order(self):
        with pytest.raises(ConfigurationError):
            SketchConfig(theta_min=100, theta_max=10)

    @pytest.mark.parametrize("delta", [0.0, 1.0])
    def test_bad_delta(self, delta):
        with pytest.raises(ConfigurationError):
            SketchConfig(delta=delta)

    def test_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            SketchConfig(alpha=0.0)

    def test_bad_h(self):
        with pytest.raises(ConfigurationError):
            SketchConfig(h=-1)

    def test_with_epsilon(self):
        cfg = SketchConfig().with_epsilon(0.3)
        assert cfg.epsilon == 0.3
        assert cfg.delta == SketchConfig().delta


class TestComputeTheta:
    def test_formula_unclamped(self):
        cfg = SketchConfig(theta_min=1, theta_max=10**12)
        n, k, t, opt, eps = 100, 3, 20, 5.0, 0.1
        expected = math.ceil(
            (8 + 2 * eps)
            * t
            * (math.log(n) + log_binomial(n, k) + math.log(2))
            / (opt * eps * eps)
        )
        assert compute_theta(n, k, t, opt, cfg) == expected

    def test_clamped_to_max(self):
        cfg = SketchConfig(theta_min=10, theta_max=500)
        assert compute_theta(10**6, 10, 10**4, 1.0, cfg) == 500

    def test_clamped_to_min(self):
        cfg = SketchConfig(theta_min=1000, theta_max=10**9)
        assert compute_theta(10, 1, 1, 1000.0, cfg) == 1000

    def test_decreases_with_opt(self):
        cfg = SketchConfig(theta_min=1, theta_max=10**12)
        small_opt = compute_theta(1000, 5, 100, 1.0, cfg)
        big_opt = compute_theta(1000, 5, 100, 50.0, cfg)
        assert big_opt < small_opt

    def test_grows_with_targets(self):
        cfg = SketchConfig(theta_min=1, theta_max=10**12)
        few = compute_theta(1000, 5, 10, 5.0, cfg)
        many = compute_theta(1000, 5, 1000, 5.0, cfg)
        assert many > few

    def test_shrinks_with_epsilon(self):
        lo = compute_theta(
            1000, 5, 100, 5.0, SketchConfig(epsilon=0.1, theta_max=10**12)
        )
        hi = compute_theta(
            1000, 5, 100, 5.0, SketchConfig(epsilon=0.5, theta_max=10**12)
        )
        assert hi < lo

    def test_nonpositive_opt_raises(self):
        with pytest.raises(EstimationError):
            compute_theta(100, 3, 10, 0.0)


class TestEstimateOptT:
    def test_at_least_one(self, line_graph):
        import numpy as np

        opt = estimate_opt_t(
            line_graph, [3], np.zeros(line_graph.num_edges), 1, rng=0
        )
        assert opt >= 1.0

    def test_grows_with_connectivity(self, line_graph):
        import numpy as np

        weak = estimate_opt_t(
            line_graph, [1, 2, 3],
            np.full(line_graph.num_edges, 0.05), 1,
            rng=0,
        )
        strong = estimate_opt_t(
            line_graph, [1, 2, 3],
            np.ones(line_graph.num_edges), 1,
            rng=0,
        )
        assert strong >= weak
        assert strong == pytest.approx(3.0, abs=0.2)

    def test_lower_bounds_true_optimum(self, diamond_graph):
        import numpy as np

        probs = diamond_graph.all_edge_probabilities()
        opt = estimate_opt_t(
            diamond_graph, [1, 2, 3], probs, 1,
            SketchConfig(pilot_samples=2000), rng=0,
        )
        # True optimum for k=1 is seeding node 0; spread ≤ 3.
        assert opt <= 3.0 + 0.1
