"""Tests for the unified find_seeds entry point."""

from __future__ import annotations

import pytest

from repro import find_seeds
from repro.datasets import community_targets
from repro.exceptions import ConfigurationError
from repro.graphs import TagGraphBuilder
from repro.index import make_ltrs_manager
from repro.sketch import SketchConfig

FAST = SketchConfig(pilot_samples=100, theta_min=200, theta_max=1200)


def _star():
    builder = TagGraphBuilder(6)
    for v in range(1, 6):
        builder.add(0, v, "t", 1.0)
    return builder.build()


class TestFindSeeds:
    @pytest.mark.parametrize("engine", ["trs", "itrs", "ltrs", "lltrs"])
    def test_all_sketch_engines_find_hub(self, engine):
        g = _star()
        sel = find_seeds(
            g, [1, 2, 3], ["t"], 1, engine=engine, config=FAST, rng=0
        )
        assert sel.seeds == (0,)
        assert sel.engine == engine
        assert sel.elapsed_seconds >= 0.0

    def test_greedy_mc_engine(self):
        g = _star()
        sel = find_seeds(
            g, [1, 2, 3], ["t"], 1, engine="greedy-mc",
            num_samples=30, rng=0,
        )
        assert sel.seeds == (0,)

    def test_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            find_seeds(_star(), [1], ["t"], 1, engine="magic", rng=0)

    def test_external_manager_reused(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        tags = small_yelp.graph.tags[:4]
        mgr = make_ltrs_manager(small_yelp.graph)
        find_seeds(
            small_yelp.graph, targets, tags, 2,
            engine="ltrs", config=FAST, manager=mgr, rng=0,
        )
        built = mgr.stats.worlds_built
        assert built > 0
        find_seeds(
            small_yelp.graph, targets, tags, 2,
            engine="ltrs", config=FAST, manager=mgr, rng=1,
        )
        assert mgr.stats.worlds_built == built

    def test_engines_agree_on_easy_instance(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        tags = small_yelp.graph.tags[:5]
        spreads = {}
        for engine in ("trs", "ltrs", "lltrs"):
            sel = find_seeds(
                small_yelp.graph, targets, tags, 3,
                engine=engine, config=FAST, rng=0,
            )
            spreads[engine] = sel.estimated_spread
        top = max(spreads.values())
        assert all(v >= 0.6 * top for v in spreads.values())
