"""Cross-shard differential suite: sharded answers ≡ single-process, bit for bit.

The sharded service's contract is that sharding is *invisible*: for
every op, engine, and worker count, the wire response — seeds, tags,
spread, epoch, **and the inlined observability work counters** — is
bit-identical to what one in-process :class:`~repro.serve.CampaignServer`
(with the same single-worker engine) returns for the same request.

Covered here:

* all four query ops × {scalar, vectorized, bitparallel} engines ×
  {1, 2, 4} workers, cold and warm (the warm repeat must be a cache
  hit, proving ring affinity landed it on the same worker's cache);
* scatter/gather ``find_seeds`` — the partitioned build + router-side
  greedy cover must reproduce the monolithic TRS answer exactly;
* ``apply_edits`` epoch broadcast on a mutable fleet — same epoch on
  every worker, post-edit answers equal to a mutable single-process
  server's, epochs stamped on every response.

Worker processes are spawned (not forked), so each (engine × fleet)
combination boots once per module and every op runs against it.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.joint import JointConfig
from repro.engine.parallel import SamplingEngine
from repro.graphs.tag_graph import TagGraph
from repro.serve import CampaignServer, ShardedCampaignService, WorkerSpec
from repro.serve.protocol import handle_request
from repro.sketch.theta import SketchConfig

FAST_SKETCH = SketchConfig(theta_max=800, pilot_samples=30)
CONFIG = JointConfig(sketch=FAST_SKETCH)
ENGINES = ("scalar", "vectorized", "bitparallel")
FLEETS = (1, 2, 4)

TARGETS = list(range(8, 20))
SPREAD_SEEDS = [0, 3]

#: Every query op, with inlined observability reports for the counter
#: comparison. ``elapsed_ms`` is timing and excluded from comparison.
REQUESTS = {
    "find_seeds": {
        "op": "find_seeds", "targets": TARGETS, "tags": ["a"], "k": 2,
        "engine": "trs", "seed": 3, "report": True,
    },
    "find_tags": {
        "op": "find_tags", "seeds": SPREAD_SEEDS, "targets": TARGETS,
        "r": 1, "seed": 1, "report": True,
    },
    "joint": {
        "op": "joint", "targets": TARGETS, "k": 2, "r": 1, "seed": 2,
        "report": True,
    },
    "spread": {
        "op": "spread", "seeds": SPREAD_SEEDS, "targets": TARGETS,
        "tags": ["a", "b"], "num_samples": 60, "seed": 5, "report": True,
    },
}

_COMPARED_FIELDS = (
    "ok", "seeds", "tags", "spread", "engine", "method", "rounds",
    "converged", "class", "tier", "epoch",
)


def make_graph(num_nodes: int = 40, num_edges: int = 160) -> TagGraph:
    rng = np.random.default_rng(11)
    src = rng.integers(0, num_nodes, num_edges).astype(np.int64)
    dst = (src + 1 + rng.integers(0, num_nodes - 1, num_edges)) % num_nodes
    tag_probs = {}
    for tag in ("a", "b"):
        ids = np.sort(
            rng.choice(num_edges, size=num_edges // 2, replace=False)
        ).astype(np.int64)
        tag_probs[tag] = (ids, rng.uniform(0.05, 0.45, ids.size))
    return TagGraph(num_nodes, src, dst.astype(np.int64), tag_probs)


GRAPH = make_graph()


def _comparable(response: dict) -> dict:
    """The deterministic slice of a wire response."""
    return {f: response[f] for f in _COMPARED_FIELDS if f in response}


def _counters(response: dict) -> dict:
    return response["report"]["metrics"]["counters"]


@pytest.fixture(scope="module", params=ENGINES)
def engine_mode(request):
    return request.param


@pytest.fixture(scope="module")
def oracle(engine_mode):
    sampler = SamplingEngine(mode=engine_mode, workers=1)
    server = CampaignServer(GRAPH, config=CONFIG, sampler=sampler)
    yield server
    server.close()
    sampler.close()


@pytest.fixture(scope="module", params=FLEETS)
def fleet(request, engine_mode):
    service = ShardedCampaignService(
        GRAPH,
        workers=request.param,
        spec=WorkerSpec(config=CONFIG, engine_mode=engine_mode),
    )
    yield service
    service.close()


class TestAllOpsAllEnginesAllFleets:
    @pytest.mark.parametrize("op", sorted(REQUESTS))
    def test_cold_and_warm_bit_identical(self, op, oracle, fleet):
        request = REQUESTS[op]
        expected_cold = handle_request(oracle, copy.deepcopy(request))
        expected_warm = handle_request(oracle, copy.deepcopy(request))
        got_cold = handle_request(fleet, copy.deepcopy(request))
        got_warm = handle_request(fleet, copy.deepcopy(request))

        assert expected_cold["ok"] and got_cold["ok"], (
            expected_cold, got_cold,
        )
        assert _comparable(got_cold) == _comparable(expected_cold)
        assert _comparable(got_warm) == _comparable(expected_warm)
        # Work counters: the sharded cold answer accounts for exactly
        # the work the single-process cold answer does, and the warm
        # repeat merges the cached asset's build counters identically.
        assert _counters(got_cold) == _counters(expected_cold)
        assert _counters(got_warm) == _counters(expected_warm)
        # Affinity: the repeat landed on the worker holding the asset.
        assert got_warm["cache"] == expected_warm["cache"]

    def test_error_responses_identical(self, oracle, fleet):
        bad = {
            "op": "find_seeds", "targets": TARGETS, "tags": ["nope"],
            "k": 2, "engine": "trs", "seed": 0,
        }
        expected = handle_request(oracle, copy.deepcopy(bad))
        got = handle_request(fleet, copy.deepcopy(bad))
        assert not expected["ok"] and not got["ok"]
        assert got["error"] == expected["error"]
        assert got["type"] == expected["type"]


class TestScatterGather:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_scatter_matches_monolithic_trs(self, k, oracle, fleet):
        request = {
            "op": "find_seeds", "targets": TARGETS, "tags": ["a"],
            "k": k, "engine": "trs", "seed": 9,
        }
        expected = handle_request(oracle, copy.deepcopy(request))
        got = handle_request(fleet, {**request, "scatter": True})
        assert got["ok"], got
        assert got["seeds"] == expected["seeds"]
        assert got["spread"] == expected["spread"]
        assert got["cache"] == "scatter"
        assert got["scatter"]["workers"] == fleet.num_workers
        # The partition is exhaustive: local set counts sum to θ.
        assert got["scatter"]["total_sets"] == got["scatter"]["theta"]

    def test_scatter_rejects_non_trs_engines(self, fleet, oracle):
        request = {
            "op": "find_seeds", "targets": TARGETS, "tags": ["a"],
            "k": 2, "engine": "imm", "scatter": True, "seed": 0,
        }
        response = handle_request(fleet, request)
        assert not response["ok"]
        assert response["type"] == "InvalidQueryError"


EDITS = [
    {"op": "tag_set", "edge_id": 3, "tag": "a", "prob": 0.31},
    {"op": "tag_set", "edge_id": 11, "tag": "b", "prob": 0.22},
]
MORE_EDITS = [
    {"op": "tag_set", "edge_id": 5, "tag": "a", "prob": 0.18},
]


class TestEpochBroadcast:
    @pytest.fixture(scope="class", params=(2, 4))
    def mutable_pair(self, request):
        sampler = SamplingEngine(mode="vectorized", workers=1)
        oracle = CampaignServer(
            GRAPH, config=CONFIG, sampler=sampler, mutable=True
        )
        fleet = ShardedCampaignService(
            GRAPH,
            workers=request.param,
            spec=WorkerSpec(
                config=CONFIG, engine_mode="vectorized", mutable=True
            ),
        )
        yield oracle, fleet
        fleet.close()
        oracle.close()
        sampler.close()

    def test_edits_advance_every_worker_to_the_same_epoch(
        self, mutable_pair
    ):
        oracle, fleet = mutable_pair
        request = REQUESTS["find_seeds"]

        expected0 = handle_request(oracle, copy.deepcopy(request))
        got0 = handle_request(fleet, copy.deepcopy(request))
        assert got0["epoch"] == expected0["epoch"] == 0
        assert _comparable(got0) == _comparable(expected0)

        expected_apply = handle_request(
            oracle, {"op": "apply_edits", "edits": EDITS}
        )
        got_apply = handle_request(
            fleet, {"op": "apply_edits", "edits": EDITS}
        )
        assert got_apply["ok"] and expected_apply["ok"]
        assert got_apply["epoch"] == expected_apply["epoch"] == 1
        assert got_apply["workers"] == fleet.num_workers
        assert fleet.epoch == 1

        # Post-edit answers are served at the new epoch on *every*
        # routed worker, and stay bit-identical to the single-process
        # mutable server's post-edit answers.
        expected1 = handle_request(oracle, copy.deepcopy(request))
        got1 = handle_request(fleet, copy.deepcopy(request))
        assert got1["epoch"] == expected1["epoch"] == 1
        assert _comparable(got1) == _comparable(expected1)

        # A second batch keeps the fleet in lockstep.
        handle_request(oracle, {"op": "apply_edits", "edits": MORE_EDITS})
        got_apply2 = handle_request(
            fleet, {"op": "apply_edits", "edits": MORE_EDITS}
        )
        assert got_apply2["epoch"] == 2
        expected2 = handle_request(oracle, copy.deepcopy(request))
        got2 = handle_request(fleet, copy.deepcopy(request))
        assert _comparable(got2) == _comparable(expected2)
        assert got2["epoch"] == 2

    def test_every_worker_reports_the_broadcast_epoch(self, mutable_pair):
        _oracle, fleet = mutable_pair
        # Probe each worker directly (broadcast bypasses the ring).
        for reply in fleet.broadcast({"op": "health"}):
            assert reply["ok"]
            assert reply["health"]["epoch"] == fleet.epoch


class TestRouterSurface:
    def test_metrics_health_events_aggregate(self):
        service = ShardedCampaignService(
            GRAPH, workers=2, spec=WorkerSpec(config=CONFIG)
        )
        try:
            request = REQUESTS["find_seeds"]
            assert handle_request(service, copy.deepcopy(request))["ok"]
            response = handle_request(service, {"op": "metrics"})
            assert response["ok"]
            counters = response["metrics"]["counters"]
            assert counters["router.dispatched"] >= 1
            assert counters.get("serve.queries", 0) >= 1
            assert set(response["workers"]) <= {"w0", "w1"}

            health = handle_request(service, {"op": "health"})["health"]
            assert health["status"] == "ok"
            assert sorted(health["workers"]) == ["w0", "w1"]
            assert health["ring"]["members"] == ["w0", "w1"]

            events = handle_request(service, {"op": "events"})
            assert events["ok"]
            kinds = {e["kind"] for e in events["events"]}
            assert "shard.worker_up" in kinds
        finally:
            service.close()

    def test_closed_service_rejects_cleanly(self):
        service = ShardedCampaignService(
            GRAPH, workers=1, spec=WorkerSpec(config=CONFIG)
        )
        service.close()
        response = handle_request(service, {"op": "ping"})
        assert not response["ok"]
        assert response["type"] == "ServerClosedError"
