"""Property-based tests (hypothesis) for core invariants.

Strategy: generate small random tagged graphs and check structural and
probabilistic invariants that must hold for *every* input — aggregation
bounds and monotonicity, exact-spread bounds, RR-set closure, coverage
feasibility, lattice dominance, and serialization round-trips.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import exact_spread, simulate_cascade
from repro.graphs import (
    TagGraphBuilder,
    independent_aggregation,
    load_tag_graph,
    save_tag_graph,
)
from repro.index import theta_c
from repro.sketch import greedy_max_coverage, rr_set_from_edge_mask
from repro.tags import build_batches
from repro.tags.paths import TagPath

# ---------------------------------------------------------------------------
# Graph strategy
# ---------------------------------------------------------------------------

TAGS = ("t0", "t1", "t2")


@st.composite
def tagged_graphs(draw, max_nodes=7, max_assignments=10):
    """A small random TagGraph plus its assignment list."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    count = draw(st.integers(min_value=0, max_value=max_assignments))
    builder = TagGraphBuilder(n)
    used = set()
    for _ in range(count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        tag = draw(st.sampled_from(TAGS))
        if u == v or (u, v, tag) in used:
            continue
        used.add((u, v, tag))
        prob = draw(
            st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
        )
        builder.add(u, v, tag, prob)
    return builder.build()


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=6))
def test_independent_aggregation_bounded(probs):
    value = independent_aggregation(probs)
    assert 0.0 <= value <= 1.0
    if probs:
        assert value >= max(probs) - 1e-12


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=5),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_independent_aggregation_monotone(probs, extra):
    assert independent_aggregation(probs + [extra]) >= (
        independent_aggregation(probs) - 1e-12
    )


@given(tagged_graphs())
@settings(max_examples=40, deadline=None)
def test_edge_probabilities_bounds_and_monotonicity(graph):
    tags = [t for t in TAGS if graph.has_tag(t)]
    subset = graph.edge_probabilities(tags[:1])
    full = graph.edge_probabilities(tags)
    assert ((0.0 <= subset) & (subset <= 1.0)).all()
    assert (full >= subset - 1e-12).all()


# ---------------------------------------------------------------------------
# Spread
# ---------------------------------------------------------------------------


@given(tagged_graphs(), st.data())
@settings(max_examples=30, deadline=None)
def test_exact_spread_bounds(graph, data):
    tags = [t for t in TAGS if graph.has_tag(t)]
    seeds = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.num_nodes - 1),
            min_size=1, max_size=2, unique=True,
        )
    )
    targets = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.num_nodes - 1),
            min_size=1, max_size=3, unique=True,
        )
    )
    value = exact_spread(graph, seeds, targets, tags)
    assert -1e-9 <= value <= len(targets) + 1e-9
    seeded_targets = set(seeds) & set(targets)
    assert value >= len(seeded_targets) - 1e-9


@given(tagged_graphs(), st.data())
@settings(max_examples=25, deadline=None)
def test_exact_spread_monotone_in_seeds(graph, data):
    targets = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.num_nodes - 1),
            min_size=1, max_size=3, unique=True,
        )
    )
    tags = [t for t in TAGS if graph.has_tag(t)]
    s1 = data.draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    s2 = data.draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    small = exact_spread(graph, [s1], targets, tags)
    big = exact_spread(graph, [s1, s2], targets, tags)
    assert big >= small - 1e-9


@given(tagged_graphs(), st.data())
@settings(max_examples=25, deadline=None)
def test_exact_spread_monotone_in_tags(graph, data):
    """Lemma-consistent: more tags never reduce spread (independent agg)."""
    targets = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.num_nodes - 1),
            min_size=1, max_size=2, unique=True,
        )
    )
    tags = [t for t in TAGS if graph.has_tag(t)]
    seed = data.draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    one = exact_spread(graph, [seed], targets, tags[:1])
    all_ = exact_spread(graph, [seed], targets, tags)
    assert all_ >= one - 1e-9


@given(tagged_graphs(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_cascade_contains_seeds_and_only_reachable(graph, seed_int):
    rng = np.random.default_rng(seed_int)
    tags = [t for t in TAGS if graph.has_tag(t)]
    probs = graph.edge_probabilities(tags)
    seeds = [0]
    active = simulate_cascade(graph, seeds, probs, rng)
    assert active[0]
    # Activated nodes must be reachable from the seed in the full graph.
    reachable = {0}
    frontier = [0]
    while frontier:
        u = frontier.pop()
        for v in graph.out_neighbors(u).tolist():
            if v not in reachable:
                reachable.add(v)
                frontier.append(v)
    assert set(np.flatnonzero(active).tolist()) <= reachable


# ---------------------------------------------------------------------------
# RR sets and coverage
# ---------------------------------------------------------------------------


@given(tagged_graphs(), st.data())
@settings(max_examples=30, deadline=None)
def test_rr_set_members_reach_root(graph, data):
    root = data.draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    mask = data.draw(
        st.lists(
            st.booleans(),
            min_size=graph.num_edges, max_size=graph.num_edges,
        )
    )
    mask = np.array(mask, dtype=bool)
    rr = rr_set_from_edge_mask(graph, root, mask)
    assert root in rr.tolist()
    # Every member must reach the root through present edges.
    present = {
        (int(graph.src[e]), int(graph.dst[e]))
        for e in np.flatnonzero(mask)
    }
    for member in rr.tolist():
        frontier, seen = [member], {member}
        reached = member == root
        while frontier and not reached:
            u = frontier.pop()
            for (a, b) in present:
                if a == u and b not in seen:
                    if b == root:
                        reached = True
                        break
                    seen.add(b)
                    frontier.append(b)
        assert reached


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=9), max_size=4),
        max_size=12,
    ),
    st.integers(min_value=1, max_value=5),
)
def test_coverage_invariants(rr_lists, k):
    rr_sets = [np.array(sorted(set(rr)), dtype=np.int64) for rr in rr_lists]
    result = greedy_max_coverage(rr_sets, k, 10)
    assert 0 <= result.covered <= len(rr_sets)
    assert len(result.seeds) == min(k, 10)
    assert len(set(result.seeds)) == len(result.seeds)
    assert sum(result.marginal_covered) == result.covered
    # Seeds actually cover what is claimed.
    covered = sum(
        1 for rr in rr_sets if set(rr.tolist()) & set(result.seeds)
    )
    assert covered == result.covered


# ---------------------------------------------------------------------------
# θ_c and lattice
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=2, max_value=10**6),
    st.integers(min_value=1, max_value=100),
)
def test_theta_c_bounds(theta, r):
    tc = theta_c(theta, r, alpha=1.0, delta=0.01)
    assert 1 <= tc <= theta + 1
    # Monotone in r.
    assert theta_c(theta, r + 1, 1.0, 0.01) >= tc


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_batches_partition_paths(data):
    num_paths = data.draw(st.integers(min_value=0, max_value=15))
    paths = []
    for i in range(num_paths):
        tags = data.draw(
            st.lists(st.sampled_from(TAGS), min_size=1, max_size=3)
        )
        paths.append(
            TagPath(
                nodes=tuple(range(len(tags) + 1)),
                edge_ids=tuple(range(len(tags))),
                tag_choices=tuple(tags),
                probability=0.5,
            )
        )
    batches = build_batches(paths)
    seen = [i for b in batches for i in b.path_indices]
    assert sorted(seen) == list(range(num_paths))
    for batch in batches:
        for idx in batch.path_indices:
            assert paths[idx].tag_set == batch.tag_set


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


@given(tagged_graphs())
@settings(max_examples=25, deadline=None)
def test_io_round_trip(graph):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "g.tsv"
        save_tag_graph(graph, path)
        assert load_tag_graph(path) == graph
