"""Tests for most-probable path enumeration, pinned to the Figure 9 example."""

from __future__ import annotations

import pytest

from repro.tags import TagPath, TagSelectionConfig, collect_paths, top_paths
from tests.conftest import FIG9_SEEDS, FIG9_TARGETS


class TestTagPath:
    def test_properties(self):
        path = TagPath(
            nodes=(0, 1, 2), edge_ids=(0, 1),
            tag_choices=("a", "b"), probability=0.35,
        )
        assert path.source == 0
        assert path.target == 2
        assert path.tag_set == frozenset({"a", "b"})
        assert path.pairs == ((0, "a"), (1, "b"))
        assert len(path) == 2

    def test_repeated_tag_set(self):
        path = TagPath(
            nodes=(0, 1, 2), edge_ids=(0, 1),
            tag_choices=("a", "a"), probability=0.25,
        )
        assert path.tag_set == frozenset({"a"})


class TestTopPaths:
    def test_single_hop(self, line_graph):
        paths = top_paths(line_graph, 0, 1, 5)
        assert len(paths) == 1
        assert paths[0].probability == pytest.approx(0.5)
        assert paths[0].tag_choices == ("a",)

    def test_multi_hop_probability_product(self, line_graph):
        paths = top_paths(line_graph, 0, 3, 5)
        assert len(paths) == 1
        assert paths[0].probability == pytest.approx(0.125)

    def test_source_equals_target(self, line_graph):
        assert top_paths(line_graph, 1, 1, 5) == []

    def test_unreachable(self, line_graph):
        assert top_paths(line_graph, 3, 0, 5) == []

    def test_multi_tag_edge_gives_parallel_paths(self, diamond_graph):
        # Edge (0,1) carries tags a=0.8 and b=0.4: two distinct 1-hop paths.
        paths = top_paths(diamond_graph, 0, 1, 5)
        assert len(paths) == 2
        assert paths[0].probability == pytest.approx(0.8)
        assert paths[0].tag_choices == ("a",)
        assert paths[1].probability == pytest.approx(0.4)

    def test_descending_order(self, fig9_graph):
        paths = top_paths(fig9_graph, 0, 7, 10)
        probs = [p.probability for p in paths]
        assert probs == sorted(probs, reverse=True)

    def test_limit_respected(self, fig9_graph):
        assert len(top_paths(fig9_graph, 0, 7, 1)) == 1

    def test_forbidden_nodes_blocked(self, fig9_graph):
        # A → H paths: direct e9 and through seed B (e1 e4 e10). With B,C
        # forbidden only the direct one survives.
        paths = top_paths(
            fig9_graph, 0, 7, 10, forbidden=frozenset(FIG9_SEEDS)
        )
        assert len(paths) == 1
        assert paths[0].edge_ids == (8,)  # e9 is edge index 8

    def test_unforbidden_finds_both(self, fig9_graph):
        paths = top_paths(fig9_graph, 0, 7, 10)
        assert len(paths) == 2

    def test_hop_cap(self, fig9_graph):
        cfg = TagSelectionConfig(max_hops=1)
        paths = top_paths(fig9_graph, 0, 7, 10, config=cfg)
        assert all(len(p) <= 1 for p in paths)

    def test_prob_floor_prunes(self, line_graph):
        cfg = TagSelectionConfig(prob_floor=0.2)
        assert top_paths(line_graph, 0, 3, 5, config=cfg) == []  # 0.125 < 0.2


class TestCollectPathsFig9:
    """The Section 4.2 worked example: 8 of 14 paths survive pruning."""

    @pytest.fixture
    def fig9_paths(self, fig9_graph):
        cfg = TagSelectionConfig(per_pair_paths=10, prob_floor=0.0)
        return collect_paths(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, cfg, rng=0
        )

    def test_eight_paths_survive(self, fig9_paths):
        assert len(fig9_paths) == 8

    def test_expected_path_set(self, fig9_paths):
        # e3e8, e7, e9, e4e10, e5e10, e4e11, e5e11, e6e12 (edge indices
        # are FIG9_EDGES positions: e1..e12 → 0..11).
        expected = {
            (2, 7), (6,), (8,), (3, 9), (4, 9), (3, 10), (4, 10), (5, 11),
        }
        assert {p.edge_ids for p in fig9_paths} == expected

    def test_probabilities_match_paper(self, fig9_paths):
        by_edges = {p.edge_ids: p for p in fig9_paths}
        assert by_edges[(2, 7)].probability == pytest.approx(0.81)  # e3e8
        assert by_edges[(6,)].probability == pytest.approx(0.8)  # e7
        assert by_edges[(3, 9)].probability == pytest.approx(0.56)  # e4e10
        assert by_edges[(5, 11)].probability == pytest.approx(0.63)  # e6e12

    def test_tag_sets_match_paper(self, fig9_paths):
        by_edges = {p.edge_ids: p for p in fig9_paths}
        assert by_edges[(2, 7)].tag_set == frozenset({"c2", "c3"})
        assert by_edges[(3, 9)].tag_set == frozenset({"c4", "c5"})
        assert by_edges[(4, 9)].tag_set == frozenset({"c4", "c5"})
        assert by_edges[(5, 11)].tag_set == frozenset({"c5"})
        assert by_edges[(6,)].tag_set == frozenset({"c4"})
        assert by_edges[(8,)].tag_set == frozenset({"c6"})
        assert by_edges[(3, 10)].tag_set == frozenset({"c5", "c6"})
        assert by_edges[(4, 10)].tag_set == frozenset({"c5", "c6"})

    def test_dedup_across_pairs(self, fig9_graph):
        cfg = TagSelectionConfig(per_pair_paths=10, prob_floor=0.0)
        paths = collect_paths(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, cfg, rng=0
        )
        keys = [(p.edge_ids, p.tag_choices) for p in paths]
        assert len(keys) == len(set(keys))

    def test_target_sampling_cap(self, small_yelp):
        from repro.datasets import community_targets

        targets = community_targets(small_yelp, "vegas", size=40, rng=0)
        cfg = TagSelectionConfig(max_path_targets=5, per_pair_paths=3)
        paths = collect_paths(small_yelp.graph, [0, 1], targets, cfg, rng=0)
        anchored = {p.target for p in paths}
        assert len(anchored) <= 5
