"""Tests for local regions and induced subgraphs."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.graphs import TagGraphBuilder, induced_subgraph, local_region_nodes


def _chain_graph():
    # 0 → 1 → 2 → 3 → 4 plus a detached 5 → 6.
    builder = TagGraphBuilder(7)
    for u in range(4):
        builder.add(u, u + 1, "t", 0.5)
    builder.add(5, 6, "t", 0.5)
    return builder.build()


class TestLocalRegion:
    def test_h_zero_is_targets(self):
        g = _chain_graph()
        assert local_region_nodes(g, [3], 0).tolist() == [3]

    def test_one_hop_reverse(self):
        g = _chain_graph()
        assert local_region_nodes(g, [3], 1).tolist() == [2, 3]

    def test_multi_hop(self):
        g = _chain_graph()
        assert local_region_nodes(g, [4], 3).tolist() == [1, 2, 3, 4]

    def test_multiple_targets_union(self):
        g = _chain_graph()
        region = local_region_nodes(g, [2, 6], 1)
        assert region.tolist() == [1, 2, 5, 6]

    def test_detached_nodes_excluded(self):
        g = _chain_graph()
        region = local_region_nodes(g, [4], 10)
        assert 5 not in region and 6 not in region

    def test_negative_h_raises(self):
        with pytest.raises(ConfigurationError):
            local_region_nodes(_chain_graph(), [0], -1)

    def test_bad_target_raises(self):
        with pytest.raises(InvalidQueryError):
            local_region_nodes(_chain_graph(), [99], 1)

    def test_follows_reverse_direction_only(self):
        # Node 4 is downstream of target 3; it must not be in the region.
        g = _chain_graph()
        assert 4 not in local_region_nodes(g, [3], 5)


class TestInducedSubgraph:
    def test_basic(self):
        g = _chain_graph()
        sub, mapping = induced_subgraph(g, [1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2  # 1→2 and 2→3 survive
        assert mapping == {1: 0, 2: 1, 3: 2}

    def test_boundary_edges_dropped(self):
        g = _chain_graph()
        sub, _ = induced_subgraph(g, [0, 1])
        assert sub.num_edges == 1  # only 0→1; 1→2 crosses out

    def test_tag_probabilities_preserved(self):
        g = _chain_graph()
        sub, mapping = induced_subgraph(g, [0, 1])
        assert sub.edge_tag_probability(0, "t") == pytest.approx(0.5)

    def test_empty_tag_pruned(self):
        g = _chain_graph()
        sub, _ = induced_subgraph(g, [5])  # no internal edges
        assert sub.num_edges == 0
        assert sub.tags == ()

    def test_duplicate_nodes_deduped(self):
        g = _chain_graph()
        sub, _ = induced_subgraph(g, [1, 1, 2])
        assert sub.num_nodes == 2

    def test_bad_node_raises(self):
        with pytest.raises(InvalidQueryError):
            induced_subgraph(_chain_graph(), [42])
