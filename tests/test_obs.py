"""Observability-layer tests: exact counters, invariance, zero impact.

Three families of guarantees:

1. **Counters equal work.** ``rr.samples_drawn`` / ``rr.members`` /
   ``cascade.samples_drawn`` exactly equal the work an operation
   performed, on every execution path.
2. **Invariance.** Those counters do not depend on worker count,
   shard size, retries, or checkpoint/resume replay — they are counted
   at the driver level from returned shapes, never inside workers.
3. **No perturbation.** Runs with observability enabled are
   bit-identical to runs without it, and the disabled path costs one
   ``is None`` check per call site.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.engine import (
    CheckpointManager,
    FaultPlan,
    RetryPolicy,
    RunTelemetry,
    SamplingEngine,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import kernel_timer
from repro.obs.report import SCHEMA, build_report, render_report
from repro.obs.trace import NULL_SPAN, Tracer, chrome_events_from_dicts
from repro.seeds.api import find_seeds
from repro.utils.timing import Timer
from repro.utils.validation import as_target_array

FAST = RetryPolicy(backoff_base=0.001, backoff_max=0.005, jitter=0.0)


@pytest.fixture(scope="module")
def query(small_yelp):
    graph = small_yelp.graph
    targets = as_target_array(
        list(range(12)), graph.num_nodes, context="test"
    )
    edge_probs = graph.edge_probabilities(list(graph.tags[:3]))
    return graph, targets, edge_probs


def _rr_counters(engine, query, theta=64, seed=11):
    """Run one RR op under observation; return (collection, counters)."""
    graph, targets, edge_probs = query
    with obs.observe() as ob:
        collection = engine.sample_rr_sets(
            graph, targets, edge_probs, theta, np.random.default_rng(seed)
        )
    return collection, ob.metrics.as_dict()["counters"]


# ---------------------------------------------------------------------------
# Metrics primitives
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_counts(self):
        reg = MetricsRegistry()
        reg.count("x")
        reg.count("x", 4)
        assert reg.value("x") == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter(name="x").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("theta", 100)
        reg.set_gauge("theta", 42)
        assert reg.value("theta") == 42.0

    def test_histogram_summary_and_buckets(self):
        h = Histogram(name="sizes")
        h.observe_many([1, 2, 3, 1000, 2**40])
        assert h.count == 5
        assert h.min == 1 and h.max == 2**40
        assert h.buckets[1] == 1          # v <= 1
        assert h.buckets[2] == 1          # 1 < v <= 2
        assert h.buckets[4] == 1
        assert h.buckets[1024] == 1
        assert h.buckets[-1] == 1         # overflow
        assert h.mean == pytest.approx(h.total / 5)

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.count("x")
        with pytest.raises(TypeError):
            reg.record("x", 1.0)

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("c", 2)
        b.count("c", 3)
        a.set_gauge("g", 1)
        b.set_gauge("g", 9)
        a.record("h", 1)
        b.record("h", 100)
        a.merge(b)
        assert a.value("c") == 5            # counters add
        assert a.value("g") == 9.0          # gauges overwrite
        assert a.histogram("h").count == 2  # histograms combine
        assert a.histogram("h").max == 100

    def test_as_dict_groups_by_kind(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.set_gauge("g", 2)
        reg.record("h", 3)
        snap = reg.as_dict()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", theta=4):
                pass
            with tracer.span("inner2"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner", "inner2"]
        assert root.children[0].attrs == {"theta": 4}
        assert root.duration >= root.children[0].duration >= 0.0

    def test_span_set_attaches_attrs(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set(theta=128)
        assert tracer.roots[0].attrs["theta"] == 128

    def test_as_dicts_and_chrome_roundtrip(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        dicts = tracer.as_dicts()
        assert dicts[0]["name"] == "a"
        assert dicts[0]["children"][0]["name"] == "b"
        live = tracer.to_chrome_events()
        offline = chrome_events_from_dicts(dicts)
        assert [e["name"] for e in live] == ["a", "b"]
        assert [e["name"] for e in offline] == ["a", "b"]
        for e_live, e_off in zip(live, offline):
            assert e_live["ts"] == pytest.approx(e_off["ts"])
            assert e_live["dur"] == pytest.approx(e_off["dur"])
            assert e_live["ph"] == e_off["ph"] == "X"

    def test_find(self):
        tracer = Tracer()
        with tracer.span("x"):
            with tracer.span("y"):
                pass
        with tracer.span("y"):
            pass
        assert len(tracer.find("y")) == 2

    def test_null_span_is_inert_singleton(self):
        with NULL_SPAN as s:
            s.set(anything=1)
        assert obs.span("whatever") is NULL_SPAN  # obs off by default


class TestObserveScope:
    def test_helpers_are_noops_when_off(self):
        assert obs.active() is None
        obs.count("ghost")
        obs.record("ghost", 1.0)
        obs.gauge("ghost", 1.0)
        assert obs.snapshot_report() is None
        assert not obs.profiling_enabled()

    def test_nested_scopes_merge_into_parent(self):
        with obs.observe() as outer:
            obs.count("a")
            with obs.observe() as inner:
                obs.count("a", 2)
                with obs.span("inner_span"):
                    pass
            assert inner.metrics.value("a") == 2
            assert outer.metrics.value("a") == 3  # merged on exit
            assert [s.name for s in outer.tracer.roots] == ["inner_span"]
        assert obs.active() is None

    def test_traced_decorator(self):
        calls = []

        @obs.traced("fn")
        def fn(x):
            calls.append(x)
            return x + 1

        assert fn(1) == 2  # off: plain call
        with obs.observe() as ob:
            assert fn(2) == 3
        assert len(ob.tracer.find("fn")) == 1

    def test_report_schema(self):
        with obs.observe() as ob:
            obs.count("c", 7)
            with obs.span("phase_a"):
                pass
        report = ob.report()
        assert report["schema"] == SCHEMA
        assert report["metrics"]["counters"] == {"c": 7}
        assert [p["name"] for p in report["phases"]] == ["phase_a"]
        assert report["phases"][0]["percent"] == pytest.approx(100.0)
        text = render_report(report)
        assert "phase_a" in text and "c" in text

    def test_render_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            render_report({"schema": "bogus/9"})


# ---------------------------------------------------------------------------
# Counters equal work — exactly, on every path
# ---------------------------------------------------------------------------


class TestCountersEqualWork:
    def test_rr_counters_match_collection(self, query):
        with SamplingEngine(shard_size=8) as engine:
            collection, counters = _rr_counters(engine, query, theta=64)
        assert counters["rr.samples_drawn"] == 64 == len(collection)
        assert counters["rr.members"] == int(collection.members.size)

    def test_cascade_counter_matches_samples(self, query):
        graph, targets, edge_probs = query
        seeds = targets[:3]
        with SamplingEngine(shard_size=8) as engine:
            with obs.observe() as ob:
                counts = engine.cascade_target_counts(
                    graph, seeds, edge_probs, 50, targets,
                    np.random.default_rng(3),
                )
        assert counts.size == 50
        assert ob.metrics.value("cascade.samples_drawn") == 50

    def test_scalar_rr_path_counts_identically(self, line_graph):
        from repro.sketch.rr_sets import sample_rr_sets_validated

        probs = line_graph.edge_probabilities(["a", "b", "c"])
        targets = as_target_array([3], line_graph.num_nodes, context="t")
        with obs.observe() as ob:
            sets = sample_rr_sets_validated(
                line_graph, targets, probs, 37, np.random.default_rng(0)
            )
        counters = ob.metrics.as_dict()["counters"]
        assert counters["rr.samples_drawn"] == 37 == len(sets)
        assert counters["rr.members"] == sum(s.size for s in sets)

    def test_worker_count_invariance(self, query):
        with SamplingEngine(shard_size=8) as serial:
            c1, counters1 = _rr_counters(serial, query, theta=64)
        with SamplingEngine(
            shard_size=8, workers=2, parallel_threshold=0
        ) as pooled:
            c2, counters2 = _rr_counters(pooled, query, theta=64)
        np.testing.assert_array_equal(c1.members, c2.members)
        drop = {"runtime.shards_run", "engine.parallel_fallbacks",
                "runtime.parallel_fallbacks"}
        work1 = {k: v for k, v in counters1.items() if k not in drop}
        work2 = {k: v for k, v in counters2.items() if k not in drop}
        assert work1 == work2

    def test_retry_invariance(self, query):
        plan = FaultPlan().fail_shard(1, attempts=(0, 1)).fail_shard(4)
        with SamplingEngine(shard_size=8) as clean_engine:
            _, clean = _rr_counters(clean_engine, query, theta=64)
        with SamplingEngine(
            shard_size=8, retry_policy=FAST, fault_plan=plan
        ) as engine:
            _, faulted = _rr_counters(engine, query, theta=64)
            assert engine.telemetry.shards_retried == 3
        assert faulted["rr.samples_drawn"] == clean["rr.samples_drawn"]
        assert faulted["rr.members"] == clean["rr.members"]

    def test_checkpoint_resume_replay_counts_once(self, query, tmp_path):
        plan = FaultPlan().interrupt_after_shards(3)
        with SamplingEngine(
            shard_size=8, fault_plan=plan,
            checkpoint=CheckpointManager(tmp_path, resume=False, every=1),
        ) as engine:
            with pytest.raises(KeyboardInterrupt):
                _rr_counters(engine, query, theta=64)
        with SamplingEngine(
            shard_size=8,
            checkpoint=CheckpointManager(tmp_path, resume=True, every=1),
        ) as engine:
            collection, counters = _rr_counters(engine, query, theta=64)
            assert engine.telemetry.checkpoint_loads == 1
        # The resumed run spliced 3 checkpointed shards in, yet the
        # counters describe the *logical* work of the full operation.
        assert counters["rr.samples_drawn"] == 64 == len(collection)
        assert counters["rr.members"] == int(collection.members.size)

    @settings(max_examples=15, deadline=None)
    @given(
        theta=st.integers(min_value=1, max_value=80),
        shard_size=st.integers(min_value=1, max_value=32),
    )
    def test_rr_counter_equals_theta_for_any_sharding(
        self, theta, shard_size
    ):
        from repro.graphs import TagGraphBuilder

        builder = TagGraphBuilder(4)
        builder.add(0, 1, "a", 0.5)
        builder.add(1, 2, "b", 0.5)
        builder.add(2, 3, "c", 0.5)
        graph = builder.build()
        probs = graph.edge_probabilities(["a", "b", "c"])
        targets = as_target_array([2, 3], graph.num_nodes, context="t")
        with SamplingEngine(shard_size=shard_size) as engine:
            with obs.observe() as ob:
                collection = engine.sample_rr_sets(
                    graph, targets, probs, theta, np.random.default_rng(1)
                )
        assert (
            ob.metrics.value("rr.samples_drawn") == theta == len(collection)
        )
        assert ob.metrics.value("rr.members") == int(collection.members.size)


# ---------------------------------------------------------------------------
# Observability never perturbs results
# ---------------------------------------------------------------------------


class TestNoPerturbation:
    def test_rr_sampling_bit_identical_with_and_without_obs(self, query):
        graph, targets, edge_probs = query
        with SamplingEngine(shard_size=8) as engine:
            plain = engine.sample_rr_sets(
                graph, targets, edge_probs, 64, np.random.default_rng(11)
            )
            with obs.observe():
                observed = engine.sample_rr_sets(
                    graph, targets, edge_probs, 64, np.random.default_rng(11)
                )
            with obs.observe(profile=True):
                profiled = engine.sample_rr_sets(
                    graph, targets, edge_probs, 64, np.random.default_rng(11)
                )
        np.testing.assert_array_equal(plain.members, observed.members)
        np.testing.assert_array_equal(plain.indptr, observed.indptr)
        np.testing.assert_array_equal(plain.members, profiled.members)

    def test_seed_selection_identical_under_observation(self, small_yelp):
        graph = small_yelp.graph
        tags = list(graph.tags[:3])
        plain = find_seeds(graph, list(range(20)), tags, 3, rng=5)
        with obs.observe():
            observed = find_seeds(graph, list(range(20)), tags, 3, rng=5)
        assert plain.seeds == observed.seeds
        assert plain.estimated_spread == observed.estimated_spread
        assert plain.report is None
        assert observed.report is not None
        assert observed.report["schema"] == SCHEMA


# ---------------------------------------------------------------------------
# Small-work parallel fallback
# ---------------------------------------------------------------------------


class TestParallelFallback:
    def test_small_job_falls_back_and_is_recorded(self, query):
        with SamplingEngine(shard_size=8, workers=2) as engine:
            collection, counters = _rr_counters(engine, query, theta=64)
            assert engine.telemetry.parallel_fallbacks == 1
        assert counters["engine.parallel_fallbacks"] == 1
        with SamplingEngine(shard_size=8) as serial:
            reference = serial.sample_rr_sets(
                query[0], query[1], query[2], 64, np.random.default_rng(11)
            )
        np.testing.assert_array_equal(collection.members, reference.members)

    def test_threshold_zero_disables_fallback(self, query):
        with SamplingEngine(
            shard_size=8, workers=2, parallel_threshold=0
        ) as engine:
            _rr_counters(engine, query, theta=64)
            assert engine.telemetry.parallel_fallbacks == 0

    def test_large_job_uses_the_pool(self, query):
        with SamplingEngine(
            shard_size=8, workers=2, parallel_threshold=32
        ) as engine:
            _rr_counters(engine, query, theta=64)
            assert engine.telemetry.parallel_fallbacks == 0

    def test_fault_plan_suppresses_fallback(self, query):
        # Fault injection targets the pool paths; a fallback would make
        # the injected faults unreachable and silently pass those tests.
        plan = FaultPlan().fail_shard(1)
        with SamplingEngine(
            shard_size=8, workers=2, retry_policy=FAST, fault_plan=plan
        ) as engine:
            _rr_counters(engine, query, theta=64)
            assert engine.telemetry.parallel_fallbacks == 0
            assert engine.telemetry.shards_retried >= 1

    def test_threshold_validation(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            SamplingEngine(parallel_threshold=-1)


# ---------------------------------------------------------------------------
# RunTelemetry as a registry view
# ---------------------------------------------------------------------------


class TestTelemetryView:
    def test_kwargs_ctor_and_dict(self):
        t = RunTelemetry(shards_run=3, shards_retried=1)
        assert t.shards_run == 3
        assert t.as_dict()["shards_retried"] == 1
        assert "shards_retried=1" in t.summary()

    def test_counts_flow_into_bound_registry(self):
        reg = MetricsRegistry()
        t = RunTelemetry(registry=reg)
        t.shards_run += 5
        assert reg.value("runtime.shards_run") == 5

    def test_engine_binds_active_registry(self, query):
        with obs.observe() as ob:
            with SamplingEngine(shard_size=8) as engine:
                _rr = engine.sample_rr_sets(
                    query[0], query[1], query[2], 64,
                    np.random.default_rng(11),
                )
        assert ob.metrics.value("runtime.shards_run") == 8
        assert _rr is not None

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError):
            RunTelemetry(bogus=1)


# ---------------------------------------------------------------------------
# Profiling hooks and the Timer bridge
# ---------------------------------------------------------------------------


class TestProfiling:
    def test_kernel_timer_off_by_default(self):
        with obs.observe() as ob:
            with kernel_timer("kernel.test"):
                pass
        assert "kernel.test.calls" not in ob.metrics

    def test_kernel_timer_records_under_profile(self):
        with obs.observe(profile=True) as ob:
            with kernel_timer("kernel.test"):
                pass
        assert ob.metrics.value("kernel.test.calls") == 1
        assert ob.metrics.histogram("kernel.test.seconds").count == 1

    def test_profiled_engine_run_records_kernels(self, query):
        with SamplingEngine(shard_size=8) as engine:
            with obs.observe(profile=True) as ob:
                engine.sample_rr_sets(
                    query[0], query[1], query[2], 64,
                    np.random.default_rng(11),
                )
        assert ob.metrics.value("kernel.batched_reverse_bfs.calls") >= 1
        assert ob.metrics.histogram("frontier.rr_level_size").count >= 1

    def test_timer_metric_bridge(self):
        with obs.observe() as ob:
            with Timer(metric="phase.test"):
                pass
        assert ob.metrics.histogram("phase.test.seconds").count == 1
        with Timer(metric="phase.test"):  # obs off: plain timer
            pass


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cli_graph(tmp_path_factory, small_yelp):
    from repro.graphs.io import save_tag_graph

    root = tmp_path_factory.mktemp("obs_cli")
    graph_path = root / "g.tsv"
    targets_path = root / "g.targets"
    save_tag_graph(small_yelp.graph, graph_path)
    targets_path.write_text(
        "\n".join(str(t) for t in range(10)) + "\n", encoding="utf-8"
    )
    tags = ",".join(small_yelp.graph.tags[:2])
    return graph_path, targets_path, tags


class TestCLI:
    def test_metrics_out_and_trace(self, cli_graph, tmp_path, capsys):
        from repro.cli import main

        graph_path, targets_path, tags = cli_graph
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        code = main([
            "seeds", str(graph_path), "--targets-file", str(targets_path),
            "-k", "2", "--tags", tags,
            "--metrics-out", str(metrics), "--trace", str(trace),
        ])
        assert code == 0
        report = json.loads(metrics.read_text(encoding="utf-8"))
        assert report["schema"] == SCHEMA
        assert report["metrics"]["counters"]["rr.samples_drawn"] > 0
        assert any(p["name"] == "trs" for p in report["phases"])
        events = json.loads(trace.read_text(encoding="utf-8"))
        assert events and all(e["ph"] == "X" for e in events)
        assert any(e["name"] == "trs" for e in events)
        capsys.readouterr()

    def test_report_subcommand(self, cli_graph, tmp_path, capsys):
        from repro.cli import main

        graph_path, targets_path, tags = cli_graph
        metrics = tmp_path / "m.json"
        assert main([
            "seeds", str(graph_path), "--targets-file", str(targets_path),
            "-k", "2", "--tags", tags, "--metrics-out", str(metrics),
        ]) == 0
        capsys.readouterr()
        chrome = tmp_path / "c.json"
        assert main(["report", str(metrics), "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "Counters" in out and "rr.samples_drawn" in out
        events = json.loads(chrome.read_text(encoding="utf-8"))
        assert events and events[0]["ph"] == "X"

    def test_no_flags_means_no_observability(self, cli_graph, capsys):
        from repro.cli import main

        graph_path, targets_path, tags = cli_graph
        assert main([
            "seeds", str(graph_path), "--targets-file", str(targets_path),
            "-k", "2", "--tags", tags,
        ]) == 0
        assert obs.active() is None
        capsys.readouterr()


# ---------------------------------------------------------------------------
# build_report is pure serialization
# ---------------------------------------------------------------------------


def test_report_is_json_serializable(query):
    with SamplingEngine(shard_size=8) as engine:
        with obs.observe(profile=True) as ob:
            engine.sample_rr_sets(
                query[0], query[1], query[2], 64, np.random.default_rng(11)
            )
    dumped = json.dumps(build_report(ob))
    assert "rr.samples_drawn" in dumped
