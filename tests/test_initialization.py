"""Tests for RS/RT/IMS/FT initializers and tag search-space elimination."""

from __future__ import annotations

import pytest

from repro.core import (
    eliminate_low_frequency_tags,
    frequency_tag_scores,
    frequency_tags,
    ims_seeds,
    random_seeds,
    random_tags,
)
from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.graphs import TagGraphBuilder
from repro.sketch import SketchConfig


def _graph():
    """Targets {3, 4}; tag 'hot' dominates their in-edges, 'cold' is elsewhere."""
    builder = TagGraphBuilder(6)
    builder.add(0, 3, "hot", 0.9)
    builder.add(1, 3, "hot", 0.8)
    builder.add(1, 4, "hot", 0.7)
    builder.add(2, 4, "warm", 0.5)
    builder.add(0, 5, "cold", 0.9)
    builder.add(2, 5, "cold", 0.9)
    return builder.build()


class TestRandomInits:
    def test_random_seeds_size_and_range(self):
        seeds = random_seeds(_graph(), 3, rng=0)
        assert len(seeds) == 3
        assert len(set(seeds)) == 3
        assert all(0 <= s < 6 for s in seeds)

    def test_random_seeds_deterministic(self):
        assert random_seeds(_graph(), 3, rng=5) == random_seeds(
            _graph(), 3, rng=5
        )

    def test_random_seeds_budget_check(self):
        with pytest.raises(InvalidQueryError):
            random_seeds(_graph(), 99, rng=0)

    def test_random_tags_from_vocab(self):
        tags = random_tags(_graph(), 2, rng=0)
        assert len(tags) == 2
        assert set(tags) <= {"hot", "warm", "cold"}

    def test_random_tags_universe_restriction(self):
        tags = random_tags(_graph(), 1, universe=["warm"], rng=0)
        assert tags == ("warm",)

    def test_random_tags_budget_check(self):
        with pytest.raises(InvalidQueryError):
            random_tags(_graph(), 9, rng=0)


class TestFrequencyTags:
    def test_scores_count_only_target_incident(self):
        scores = frequency_tag_scores(_graph(), [3, 4])
        assert scores["hot"] == pytest.approx(0.9 + 0.8 + 0.7)
        assert scores["warm"] == pytest.approx(0.5)
        assert scores["cold"] == 0.0

    def test_top_r(self):
        assert frequency_tags(_graph(), [3, 4], 1) == ("hot",)
        assert frequency_tags(_graph(), [3, 4], 2) == ("hot", "warm")

    def test_ties_broken_by_name(self):
        builder = TagGraphBuilder(3)
        builder.add(0, 2, "b", 0.5)
        builder.add(1, 2, "a", 0.5)
        g = builder.build()
        assert frequency_tags(g, [2], 1) == ("a",)

    def test_universe_restriction(self):
        tags = frequency_tags(_graph(), [3, 4], 1, universe=["warm", "cold"])
        assert tags == ("warm",)

    def test_bad_budget(self):
        with pytest.raises(InvalidQueryError):
            frequency_tags(_graph(), [3], 0)


class TestElimination:
    def test_keeps_top_fraction(self):
        kept = eliminate_low_frequency_tags(
            _graph(), [3, 4], keep_fraction=0.34
        )
        assert kept == ("hot",)

    def test_keep_all(self):
        kept = eliminate_low_frequency_tags(_graph(), [3, 4], 1.0)
        assert set(kept) == {"hot", "warm", "cold"}

    def test_min_keep_floor(self):
        kept = eliminate_low_frequency_tags(
            _graph(), [3, 4], keep_fraction=0.01, min_keep=2
        )
        assert len(kept) == 2

    def test_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            eliminate_low_frequency_tags(_graph(), [3], keep_fraction=0.0)


class TestIMSSeeds:
    def test_finds_influencer_of_targets(self):
        cfg = SketchConfig(pilot_samples=100, theta_min=300, theta_max=1000)
        seeds = ims_seeds(_graph(), [3, 4], 1, cfg, rng=0)
        # Node 1 reaches both targets with high probability under 'hot'.
        assert seeds == (1,)

    def test_size(self):
        cfg = SketchConfig(pilot_samples=50, theta_min=200, theta_max=500)
        assert len(ims_seeds(_graph(), [3, 4], 3, cfg, rng=0)) == 3
