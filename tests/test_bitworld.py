"""Bit-parallel world kernels + shared-memory CSR transport tests.

The bit-parallel engine mode is held to a harder standard than the
vectorized one: it is not merely *distributionally* equivalent to the
scalar oracle, it is **replayable** — every world (block, lane) defines
an edge mask via :func:`repro.engine.bitworld.world_edge_mask`, and the
scalar fixed-world traversals run on that mask must reproduce each
sample's RR set / cascade count exactly. The tests here assert that
bit-identity, the popcount size accounting, ragged world tails, block-
batching invariance, worker-count invariance of the engine integration
(property-style), and the full lifecycle of the shared-memory /
memmap-spilled CSR transport.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.engine import (
    DEFAULT_BITPARALLEL_SHARD_SIZE,
    DEFAULT_SHARD_SIZE,
    SamplingEngine,
    SharedCSR,
    SharedProbs,
    bitparallel_cascade_counts,
    bitparallel_rr_members,
)
from repro.engine import bitworld, shared_csr
from repro.engine.shared_csr import SharedArrayPack
from repro.sketch import rr_set_from_edge_mask

from tests.conftest import FIG9_SEEDS, FIG9_TARGETS


def _forward_bfs_count(graph, seeds, edge_mask, target_arr) -> int:
    """Scalar fixed-world cascade oracle: reachable targets from seeds."""
    fwd_indptr, fwd_edges = graph.forward_csr()
    dst = graph.dst
    active = np.zeros(graph.num_nodes, dtype=bool)
    active[seeds] = True
    frontier = list(seeds)
    while frontier:
        nxt = []
        for u in frontier:
            for eid in fwd_edges[fwd_indptr[u]:fwd_indptr[u + 1]]:
                if edge_mask[eid]:
                    v = int(dst[eid])
                    if not active[v]:
                        active[v] = True
                        nxt.append(v)
        frontier = nxt
    return int(active[np.asarray(target_arr)].sum())


# ---------------------------------------------------------------------------
# Replayable-oracle bit-identity
# ---------------------------------------------------------------------------


def test_rr_members_match_world_oracle(small_yelp):
    """Every sample's RR set equals the scalar traversal of its world."""
    graph = small_yelp.graph
    edge_probs = graph.edge_probabilities(list(graph.tags[:4]))
    rng = np.random.default_rng(3)
    theta = 200  # 3 full blocks + a ragged 8-lane tail
    roots = rng.integers(graph.num_nodes, size=theta)
    key = 0xC0FFEE
    members, indptr = bitparallel_rr_members(graph, roots, edge_probs, key)
    assert indptr.shape == (theta + 1,)
    thr53 = bitworld.coin_thresholds(edge_probs)
    for s in range(theta):
        mine = set(members[indptr[s]:indptr[s + 1]].tolist())
        block, lane = bitworld.rr_world_of_sample(roots, s, graph.num_nodes)
        mask = bitworld.world_edge_mask(
            graph.num_edges, thr53, key, block, lane
        )
        oracle = set(rr_set_from_edge_mask(graph, int(roots[s]), mask).tolist())
        assert mine == oracle, f"sample {s} diverged from its world"


def test_cascade_counts_match_world_oracle(fig9_graph):
    """Per-world cascade counts equal the fixed-world forward BFS."""
    graph = fig9_graph
    edge_probs = graph.edge_probabilities(["c1", "c2", "c4", "c5", "c6"])
    seeds = np.asarray(FIG9_SEEDS, dtype=np.int64)
    targets = np.asarray(FIG9_TARGETS, dtype=np.int64)
    num_samples = 130  # ragged: 2 full blocks + 2 lanes
    key = 77
    counts = bitparallel_cascade_counts(
        graph, seeds, edge_probs, num_samples, targets, key
    )
    assert counts.shape == (num_samples,)
    thr53 = bitworld.coin_thresholds(edge_probs)
    for s in range(num_samples):
        mask = bitworld.world_edge_mask(
            graph.num_edges, thr53, key, s // 64, s % 64
        )
        assert counts[s] == _forward_bfs_count(graph, seeds, mask, targets)


def test_coin_stream_edge_probability_extremes(line_graph):
    """p=1 edges always fire, p=0 edges never do, in every world."""
    m = line_graph.num_edges
    thr_one = bitworld.coin_thresholds(np.ones(m))
    thr_zero = bitworld.coin_thresholds(np.zeros(m))
    for block, lane in [(0, 0), (0, 63), (5, 17)]:
        assert bitworld.world_edge_mask(m, thr_one, 9, block, lane).all()
        assert not bitworld.world_edge_mask(m, thr_zero, 9, block, lane).any()


def test_live_csr_drops_zero_probability_edges(diamond_graph):
    rev_indptr, rev_edges = diamond_graph.reverse_csr()
    probs = np.zeros(diamond_graph.num_edges)
    probs[0] = 0.5
    live_indptr, live_edges = bitworld.live_csr(rev_indptr, rev_edges, probs)
    assert live_edges.tolist() == [0]
    assert live_indptr[-1] == 1


# ---------------------------------------------------------------------------
# Popcount accounting + ragged tails
# ---------------------------------------------------------------------------


def test_popcount_accounting_certain_world(line_graph):
    """All-certain edges: every world's count is exact, tail included."""
    edge_probs = np.ones(line_graph.num_edges)
    targets = np.arange(4, dtype=np.int64)
    for num_samples in (1, 63, 64, 65, 130):
        counts = bitparallel_cascade_counts(
            line_graph, np.array([0]), edge_probs, num_samples, targets, 5
        )
        assert counts.shape == (num_samples,)
        assert (counts == 4).all()  # 0 reaches everyone when p=1


def test_rr_ragged_tail_sizes(small_yelp):
    """θ not a multiple of 64: sizes come from real members, not lanes."""
    graph = small_yelp.graph
    edge_probs = graph.edge_probabilities(list(graph.tags[:3]))
    roots = np.arange(65, dtype=np.int64) % graph.num_nodes
    members, indptr = bitparallel_rr_members(graph, roots, edge_probs, 1)
    sizes = np.diff(indptr)
    assert sizes.shape == (65,)
    assert (sizes >= 1).all()  # the root is always a member
    for s in (0, 64):  # lane 0 of each block, including the tail block
        assert int(roots[s]) in set(members[indptr[s]:indptr[s + 1]].tolist())


def test_block_batching_is_invisible(small_yelp, monkeypatch):
    """Forcing many tiny block batches cannot change a single bit."""
    graph = small_yelp.graph
    edge_probs = graph.edge_probabilities(list(graph.tags[:3]))
    rng = np.random.default_rng(11)
    roots = rng.integers(graph.num_nodes, size=300)
    ref = bitparallel_rr_members(graph, roots, edge_probs, 42)
    monkeypatch.setattr(bitworld, "DEFAULT_BLOCK_CELLS", graph.num_nodes)
    tiny = bitparallel_rr_members(graph, roots, edge_probs, 42)
    np.testing.assert_array_equal(ref[0], tiny[0])
    np.testing.assert_array_equal(ref[1], tiny[1])


# ---------------------------------------------------------------------------
# Engine integration: worker-count invariance (property-style)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def bit_engines():
    """Serial and pooled bit-parallel engines sharing one process pool.

    ``parallel_threshold=0`` on the pooled engine disables the small-run
    fallback so the shared-memory fan-out path genuinely runs.
    """
    serial = SamplingEngine(mode="bitparallel", workers=1, shard_size=64)
    pooled = SamplingEngine(
        mode="bitparallel", workers=2, shard_size=64, parallel_threshold=0
    )
    yield serial, pooled
    serial.close()
    pooled.close()


@settings(max_examples=5, deadline=None)
@given(
    master=st.integers(min_value=0, max_value=2**31 - 1),
    theta=st.integers(min_value=1, max_value=200),
)
def test_bitparallel_identical_across_workers(
    small_yelp, bit_engines, master, theta
):
    graph = small_yelp.graph
    serial, pooled = bit_engines
    target_arr = np.arange(25, dtype=np.int64)
    edge_probs = graph.edge_probabilities(list(graph.tags[:2]))
    a = serial.sample_rr_sets(
        graph, target_arr, edge_probs, theta,
        rng=np.random.default_rng(np.random.SeedSequence(master)),
    )
    b = pooled.sample_rr_sets(
        graph, target_arr, edge_probs, theta,
        rng=np.random.default_rng(np.random.SeedSequence(master)),
    )
    assert a.members.tobytes() == b.members.tobytes()
    assert a.indptr.tobytes() == b.indptr.tobytes()


def test_bitparallel_cascades_identical_across_workers(
    small_yelp, bit_engines
):
    graph = small_yelp.graph
    serial, pooled = bit_engines
    seed_arr = np.array([0, 7, 19], dtype=np.int64)
    target_arr = np.arange(30, dtype=np.int64)
    edge_probs = graph.edge_probabilities(list(graph.tags[:3]))
    a = serial.cascade_target_counts(
        graph, seed_arr, edge_probs, 150, target_arr, rng=123
    )
    b = pooled.cascade_target_counts(
        graph, seed_arr, edge_probs, 150, target_arr, rng=123
    )
    np.testing.assert_array_equal(a, b)


def test_bitparallel_default_shard_size():
    engine = SamplingEngine(mode="bitparallel")
    assert engine.shard_size == DEFAULT_BITPARALLEL_SHARD_SIZE
    assert SamplingEngine(mode="vectorized").shard_size == DEFAULT_SHARD_SIZE


# ---------------------------------------------------------------------------
# Transport-aware parallel fallback (reason counters)
# ---------------------------------------------------------------------------


def _fallback_counters():
    reg = obs.current_registry()
    return (
        reg.value("engine.parallel_fallbacks.below_threshold", 0),
        reg.value("engine.parallel_fallbacks.transport_cost", 0),
    )


def test_scalar_fallback_reports_transport_cost(small_yelp):
    """A run above the base threshold but inside the pickle surcharge
    falls back with reason ``transport_cost``."""
    graph = small_yelp.graph
    penalty = graph.num_edges // 200
    assert penalty > 0, "fixture graph too small to exercise the surcharge"
    target_arr = np.arange(20, dtype=np.int64)
    edge_probs = graph.edge_probabilities(list(graph.tags[:2]))
    with obs.observe():
        engine = SamplingEngine(
            mode="scalar", workers=2, parallel_threshold=100, shard_size=32
        )
        engine.sample_rr_sets(graph, target_arr, edge_probs, 100 + penalty // 2 + 1, rng=0)
        below, transport = _fallback_counters()
        assert engine.telemetry.parallel_fallbacks == 1
        engine.close()
    assert (below, transport) == (0, 1)


def test_small_run_fallback_reports_below_threshold(small_yelp):
    graph = small_yelp.graph
    target_arr = np.arange(20, dtype=np.int64)
    edge_probs = graph.edge_probabilities(list(graph.tags[:2]))
    with obs.observe():
        engine = SamplingEngine(
            mode="bitparallel", workers=2, parallel_threshold=4096,
            shard_size=64,
        )
        engine.sample_rr_sets(graph, target_arr, edge_probs, 50, rng=0)
        below, transport = _fallback_counters()
        assert engine.telemetry.parallel_fallbacks == 1
        engine.close()
    # Shared-memory modes carry no transport surcharge at all.
    assert (below, transport) == (1, 0)


# ---------------------------------------------------------------------------
# SharedCSR / SharedProbs lifecycle
# ---------------------------------------------------------------------------


def test_shared_csr_roundtrip_and_unlink(small_yelp):
    graph = small_yelp.graph
    before = shared_csr.active_tokens()
    shared = SharedCSR(graph)
    assert shared.backend == "shm"
    view = shared.handle.attach()
    assert view.num_nodes == graph.num_nodes
    assert view.num_edges == graph.num_edges
    np.testing.assert_array_equal(view.src, graph.src)
    np.testing.assert_array_equal(view.dst, graph.dst)
    for mine, theirs in zip(view.reverse_csr(), graph.reverse_csr()):
        np.testing.assert_array_equal(mine, theirs)
    for mine, theirs in zip(view.forward_csr(), graph.forward_csr()):
        np.testing.assert_array_equal(mine, theirs)
    with pytest.raises(ValueError):
        view.src[0] = 1  # views are read-only
    shared.unlink()
    shared.unlink()  # idempotent
    assert shared_csr.active_tokens() == before


def test_shared_csr_handle_is_small(small_yelp):
    import pickle

    shared = SharedCSR(small_yelp.graph)
    try:
        blob = pickle.dumps(shared.handle)
        # The whole point: the handle's size is independent of the graph.
        assert len(blob) < 2048
    finally:
        shared.unlink()


def test_shared_probs_fetch_is_private_copy(small_yelp):
    graph = small_yelp.graph
    edge_probs = graph.edge_probabilities(list(graph.tags[:2]))
    shared = SharedProbs(edge_probs)
    fetched = shared.handle.fetch()
    np.testing.assert_array_equal(fetched, edge_probs)
    shared.unlink()
    # An owned copy stays valid after the backing store is gone.
    np.testing.assert_array_equal(fetched, edge_probs)
    assert fetched.flags.owndata or fetched.base is None


def test_memmap_spill_roundtrip(tmp_path):
    arrays = {
        "a": np.arange(100, dtype=np.int64),
        "b": np.linspace(0.0, 1.0, 33),
    }
    pack = SharedArrayPack(arrays, spill_dir=str(tmp_path), spill_threshold=0)
    assert pack.backend == "mmap"
    token = pack.token
    # Evict the creator-side cache so attach() exercises a real re-map.
    shared_csr._evict("mmap", token)
    views = pack.handle.attach()
    np.testing.assert_array_equal(views["a"], arrays["a"])
    np.testing.assert_array_equal(views["b"], arrays["b"])
    copies = pack.handle.fetch_copy()
    np.testing.assert_array_equal(copies["a"], arrays["a"])
    shared_csr._evict("mmap", token)
    pack.unlink()
    assert token not in shared_csr.active_tokens()
    import os

    assert not os.path.exists(token)


def test_engine_close_unlinks_shared_segments(small_yelp):
    graph = small_yelp.graph
    target_arr = np.arange(20, dtype=np.int64)
    edge_probs = graph.edge_probabilities(list(graph.tags[:2]))
    before = shared_csr.active_tokens()
    engine = SamplingEngine(
        mode="bitparallel", workers=2, shard_size=64, parallel_threshold=0
    )
    engine.sample_rr_sets(graph, target_arr, edge_probs, 130, rng=5)
    assert len(shared_csr.active_tokens()) > len(before)
    engine.close()
    assert shared_csr.active_tokens() == before


def test_query_views_share_one_segment(small_yelp):
    graph = small_yelp.graph
    target_arr = np.arange(20, dtype=np.int64)
    edge_probs = graph.edge_probabilities(list(graph.tags[:2]))
    engine = SamplingEngine(
        mode="bitparallel", workers=2, shard_size=64, parallel_threshold=0
    )
    try:
        a = engine.for_query()
        b = engine.for_query()
        a.sample_rr_sets(graph, target_arr, edge_probs, 130, rng=1)
        b.sample_rr_sets(graph, target_arr, edge_probs, 130, rng=2)
        assert len(engine._shared_graphs) == 1
    finally:
        engine.close()
    assert not engine._shared_graphs
