"""Live telemetry pipeline suite (``repro.obs.live`` + friends).

Covers the continuous-observability layer end to end:

* ``Histogram.quantile`` / ``bucket_quantile`` against exact numpy
  percentiles on randomized synthetic data (agreement within one
  power-of-two bucket, exactness at the clamped extremes);
* the query-lifecycle :class:`~repro.obs.events.EventLog` (bounded
  ring, drop accounting, JSONL sink, idempotent close);
* OpenMetrics rendering + parsing round trips;
* :class:`TelemetryExporter` rolling windows and delta-aware SLO
  summaries;
* :class:`TelemetryEndpoint` lifecycle — scrapes parse, ``/healthz``
  flips to 503 on close, sockets refuse connections after ``close()``,
  and **no threads leak**;
* the standing serving invariant, now under scrape load: a server
  polled by a tight ``/metrics``/``/events`` loop returns answers and
  work counters bit-identical to an unobserved server and to direct
  library calls;
* the ``repro serve --listen/--events-out`` and ``repro top`` CLI
  paths, including the exit-130 (SIGTERM/Ctrl-C) event-flush
  guarantee.
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.joint import JointConfig
from repro.obs.events import EVENTS_SCHEMA, EventLog
from repro.obs.live import (
    LiveTelemetry,
    TelemetryEndpoint,
    TelemetryExporter,
    parse_listen_address,
    parse_openmetrics,
    quantile_from_cumulative,
    render_dashboard,
    render_openmetrics,
    start_live_telemetry,
)
from repro.obs.metrics import Histogram, MetricsRegistry, bucket_quantile
from repro.serve import CampaignServer, METRICS_SCHEMA
from repro.sketch.theta import SketchConfig
from tests.conftest import FIG9_TARGETS

FAST_SKETCH = SketchConfig(theta_max=2_000, pilot_samples=50)


def _bucket_index(value: float) -> int:
    """Index of the power-of-two bucket containing ``value``."""
    if value <= 1.0:
        return 0
    return min(int(math.ceil(math.log2(value))), 31)


def _get(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


def _telemetry_threads() -> list[str]:
    return [
        t.name for t in threading.enumerate()
        if t.name.startswith("repro-telemetry")
    ]


# ---------------------------------------------------------------------------
# Histogram quantiles vs exact numpy percentiles
# ---------------------------------------------------------------------------


class TestHistogramQuantile:
    DISTRIBUTIONS = [
        ("uniform", lambda rng, n: rng.uniform(0.0, 500.0, n)),
        ("lognormal", lambda rng, n: rng.lognormal(3.0, 1.5, n)),
        ("exponential", lambda rng, n: rng.exponential(40.0, n)),
        ("bimodal", lambda rng, n: np.concatenate([
            rng.uniform(1.0, 4.0, n // 2),        # warm cache hits
            rng.uniform(200.0, 900.0, n - n // 2)  # cold builds
        ])),
    ]

    @pytest.mark.parametrize(
        "name,sampler", DISTRIBUTIONS, ids=[d[0] for d in DISTRIBUTIONS]
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_within_one_power_of_two_bucket_of_exact(
        self, name, sampler, seed
    ):
        rng = np.random.default_rng(seed)
        values = sampler(rng, 4_000)
        hist = Histogram("test")
        hist.observe_many(values)
        for q in (0.01, 0.1, 0.5, 0.9, 0.95, 0.99):
            estimate = hist.quantile(q)
            # inverted_cdf = the exact order statistic at rank q*n,
            # matching the bucket walk's rank definition (the default
            # linear method interpolates *between* order statistics,
            # which jumps across bucket boundaries at mode gaps).
            exact = float(
                np.percentile(values, q * 100.0, method="inverted_cdf")
            )
            assert abs(_bucket_index(estimate) - _bucket_index(exact)) <= 1, (
                f"{name} q={q}: estimate {estimate} vs exact {exact}"
            )

    def test_extremes_clamp_to_observed_min_max(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(2.0, 2.0, 1_000)
        hist = Histogram("test")
        hist.observe_many(values)
        assert hist.quantile(0.0) == pytest.approx(float(values.min()))
        assert hist.quantile(1.0) == pytest.approx(float(values.max()))

    def test_single_value_every_quantile_is_that_value(self):
        hist = Histogram("test")
        hist.observe(37.5)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 37.5

    def test_overflow_bucket_interpolates_toward_max(self):
        hist = Histogram("test")
        big = float(1 << 32)
        hist.observe_many([big, big * 2, big * 3])
        assert hist.quantile(1.0) == big * 3
        assert float(1 << 30) <= hist.quantile(0.5) <= big * 3

    def test_empty_histogram_is_nan(self):
        assert math.isnan(Histogram("test").quantile(0.5))

    def test_invalid_quantile_raises(self):
        hist = Histogram("test")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantiles_batch_matches_singles(self):
        hist = Histogram("test")
        hist.observe_many([1, 5, 9, 200, 900])
        assert hist.quantiles((0.5, 0.95, 0.99)) == (
            hist.quantile(0.5), hist.quantile(0.95), hist.quantile(0.99)
        )

    def test_as_dict_carries_quantiles(self):
        hist = Histogram("test")
        hist.observe_many([1.0, 10.0, 100.0])
        d = hist.as_dict()
        assert d["p50"] <= d["p95"] <= d["p99"] <= d["max"]

    def test_bucket_quantile_zero_count_is_nan(self):
        assert math.isnan(bucket_quantile({}, 0, 0.5))


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_sequencing_and_ring_bound(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("query.done", trace_id=f"q-{i}")
        assert log.total == 5
        assert log.dropped == 2
        assert len(log) == 3
        snapshot = log.snapshot()
        assert [e["seq"] for e in snapshot] == [3, 4, 5]
        assert [e["trace_id"] for e in snapshot] == ["q-2", "q-3", "q-4"]

    def test_payload_document(self):
        log = EventLog(capacity=8)
        log.emit("query.admitted", trace_id="q-1", op="find_seeds")
        payload = log.payload()
        assert payload["schema"] == EVENTS_SCHEMA
        assert payload["total"] == 1 and payload["dropped"] == 0
        (event,) = payload["events"]
        assert event["kind"] == "query.admitted"
        assert event["attrs"]["op"] == "find_seeds"

    def test_snapshot_limit(self):
        log = EventLog(capacity=10)
        for i in range(6):
            log.emit("e", n=i)
        assert [e["attrs"]["n"] for e in log.snapshot(limit=2)] == [4, 5]

    def test_zero_capacity_disables_ring_but_feeds_sink(self):
        import io

        sink = io.StringIO()
        log = EventLog(capacity=0, sink=sink)
        assert log.enabled
        log.emit("query.done", trace_id="q-1", ok=True)
        assert len(log) == 0
        (line,) = sink.getvalue().splitlines()
        record = json.loads(line)
        assert record["kind"] == "query.done"
        assert record["attrs"]["ok"] is True

    def test_no_ring_no_sink_is_disabled(self):
        log = EventLog(capacity=0)
        assert not log.enabled
        assert log.emit("e") is None
        assert log.total == 0

    def test_owned_sink_written_and_closed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=4)
        log.open_sink(path)
        log.emit("query.admitted", trace_id="q-1")
        log.emit("query.done", trace_id="q-1")
        log.close()
        log.close()  # idempotent
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(l)["kind"] for l in lines] == [
            "query.admitted", "query.done"
        ]
        # After close: emits are dropped, the ring stays snapshottable.
        assert log.emit("query.rejected") is None
        assert len(log.snapshot()) == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventLog(capacity=-1)


class TestSinkHardening:
    """Disk failures are dropped-and-counted; rotation bounds disk use."""

    class _BrokenSink:
        """A file-like whose writes fail like a full disk."""

        def __init__(self, fail_after: int = 0) -> None:
            self.fail_after = fail_after
            self.writes = 0

        def write(self, line: str) -> int:
            self.writes += 1
            if self.writes > self.fail_after:
                raise OSError(28, "No space left on device")
            return len(line)

        def flush(self) -> None:
            raise OSError(28, "No space left on device")

    def test_enospc_drops_and_counts_never_raises(self):
        sink = self._BrokenSink(fail_after=1)
        log = EventLog(capacity=4)
        log.attach_sink(sink)
        log.emit("query.admitted", trace_id="q-1")  # lands
        for i in range(3):  # all dropped by the "full disk"
            log.emit("query.done", trace_id=f"q-{i}")
        assert log.sink_errors == 3
        # The ring kept every event the sink lost.
        assert len(log.snapshot()) == 4
        assert log.payload()["sink_errors"] == 3

    def test_flush_and_close_failures_counted(self):
        log = EventLog(capacity=2)
        log.attach_sink(self._BrokenSink(fail_after=10))
        log.flush()
        assert log.sink_errors == 1
        log.close()
        assert log.sink_errors == 2

    def test_rotation_keeps_bounded_generations(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=0)
        log.open_sink(path, max_bytes=200, backups=2)
        for i in range(40):
            log.emit("query.done", trace_id=f"q-{i:03d}", ok=True)
        log.close()
        produced = sorted(p.name for p in tmp_path.iterdir())
        # Active file + at most `backups` rotated generations.
        assert produced == [
            "events.jsonl", "events.jsonl.1", "events.jsonl.2",
        ]
        # No generation exceeds the threshold by more than one line.
        for name in produced:
            assert (tmp_path / name).stat().st_size <= 200 + 120
        # Nothing was lost to rotation itself and order is preserved:
        # the newest generation holds the latest events.
        assert log.sink_errors == 0
        last = (tmp_path / "events.jsonl").read_text(
            encoding="utf-8"
        ).splitlines()
        assert json.loads(last[-1])["trace_id"] == "q-039"
        older = (tmp_path / "events.jsonl.1").read_text(
            encoding="utf-8"
        ).splitlines()
        assert (json.loads(older[-1])["seq"]
                < json.loads(last[0])["seq"])

    def test_rotation_with_zero_backups_truncates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=0)
        log.open_sink(path, max_bytes=150, backups=0)
        for i in range(30):
            log.emit("e", n=i)
        log.close()
        assert [p.name for p in tmp_path.iterdir()] == ["events.jsonl"]
        assert path.stat().st_size <= 150 + 80

    def test_open_sink_validation(self, tmp_path):
        log = EventLog(capacity=0)
        with pytest.raises(ValueError):
            log.open_sink(tmp_path / "e.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            log.open_sink(tmp_path / "e.jsonl", backups=-1)


# ---------------------------------------------------------------------------
# OpenMetrics render + parse
# ---------------------------------------------------------------------------


def _synthetic_metrics() -> dict:
    registry = MetricsRegistry()
    registry.counter("serve.queries").inc(11)
    registry.counter("serve.cache.hits").inc(7)
    registry.gauge("serve.queue.depth").set(3)
    hist = registry.histogram("serve.op.latency_ms.find_seeds")
    hist.observe_many([0.5, 3.0, 3.5, 40.0, 900.0])
    other = registry.histogram("serve.query.latency_ms")
    other.observe_many([1.0, 2.0])
    return registry.as_dict()


class TestOpenMetrics:
    def test_render_parse_round_trip(self):
        text = render_openmetrics(_synthetic_metrics())
        scrape = parse_openmetrics(text)
        assert scrape.complete  # saw "# EOF"
        assert scrape.value("repro_serve_queries_total") == 11
        assert scrape.counter("repro_serve_cache_hits") == 7
        assert scrape.value("repro_serve_queue_depth") == 3
        assert scrape.families["repro_serve_queries"] == "counter"
        assert scrape.families["repro_serve_queue_depth"] == "gauge"
        assert scrape.families["repro_serve_op_latency_ms"] == "histogram"
        assert "repro_serve_queries" in scrape.helps

    def test_histogram_family_with_op_label(self):
        text = render_openmetrics(_synthetic_metrics())
        scrape = parse_openmetrics(text)
        assert scrape.label_values(
            "repro_serve_op_latency_ms_bucket", "op"
        ) == ["find_seeds"]
        buckets, total, count = scrape.histogram(
            "repro_serve_op_latency_ms", op="find_seeds"
        )
        assert count == 5
        assert total == pytest.approx(947.0)
        # Cumulative buckets are monotone and end at the total count.
        ordered = [
            buckets[k] for k in sorted(
                (k for k in buckets if k != "+Inf"), key=int
            )
        ]
        assert ordered == sorted(ordered)
        assert buckets["+Inf"] == 5

    def test_scraped_quantile_within_one_bucket_of_histogram(self):
        metrics = _synthetic_metrics()
        text = render_openmetrics(metrics)
        scrape = parse_openmetrics(text)
        buckets, _total, count = scrape.histogram(
            "repro_serve_op_latency_ms", op="find_seeds"
        )
        hist = Histogram("h")
        hist.observe_many([0.5, 3.0, 3.5, 40.0, 900.0])
        for q in (0.5, 0.95):
            scraped = quantile_from_cumulative(buckets, count, q)
            direct = hist.quantile(q)
            assert abs(_bucket_index(scraped) - _bucket_index(direct)) <= 1

    def test_slo_window_gauges_rendered(self):
        slo = {
            "samples": 3,
            "window_seconds": 60.0,
            "qps": 12.5,
            "error_rate": 0.01,
            "error_budget_remaining": 0.5,
            "cache_hit_ratio": 0.9,
            "latency_ms": {
                "find_seeds": {"count": 5, "p50": 3.0, "p95": 40.0,
                               "p99": 900.0},
            },
        }
        scrape = parse_openmetrics(
            render_openmetrics(_synthetic_metrics(), slo=slo)
        )
        assert scrape.value(
            "repro_serve_window_qps", window="60s"
        ) == 12.5
        assert scrape.value(
            "repro_serve_window_latency_ms",
            op="find_seeds", quantile="0.95",
        ) == 40.0

    def test_label_escaping_round_trips(self):
        from repro.obs.live import _escape_label

        assert _escape_label('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError):
            parse_openmetrics("this is { not a metric line")

    def test_nan_value_renders_and_parses(self):
        slo = {
            "samples": 2, "window_seconds": 10.0, "qps": float("nan"),
            "error_rate": 0.0, "error_budget_remaining": 1.0,
            "cache_hit_ratio": None, "latency_ms": {},
        }
        scrape = parse_openmetrics(
            render_openmetrics({"counters": {}}, slo=slo)
        )
        value = scrape.value("repro_serve_window_qps", window="10s")
        assert value is not None and math.isnan(value)


# ---------------------------------------------------------------------------
# Exporter rolling windows
# ---------------------------------------------------------------------------


class _FakeServer:
    """Minimal metrics() provider with dial-a-counter state."""

    def __init__(self):
        self.registry = MetricsRegistry()

    def metrics(self) -> dict:
        return self.registry.as_dict()

    def advance(self, queries=0, errors=0, hits=0, misses=0, latencies=()):
        if queries:
            self.registry.counter("serve.queries").inc(queries)
        if errors:
            self.registry.counter("serve.errors").inc(errors)
        if hits:
            self.registry.counter("serve.cache.hits").inc(hits)
        if misses:
            self.registry.counter("serve.cache.misses").inc(misses)
        hist = self.registry.histogram("serve.op.latency_ms.find_seeds")
        hist.observe_many(latencies)


class TestTelemetryExporter:
    def test_summary_needs_two_samples(self):
        exporter = TelemetryExporter(_FakeServer(), interval=0.01)
        assert exporter.summary() == {"samples": 0}
        exporter.sample_now()
        assert exporter.summary() == {"samples": 1}

    def test_windowed_deltas_not_lifetime(self):
        server = _FakeServer()
        server.advance(queries=1_000, hits=500, misses=500)
        exporter = TelemetryExporter(server, interval=0.01)
        exporter.sample_now()  # baseline AFTER the 1000-query history
        server.advance(queries=10, errors=1, hits=9, misses=1,
                       latencies=[2.0] * 9 + [800.0])
        time.sleep(0.01)
        exporter.sample_now()
        summary = exporter.summary()
        # Only the 10 post-baseline queries count, not the 1000 before.
        assert summary["queries"] == 10
        assert summary["errors"] == 1
        assert summary["qps"] > 0
        assert summary["error_rate"] == pytest.approx(1 / 11)
        assert summary["cache_hit_ratio"] == pytest.approx(0.9)
        latency = summary["latency_ms"]["find_seeds"]
        assert latency["count"] == 10
        assert latency["p50"] <= 4.0
        assert latency["p99"] >= 256.0

    def test_error_budget(self):
        server = _FakeServer()
        exporter = TelemetryExporter(server, interval=0.01, slo_target=0.9)
        exporter.sample_now()
        server.advance(queries=99, errors=1)
        exporter.sample_now()
        summary = exporter.summary()
        # 1 bad / 100 requests against a 10% allowance: 90% budget left.
        assert summary["error_budget_remaining"] == pytest.approx(0.9)
        assert summary["availability"] == pytest.approx(0.99)

    def test_zero_traffic_budget_is_full(self):
        exporter = TelemetryExporter(_FakeServer(), interval=0.01)
        exporter.sample_now()
        time.sleep(0.005)
        exporter.sample_now()
        summary = exporter.summary()
        assert summary["qps"] == 0.0
        assert summary["error_rate"] == 0.0
        assert summary["error_budget_remaining"] == 1.0
        assert summary["cache_hit_ratio"] is None

    def test_window_trimming_bounds_retained_samples(self):
        exporter = TelemetryExporter(
            _FakeServer(), interval=0.001, window_seconds=0.002
        )
        for _ in range(50):
            exporter.sample_now()
            time.sleep(0.001)
        assert exporter.sample_count <= 5

    def test_thread_lifecycle_and_idempotent_stop(self):
        server = _FakeServer()
        exporter = TelemetryExporter(server, interval=0.01)
        assert not exporter.running
        exporter.start()
        exporter.start()  # second start is a no-op
        assert exporter.running
        deadline = time.monotonic() + 5.0
        while exporter.sample_count < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert exporter.sample_count >= 3
        exporter.stop()
        exporter.stop()  # idempotent
        assert not exporter.running
        assert not _telemetry_threads()

    def test_sampling_survives_metrics_failure(self):
        server = _FakeServer()
        exporter = TelemetryExporter(server, interval=0.005)
        exporter.start()
        original = server.metrics
        server.metrics = lambda: (_ for _ in ()).throw(RuntimeError("boom"))
        time.sleep(0.03)
        server.metrics = original
        before = exporter.sample_count
        deadline = time.monotonic() + 5.0
        while (
            exporter.sample_count <= before
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        exporter.stop()
        assert exporter.sample_count > before  # recovered after the fault

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0.0},
            {"interval": 1.0, "window_seconds": 0.5},
            {"slo_target": 0.0},
            {"slo_target": 1.5},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TelemetryExporter(_FakeServer(), **kwargs)


# ---------------------------------------------------------------------------
# HTTP endpoint lifecycle
# ---------------------------------------------------------------------------


def _server(graph, **kwargs):
    kwargs.setdefault("config", JointConfig(sketch=FAST_SKETCH))
    kwargs.setdefault("pool_size", 2)
    return CampaignServer(graph, **kwargs)


class TestTelemetryEndpoint:
    def test_routes(self, fig9_graph):
        with _server(fig9_graph) as server:
            server.find_seeds(FIG9_TARGETS, ("c5", "c4"), 2, seed=0)
            with TelemetryEndpoint(server) as endpoint:
                status, body = _get(endpoint.url + "/metrics")
                assert status == 200
                scrape = parse_openmetrics(body)
                assert scrape.complete
                assert scrape.counter("repro_serve_queries") == 1

                status, body = _get(endpoint.url + "/healthz")
                assert status == 200
                health = json.loads(body)
                assert health["status"] == "ok"
                assert health["in_flight"] == 0

                status, body = _get(endpoint.url + "/events")
                assert status == 200
                payload = json.loads(body)
                assert payload["schema"] == EVENTS_SCHEMA
                kinds = {e["kind"] for e in payload["events"]}
                assert "query.admitted" in kinds
                assert "query.done" in kinds

                status, body = _get(endpoint.url + "/events?limit=1")
                assert len(json.loads(body)["events"]) == 1

                status, _ = _get(endpoint.url + "/nope")
                assert status == 404

    def test_healthz_503_after_server_close(self, fig9_graph):
        server = _server(fig9_graph)
        with TelemetryEndpoint(server) as endpoint:
            server.close()
            status, body = _get(endpoint.url + "/healthz")
            assert status == 503
            assert json.loads(body)["closed"] is True

    def test_close_refuses_connections_and_leaks_no_threads(
        self, fig9_graph
    ):
        with _server(fig9_graph) as server:
            endpoint = TelemetryEndpoint(server).start()
            url = endpoint.url
            assert _get(url + "/healthz")[0] == 200
            assert _telemetry_threads()
            endpoint.close()
            endpoint.close()  # idempotent
            assert not _telemetry_threads()
            with pytest.raises((urllib.error.URLError, OSError)):
                urllib.request.urlopen(url + "/healthz", timeout=1.0)
            with pytest.raises(RuntimeError):
                endpoint.start()

    def test_port_zero_resolves_before_start(self, fig9_graph):
        with _server(fig9_graph) as server:
            endpoint = TelemetryEndpoint(server, port=0)
            try:
                assert endpoint.address[1] > 0
            finally:
                endpoint.close()


class TestStartLiveTelemetry:
    @pytest.mark.parametrize(
        "listen,expected",
        [
            ("127.0.0.1:9100", ("127.0.0.1", 9100)),
            (":9100", ("127.0.0.1", 9100)),
            ("9100", ("127.0.0.1", 9100)),
            ("0.0.0.0:0", ("0.0.0.0", 0)),
        ],
    )
    def test_parse_listen_address(self, listen, expected):
        assert parse_listen_address(listen) == expected

    @pytest.mark.parametrize("listen", ["host:port", "1:2:x", "1:99999"])
    def test_parse_listen_address_rejects(self, listen):
        with pytest.raises(ValueError):
            parse_listen_address(listen)

    def test_wiring_and_idempotent_close(self, fig9_graph):
        with _server(fig9_graph) as server:
            telemetry = start_live_telemetry(
                server, listen="127.0.0.1:0", interval=0.05
            )
            assert isinstance(telemetry, LiveTelemetry)
            try:
                assert telemetry.exporter.running
                status, body = _get(telemetry.url + "/metrics")
                assert status == 200
                assert parse_openmetrics(body).complete
            finally:
                telemetry.close()
                telemetry.close()  # idempotent
            assert not telemetry.exporter.running
            assert not _telemetry_threads()


# ---------------------------------------------------------------------------
# The invariant, under scrape load
# ---------------------------------------------------------------------------


class TestScrapeUnderLoadDifferential:
    def test_scraped_server_matches_unobserved_server(self, fig9_graph):
        """Tight /metrics + /events polling perturbs nothing.

        Three runs of the same mixed query batch: (a) a server with an
        exporter + endpoint being hammered by a scrape thread, (b) a
        plain server with telemetry never attached, (c) captured for
        every query: seeds, spreads, AND the full work-counter dict
        (``rr.samples_drawn``-class counters included).
        """
        queries = [
            ("find_seeds", dict(targets=FIG9_TARGETS, tags=("c5", "c4"),
                                k=2, engine="trs", seed=s))
            for s in (0, 1, 0, 2, 0)
        ] + [
            ("estimate_spread", dict(seeds=(0, 1), targets=FIG9_TARGETS,
                                     tags=("c5", "c4"), seed=3)),
            ("find_tags", dict(seeds=(0, 1), targets=FIG9_TARGETS, r=2,
                               seed=0)),
        ]

        def run_batch(server):
            outcomes = []
            futures = [
                getattr(server, f"submit_{op}")(**kwargs)
                for op, kwargs in queries
            ]
            for future in futures:
                response = future.result(timeout=120)
                value = response.value
                outcomes.append((
                    getattr(value, "seeds", None),
                    getattr(value, "tags", None),
                    getattr(value, "estimated_spread", value),
                    response.report["metrics"]["counters"],
                ))
            return outcomes

        # (a) scraped server: exporter sampling fast + a polling thread.
        with _server(fig9_graph) as server:
            telemetry = start_live_telemetry(
                server, listen="127.0.0.1:0", interval=0.01
            )
            stop = threading.Event()
            scrapes = {"n": 0}

            def pound():
                while not stop.is_set():
                    _get(telemetry.url + "/metrics")
                    _get(telemetry.url + "/events")
                    _get(telemetry.url + "/healthz")
                    scrapes["n"] += 1

            poller = threading.Thread(target=pound, daemon=True)
            poller.start()
            try:
                observed = run_batch(server)
            finally:
                stop.set()
                poller.join(timeout=10)
                telemetry.close()
            assert scrapes["n"] > 0  # the load was real

        # (b) unobserved server: no exporter, no endpoint, no polling.
        with _server(fig9_graph) as server:
            plain = run_batch(server)

        assert observed == plain

    def test_event_emission_does_not_change_counters(self, fig9_graph):
        """Events on vs off: responses and counters bit-identical."""
        def ask(server):
            r = server.find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0
            )
            return (r.value.seeds, r.value.estimated_spread,
                    r.report["metrics"]["counters"])

        with _server(fig9_graph, event_capacity=0) as server:
            without_events = ask(server)
            assert server.events.total == 0  # truly disabled
        with _server(fig9_graph, event_capacity=256) as server:
            with_events = ask(server)
            assert server.events.total > 0
        assert with_events == without_events


# ---------------------------------------------------------------------------
# Server-side lifecycle events + metrics/2 surface
# ---------------------------------------------------------------------------


class TestServerTelemetrySurface:
    def test_lifecycle_event_sequence_and_trace_id(self, fig9_graph):
        with _server(fig9_graph) as server:
            cold = server.find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0
            )
            warm = server.find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0
            )
            events = server.events.snapshot()

        assert cold.cache == "miss" and warm.cache == "hit"
        by_trace: dict = {}
        for event in events:
            by_trace.setdefault(event["trace_id"], []).append(event["kind"])
        cold_kinds, warm_kinds = list(by_trace.values())
        assert set(cold_kinds) == {
            "query.admitted", "query.queued",
            "query.build.start", "query.build.done", "query.done",
        }
        assert set(warm_kinds) == {
            "query.admitted", "query.queued",
            "query.cache.hit", "query.done",
        }
        # The same trace id is stamped on the query's report + spans.
        assert cold.report["trace_id"] in by_trace
        assert warm.report["trace_id"] in by_trace
        assert cold.report["trace_id"] != warm.report["trace_id"]

    def test_rejection_events(self, fig9_graph):
        from repro.exceptions import ServerClosedError

        server = _server(fig9_graph)
        server.close()
        with pytest.raises(ServerClosedError):
            server.find_seeds(FIG9_TARGETS, ("c5",), 1, seed=0)
        (event,) = server.events.snapshot()
        assert event["kind"] == "query.rejected"
        assert event["attrs"]["reason"] == "ServerClosedError"

    def test_metrics2_quantiles_and_gauges(self, fig9_graph):
        with _server(fig9_graph) as server:
            server.find_seeds(FIG9_TARGETS, ("c5", "c4"), 2, seed=0)
            server.find_seeds(FIG9_TARGETS, ("c5", "c4"), 2, seed=0)
            metrics = server.metrics()
            health = server.health()
        assert METRICS_SCHEMA == "repro.serve.metrics/4"
        op_hist = metrics["histograms"]["serve.op.latency_ms.find_seeds"]
        assert op_hist["count"] == 2
        assert op_hist["p50"] <= op_hist["p95"] <= op_hist["p99"]
        assert metrics["gauges"]["serve.uptime_seconds"] > 0
        assert metrics["gauges"]["serve.inflight"] == 0
        assert health["status"] == "ok"
        assert health["queued"] == 0 and health["in_flight"] == 0

    def test_error_counters_and_event(self, fig9_graph):
        from repro.exceptions import BudgetExceededError

        with _server(fig9_graph) as server:
            with pytest.raises(BudgetExceededError):
                # A 1-sample budget trips inside the worker, so the
                # failure is a *query* error, not a submit-time one.
                server.find_seeds(
                    FIG9_TARGETS, ("c5",), 1, seed=0, max_samples=1
                )
            metrics = server.metrics()
            events = server.events.snapshot()
        # A budget trip is a cooperative *cancellation*, not an error:
        # it lands in serve.cancelled and emits query.cancelled.
        assert metrics["counters"]["serve.cancelled"] == 1
        assert metrics["counters"]["serve.errors"] == 0
        cancelled = [e for e in events if e["kind"] == "query.cancelled"]
        assert cancelled and cancelled[-1]["attrs"]["reason"] == "max_samples"

    def test_protocol_admin_ops(self, fig9_graph):
        from repro.serve import execute_request

        with _server(fig9_graph) as server:
            server.find_seeds(FIG9_TARGETS, ("c5", "c4"), 2, seed=0)
            metrics = execute_request(server, {"op": "metrics"})
            health = execute_request(server, {"op": "health"})
            events = execute_request(server, {"op": "events", "limit": 2})
        assert metrics["schema"] == METRICS_SCHEMA
        assert health["health"]["status"] == "ok"
        assert events["schema"] == EVENTS_SCHEMA
        assert len(events["events"]) == 2


# ---------------------------------------------------------------------------
# repro top dashboard
# ---------------------------------------------------------------------------


class TestDashboard:
    def test_render_from_live_scrape(self, fig9_graph):
        with _server(fig9_graph) as server:
            telemetry = start_live_telemetry(
                server, listen="127.0.0.1:0", interval=0.05
            )
            try:
                server.find_seeds(FIG9_TARGETS, ("c5", "c4"), 2, seed=0)
                server.find_seeds(FIG9_TARGETS, ("c5", "c4"), 2, seed=0)
                _status, text = _get(telemetry.url + "/metrics")
                _status, health_body = _get(telemetry.url + "/healthz")
            finally:
                telemetry.close()
        frame = render_dashboard(
            parse_openmetrics(text), json.loads(health_body),
            url=telemetry.url,
        )
        assert "repro top" in frame
        assert "queries 2" in frame
        assert "hit-ratio 50.0%" in frame
        assert "find_seeds" in frame  # per-op latency row

    def test_render_handles_empty_scrape(self):
        frame = render_dashboard(parse_openmetrics("# EOF\n"), {})
        assert "queries 0" in frame


# ---------------------------------------------------------------------------
# CLI: serve --listen / --events-out / exit-130 flush, repro top
# ---------------------------------------------------------------------------


@pytest.fixture()
def cli_workspace(tmp_path, fig9_graph):
    from repro.graphs.io import save_tag_graph

    graph_path = tmp_path / "g.tsv"
    save_tag_graph(fig9_graph, graph_path)
    return graph_path


def _serve_request(request_id=1):
    return {
        "id": request_id, "op": "find_seeds",
        "targets": list(FIG9_TARGETS), "tags": ["c5", "c4"],
        "k": 2, "engine": "trs", "seed": 0,
    }


class TestServeCLITelemetry:
    def test_listen_and_events_out(
        self, cli_workspace, tmp_path, capsys, monkeypatch
    ):
        import io
        import re
        import sys as _sys

        from repro.cli import main

        events_path = tmp_path / "events.jsonl"
        # One query, then EOF; scrape while the query is in flight by
        # wedging a probe into stdin iteration via a custom reader.
        lines = [json.dumps(_serve_request()) + "\n"]
        scraped = {}

        class ProbingStdin(io.StringIO):
            """Yields the query, then scrapes before signalling EOF."""

            def __init__(self):
                super().__init__("".join(lines))

            def __iter__(self):
                yield from lines
                err = capsys.readouterr().err
                match = re.search(r"http://\S+", err)
                assert match, f"no telemetry URL announced: {err!r}"
                url = match.group(0)
                scraped["metrics"] = _get(url + "/metrics")
                scraped["healthz"] = _get(url + "/healthz")
                scraped["events"] = _get(url + "/events")

        monkeypatch.setattr(_sys, "stdin", ProbingStdin())
        code = main([
            "serve", str(cli_workspace), "--pool-size", "2",
            "--listen", "127.0.0.1:0",
            "--events-out", str(events_path),
            "--telemetry-interval", "0.05",
        ])
        assert code == 0
        assert not _telemetry_threads()  # endpoint + exporter torn down

        status, body = scraped["metrics"]
        assert status == 200
        scrape = parse_openmetrics(body)
        assert scrape.complete
        assert scrape.counter("repro_serve_queries") == 1
        status, body = scraped["healthz"]
        assert status == 200 and json.loads(body)["status"] == "ok"
        status, body = scraped["events"]
        assert json.loads(body)["total"] >= 5

        records = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        kinds = [r["kind"] for r in records]
        assert kinds.count("query.done") == 1
        assert "query.build.start" in kinds

    def test_interrupt_still_flushes_events_out(
        self, cli_workspace, tmp_path, capsys, monkeypatch
    ):
        """The exit-130 path leaves a complete --events-out behind."""
        import sys as _sys

        from repro.cli import main

        events_path = tmp_path / "events.jsonl"

        class InterruptingStdin:
            """One good query, then a mid-stream SIGTERM/Ctrl-C."""

            def __iter__(self):
                yield json.dumps(_serve_request()) + "\n"
                raise KeyboardInterrupt

        monkeypatch.setattr(_sys, "stdin", InterruptingStdin())
        code = main([
            "serve", str(cli_workspace), "--pool-size", "2",
            "--events-out", str(events_path),
        ])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert f"events to {events_path}" in err
        records = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        done = [r for r in records if r["kind"] == "query.done"]
        assert len(done) == 1 and done[0]["attrs"]["ok"] is True

    def test_metrics_out_schema_bumped(
        self, cli_workspace, tmp_path, capsys, monkeypatch
    ):
        import io
        import sys as _sys

        from repro.cli import main

        monkeypatch.setattr(
            _sys, "stdin",
            io.StringIO(json.dumps(_serve_request()) + "\n"),
        )
        metrics_path = tmp_path / "m.json"
        assert main([
            "serve", str(cli_workspace),
            "--metrics-out", str(metrics_path),
        ]) == 0
        capsys.readouterr()
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["schema"] == "repro.serve.metrics/4"
        hist = snapshot["metrics"]["histograms"][
            "serve.op.latency_ms.find_seeds"
        ]
        assert {"p50", "p95", "p99"} <= set(hist)


class TestTopCLI:
    def test_single_frame_against_live_endpoint(
        self, fig9_graph, capsys
    ):
        from repro.cli import main

        with _server(fig9_graph) as server:
            telemetry = start_live_telemetry(
                server, listen="127.0.0.1:0", interval=0.05
            )
            try:
                server.find_seeds(
                    FIG9_TARGETS, ("c5", "c4"), 2, seed=0
                )
                assert main(["top", telemetry.url, "--once"]) == 0
            finally:
                telemetry.close()
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "status ok" in out
        assert "find_seeds" in out

    def test_bare_host_port_accepted(self, fig9_graph, capsys):
        from repro.cli import main

        with _server(fig9_graph) as server:
            telemetry = start_live_telemetry(server, listen="127.0.0.1:0")
            try:
                host_port = telemetry.url[len("http://"):]
                assert main(["top", host_port, "--once"]) == 0
            finally:
                telemetry.close()
        assert "repro top" in capsys.readouterr().out

    def test_unreachable_endpoint_fails_cleanly(self, capsys):
        from repro.cli import main

        # A port from the ephemeral range with nothing listening.
        assert main(["top", "http://127.0.0.1:1", "--once"]) == 1
        assert "cannot scrape" in capsys.readouterr().err
