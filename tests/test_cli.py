"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graphs import load_tag_graph


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A generated dataset TSV + targets file shared by CLI tests."""
    root = tmp_path_factory.mktemp("cli")
    graph_path = root / "g.tsv"
    code = main(
        ["dataset", "lastfm", str(graph_path), "--scale", "0.3",
         "--targets", "20", "--seed", "0"]
    )
    assert code == 0
    return graph_path, graph_path.with_suffix(".targets")


class TestDatasetCommand:
    def test_writes_loadable_graph(self, workspace, capsys):
        graph_path, targets_path = workspace
        graph = load_tag_graph(graph_path)
        assert graph.num_nodes > 0
        targets = [
            int(x) for x in targets_path.read_text().split() if x.strip()
        ]
        assert len(targets) == 20
        assert all(0 <= t < graph.num_nodes for t in targets)

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["dataset", "nope", str(tmp_path / "x.tsv")])


class TestSeedsCommand:
    def test_outputs_seeds(self, workspace, capsys):
        graph_path, targets_path = workspace
        graph = load_tag_graph(graph_path)
        tags = ",".join(graph.tags[:3])
        code = main(
            ["seeds", str(graph_path), "--targets-file", str(targets_path),
             "-k", "2", "--tags", tags, "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("seeds: ")
        seed_line = out.splitlines()[0].split(": ", 1)[1]
        assert len(seed_line.split(",")) == 2

    @pytest.mark.parametrize("engine", ["trs", "lltrs"])
    def test_engines(self, workspace, capsys, engine):
        graph_path, targets_path = workspace
        graph = load_tag_graph(graph_path)
        tags = ",".join(graph.tags[:3])
        code = main(
            ["seeds", str(graph_path), "--targets-file", str(targets_path),
             "-k", "1", "--tags", tags, "--engine", engine]
        )
        assert code == 0


class TestTagsCommand:
    def test_outputs_tags(self, workspace, capsys):
        graph_path, targets_path = workspace
        code = main(
            ["tags", str(graph_path), "--targets-file", str(targets_path),
             "-r", "3", "--seeds", "0,1", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("tags: ")


class TestJointCommand:
    def test_iterative(self, workspace, capsys):
        graph_path, targets_path = workspace
        code = main(
            ["joint", str(graph_path), "--targets-file", str(targets_path),
             "-k", "2", "-r", "3", "--max-rounds", "1", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "seeds: " in out and "tags: " in out and "spread: " in out

    def test_baseline_flag(self, workspace, capsys):
        graph_path, targets_path = workspace
        code = main(
            ["joint", str(graph_path), "--targets-file", str(targets_path),
             "-k", "1", "-r", "2", "--baseline", "--seed", "0"]
        )
        assert code == 0


class TestSpreadCommand:
    def test_estimates(self, workspace, capsys):
        graph_path, targets_path = workspace
        graph = load_tag_graph(graph_path)
        tags = ",".join(graph.tags[:2])
        code = main(
            ["spread", str(graph_path), "--targets-file", str(targets_path),
             "--seeds", "0", "--tags", tags, "--samples", "100"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("spread: ")

    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCompareCommand:
    def test_compares_engines(self, workspace, capsys):
        graph_path, targets_path = workspace
        graph = load_tag_graph(graph_path)
        tags = ",".join(graph.tags[:3])
        code = main(
            ["compare", str(graph_path), "--targets-file", str(targets_path),
             "-k", "2", "--tags", tags, "--engines", "trs,lltrs",
             "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trs" in out and "lltrs" in out
        assert "verified spread" in out


class TestLearnCommand:
    def test_learn_round_trip(self, workspace, capsys, tmp_path):
        from repro.learning import simulate_interaction_log

        graph_path, _targets = workspace
        graph = load_tag_graph(graph_path)
        log = simulate_interaction_log(graph, 50, rng=0)
        log_path = tmp_path / "log.csv"
        log.save(log_path)
        out_path = tmp_path / "learned.tsv"
        code = main(
            ["learn", str(log_path), str(graph_path), str(out_path),
             "--window", "20", "--a", "3"]
        )
        assert code == 0
        learned = load_tag_graph(out_path)
        assert learned.num_nodes == graph.num_nodes
        assert learned.num_edges > 0

    def test_learn_bernoulli_method(self, workspace, capsys, tmp_path):
        from repro.learning import simulate_interaction_log

        graph_path, _targets = workspace
        graph = load_tag_graph(graph_path)
        log = simulate_interaction_log(graph, 30, rng=0)
        log_path = tmp_path / "log.csv"
        log.save(log_path)
        out_path = tmp_path / "learned.tsv"
        code = main(
            ["learn", str(log_path), str(graph_path), str(out_path),
             "--method", "bernoulli"]
        )
        assert code == 0


class TestServeCommand:
    def _requests(self, graph, targets):
        tags = list(graph.tags[:2])
        return [
            {"id": 1, "op": "find_seeds", "targets": targets, "tags": tags,
             "k": 2, "engine": "trs", "seed": 0},
            {"id": 2, "op": "find_seeds", "targets": targets, "tags": tags,
             "k": 2, "engine": "trs", "seed": 0},
            {"id": 3, "op": "spread", "seeds": [targets[0]],
             "targets": targets, "tags": tags, "seed": 1},
            {"id": 4, "op": "metrics"},
        ]

    def test_serves_piped_json_queries(
        self, workspace, capsys, monkeypatch, tmp_path
    ):
        import io
        import json
        import sys

        graph_path, targets_path = workspace
        graph = load_tag_graph(graph_path)
        targets = [
            int(x) for x in targets_path.read_text().split() if x.strip()
        ]
        requests = self._requests(graph, targets)
        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n"),
        )
        metrics_path = tmp_path / "serve_metrics.json"
        code = main(
            ["serve", str(graph_path), "--pool-size", "2",
             "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert len(lines) == 4
        by_id = {d["id"]: d for d in lines}
        assert by_id[1]["ok"] and by_id[1]["cache"] == "miss"
        assert by_id[2]["ok"] and by_id[2]["cache"] == "hit"
        assert by_id[1]["seeds"] == by_id[2]["seeds"]
        assert by_id[1]["spread"] == by_id[2]["spread"]
        assert by_id[3]["ok"] and isinstance(by_id[3]["spread"], float)
        assert by_id[4]["metrics"]["counters"]["serve.queries"] == 3
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["schema"] == "repro.serve.metrics/4"
        assert snapshot["cache"]["builds"] >= 2

    def test_warm_file_prebuilds_assets(
        self, workspace, capsys, monkeypatch, tmp_path
    ):
        import io
        import json
        import sys

        graph_path, targets_path = workspace
        graph = load_tag_graph(graph_path)
        targets = [
            int(x) for x in targets_path.read_text().split() if x.strip()
        ]
        query = {"op": "find_seeds", "targets": targets,
                 "tags": list(graph.tags[:2]), "k": 2,
                 "engine": "trs", "seed": 0}
        warm_path = tmp_path / "warm.json"
        warm_path.write_text(json.dumps([query]), encoding="utf-8")
        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO(json.dumps({**query, "id": 7}) + "\n"),
        )
        code = main(
            ["serve", str(graph_path), "--warm", str(warm_path)]
        )
        assert code == 0
        (response,) = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert response["ok"]
        assert response["cache"] == "hit"  # the warm file built it

    def test_bad_requests_get_error_responses(
        self, workspace, capsys, monkeypatch
    ):
        import io
        import json
        import sys

        graph_path, _targets = workspace
        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO('{"id": 1, "op": "nope"}\nnot json\n'),
        )
        code = main(["serve", str(graph_path)])
        assert code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert [d["ok"] for d in lines] == [False, False]
        assert lines[0]["type"] == "ReproError"
        assert lines[1]["type"] == "JSONDecodeError"
