"""Statistical calibration of repaired sketches against the exact oracle.

The differential harness (``test_mutable_differential``) proves repair
is *bit-identical* to a cold rebuild; this module proves the rebuilt
distribution is the *right* one — that after edits, spread estimates
read off a repaired sketch are estimates of the **post-edit** influence
function, within the same δ=1e-9 Hoeffding gates the MC estimator paths
are held to in ``test_statistical``.

The RR-set estimator: with θ sets rooted at uniform targets,
``σ̂(S) = |T| · #{R : S ∩ R ≠ ∅} / θ`` has i.i.d. ``[0, |T|]``-range
per-set contributions, so ``|σ̂ − σ| ≤ |T|·sqrt(ln(2/δ)/(2θ))`` w.p.
``1 − δ``. The edit batches are chosen so the pre/post exact spreads
differ by *more* than twice that bound — a stale (unrepaired) sketch
provably fails the gate, which is asserted, so these tests have teeth:
they would have caught a repair that silently kept old coins.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.diffusion.exact import exact_spread
from repro.diffusion.monte_carlo import estimate_spread
from repro.engine import SamplingEngine
from repro.graphs.mutable import EdgeAdd, MutableTagGraph, TagSet
from repro.sketch.incremental import build_repairable_sketch

from tests.conftest import FIG9_SEEDS, FIG9_TARGETS

DELTA = 1e-9
THETA = 4000
ALL_TAGS = ("c1", "c2", "c3", "c4", "c5", "c6")

#: A deliberately violent batch: three strong edges collapsed to 0.05
#: and one brand-new high-probability edge C -> H. Shifts the exact
#: spread by far more than two Hoeffding bounds (asserted below).
SHIFT_EDITS = [
    TagSet(edge_id=3, tag="c5", prob=0.05),   # e4: B -> E, was 0.7
    TagSet(edge_id=6, tag="c4", prob=0.05),   # e7: B -> G, was 0.8
    TagSet(edge_id=7, tag="c3", prob=0.05),   # e8: D -> G, was 0.9
    TagSet(edge_id=8, tag="c6", prob=0.05),   # e9: A -> H, was 0.6
    EdgeAdd(src=2, dst=7, tag_probs={"c4": 0.9}),
]


def hoeffding_bound(range_width: float, n: int) -> float:
    return range_width * math.sqrt(math.log(2.0 / DELTA) / (2.0 * n))


def rr_spread(sketch, seeds) -> float:
    """Unbiased RR-coverage estimate of σ(seeds) for a *fixed* seed set.

    The greedy-selected estimate in ``TRSResult`` is biased upward by
    selection; evaluating an a-priori seed set keeps the per-set
    indicators i.i.d. so the Hoeffding gate applies exactly.
    """
    rr = sketch.rr
    mask = np.isin(rr.members, np.asarray(seeds, dtype=rr.members.dtype))
    indptr = rr.indptr
    covered = sum(
        bool(mask[s:e].any()) for s, e in zip(indptr[:-1], indptr[1:])
    )
    return sketch.num_targets * covered / sketch.theta


@pytest.mark.parametrize("mode", ["scalar", "bitparallel"])
def test_repaired_sketch_is_calibrated_to_post_edit_graph(fig9_graph, mode):
    bound = hoeffding_bound(len(FIG9_TARGETS), THETA)

    probs0 = fig9_graph.edge_probabilities(ALL_TAGS)
    sketch0 = build_repairable_sketch(
        fig9_graph, FIG9_TARGETS, probs0, THETA, seed=2024, mode=mode
    )
    exact_old = exact_spread(fig9_graph, FIG9_SEEDS, FIG9_TARGETS, ALL_TAGS)
    assert abs(rr_spread(sketch0, FIG9_SEEDS) - exact_old) <= bound

    mutable = MutableTagGraph(fig9_graph)
    mutable.apply(SHIFT_EDITS)
    snap = mutable.snapshot()
    probs1 = snap.edge_probabilities(ALL_TAGS)
    exact_new = exact_spread(snap, FIG9_SEEDS, FIG9_TARGETS, ALL_TAGS)

    # The batch moves the truth by more than two gates — so a sketch
    # that kept its pre-edit coins *cannot* pass the post-edit gate.
    assert abs(exact_new - exact_old) > 2.0 * bound
    assert abs(rr_spread(sketch0, FIG9_SEEDS) - exact_new) > bound

    repaired, stats = sketch0.repair(
        snap, probs1, mutable.dirty_edges(0)
    )
    # Partial repair, not a disguised full rebuild.
    assert 0 < stats["dirty_sets"] < THETA

    est = rr_spread(repaired, FIG9_SEEDS)
    assert abs(est - exact_new) <= bound, (
        f"{mode} repaired estimate {est:.4f} deviates from post-edit "
        f"exact {exact_new:.4f} by more than the δ={DELTA} bound "
        f"{bound:.4f}"
    )


@pytest.mark.parametrize("mode", ["scalar", "bitparallel"])
def test_calibration_survives_successive_epochs(fig9_graph, mode):
    """Three edit epochs, repairing incrementally each time; the sketch
    must stay inside the gate at *every* epoch (no error accumulation —
    guaranteed by bit-identity, gated here statistically)."""
    bound = hoeffding_bound(len(FIG9_TARGETS), THETA)
    batches = [
        [TagSet(edge_id=0, tag="c1", prob=0.15)],          # e1: A -> B
        [TagSet(edge_id=4, tag="c5", prob=0.1),            # e5: C -> E
         TagSet(edge_id=10, tag="c6", prob=0.15)],         # e11: E -> I
        [EdgeAdd(src=0, dst=8, tag_probs={"c1": 0.85})],   # new A -> I
    ]

    mutable = MutableTagGraph(fig9_graph)
    sketch = build_repairable_sketch(
        fig9_graph,
        FIG9_TARGETS,
        fig9_graph.edge_probabilities(ALL_TAGS),
        THETA,
        seed=77,
        mode=mode,
    )
    for batch in batches:
        before = mutable.epoch
        mutable.apply(batch)
        snap = mutable.snapshot()
        sketch, _ = sketch.repair(
            snap,
            snap.edge_probabilities(ALL_TAGS),
            mutable.dirty_edges(before),
        )
        exact = exact_spread(snap, FIG9_SEEDS, FIG9_TARGETS, ALL_TAGS)
        est = rr_spread(sketch, FIG9_SEEDS)
        assert abs(est - exact) <= bound, (
            f"epoch {mutable.epoch} ({mode}): {est:.4f} vs exact "
            f"{exact:.4f}, bound {bound:.4f}"
        )


def test_mc_estimators_agree_with_exact_on_edited_snapshot(fig9_graph):
    """Edited snapshots are first-class graphs for the MC paths too:
    scalar loop and vectorized engine both land inside the gate on a
    post-edit snapshot (tombstones, appended edge, rewritten probs)."""
    mutable = MutableTagGraph(fig9_graph)
    mutable.apply(SHIFT_EDITS)
    snap = mutable.snapshot()
    exact = exact_spread(snap, FIG9_SEEDS, FIG9_TARGETS, ALL_TAGS)
    bound = hoeffding_bound(len(FIG9_TARGETS), THETA)

    est_scalar = estimate_spread(
        snap, FIG9_SEEDS, FIG9_TARGETS, ALL_TAGS,
        num_samples=THETA, rng=12345,
    )
    assert abs(est_scalar - exact) <= bound

    with SamplingEngine(mode="vectorized", workers=1) as engine:
        est_engine = estimate_spread(
            snap, FIG9_SEEDS, FIG9_TARGETS, ALL_TAGS,
            num_samples=THETA, rng=12345, engine=engine,
        )
    assert abs(est_engine - exact) <= bound
