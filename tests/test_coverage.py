"""Tests for greedy max coverage over RR sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidQueryError
from repro.sketch import greedy_max_coverage


def _rr(*nodes):
    return np.array(nodes, dtype=np.int64)


class TestGreedyMaxCoverage:
    def test_picks_most_frequent(self):
        rr_sets = [_rr(0, 1), _rr(1, 2), _rr(1)]
        result = greedy_max_coverage(rr_sets, 1, 3)
        assert result.seeds == (1,)
        assert result.covered == 3
        assert result.fraction == pytest.approx(1.0)

    def test_marginal_accounting(self):
        rr_sets = [_rr(0, 1), _rr(1, 2), _rr(2)]
        result = greedy_max_coverage(rr_sets, 2, 3)
        assert result.seeds[0] in (1, 2)
        assert sum(result.marginal_covered) == result.covered

    def test_covers_all_with_enough_budget(self):
        rr_sets = [_rr(0), _rr(1), _rr(2)]
        result = greedy_max_coverage(rr_sets, 3, 3)
        assert result.covered == 3

    def test_budget_fills_with_zero_gain_nodes(self):
        rr_sets = [_rr(0)]
        result = greedy_max_coverage(rr_sets, 3, 5)
        assert len(result.seeds) == 3
        assert result.seeds[0] == 0
        assert result.marginal_covered[1:] == (0, 0)

    def test_candidate_restriction(self):
        rr_sets = [_rr(0, 1), _rr(0, 1), _rr(0)]
        result = greedy_max_coverage(
            rr_sets, 1, 2, candidate_nodes=np.array([1])
        )
        assert result.seeds == (1,)
        assert result.covered == 2

    def test_no_rr_sets(self):
        result = greedy_max_coverage([], 2, 3)
        assert result.total == 0
        assert result.fraction == 0.0
        assert len(result.seeds) == 2  # filler seeds still satisfy budget

    def test_spread_estimate(self):
        rr_sets = [_rr(0), _rr(0), _rr(1), _rr(2)]
        result = greedy_max_coverage(rr_sets, 1, 3)
        assert result.spread_estimate(100) == pytest.approx(50.0)

    def test_empty_rr_set_never_covered(self):
        rr_sets = [_rr(), _rr(0)]
        result = greedy_max_coverage(rr_sets, 1, 2)
        assert result.covered == 1

    def test_bad_budget(self):
        with pytest.raises(InvalidQueryError):
            greedy_max_coverage([_rr(0)], 0, 1)

    def test_bad_num_nodes(self):
        with pytest.raises(InvalidQueryError):
            greedy_max_coverage([_rr(0)], 1, 0)

    def test_greedy_order_is_by_marginal(self):
        # Node 0 covers 3 sets, node 1 covers 2 disjoint others.
        rr_sets = [_rr(0), _rr(0), _rr(0), _rr(1), _rr(1)]
        result = greedy_max_coverage(rr_sets, 2, 2)
        assert result.seeds == (0, 1)
        assert result.marginal_covered == (3, 2)
