"""Targeted tests for internal helpers that back the public algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import BaselineConfig, _next_seed, _next_tag
from repro.core.joint import _pad_tags
from repro.learning.estimator import _credit_count
from repro.graphs import TagGraphBuilder


def _graph():
    builder = TagGraphBuilder(6)
    builder.add(0, 3, "hot", 0.9)
    builder.add(1, 3, "hot", 0.8)
    builder.add(1, 4, "hot", 0.7)
    builder.add(2, 4, "warm", 0.5)
    builder.add(0, 5, "cold", 0.9)
    return builder.build()


class TestPadTags:
    def test_no_padding_needed(self):
        g = _graph()
        tags = _pad_tags(
            ("hot", "warm"), g, (3, 4), r=2, universe=g.tags
        )
        assert tags == ("hot", "warm")

    def test_truncates_overfull(self):
        g = _graph()
        tags = _pad_tags(
            ("cold", "hot", "warm"), g, (3, 4), r=2, universe=g.tags
        )
        assert len(tags) == 2

    def test_pads_with_frequency_ranked(self):
        g = _graph()
        tags = _pad_tags((), g, (3, 4), r=2, universe=g.tags)
        # 'hot' dominates target-incident mass, then 'warm'.
        assert tags == ("hot", "warm")

    def test_never_duplicates(self):
        g = _graph()
        tags = _pad_tags(("hot",), g, (3, 4), r=3, universe=g.tags)
        assert len(tags) == len(set(tags))

    def test_exhausted_universe(self):
        g = _graph()
        tags = _pad_tags(("hot",), g, (3, 4), r=5, universe=("hot",))
        assert tags == ("hot",)


class TestBaselineHelpers:
    def test_next_seed_prefers_influencer(self):
        g = _graph()
        cfg = BaselineConfig(rr_samples=500, eval_samples=40)
        rng = np.random.default_rng(0)
        seed = _next_seed(g, (3, 4), ("hot",), [], cfg, rng)
        # Node 1 reaches both targets under 'hot'.
        assert seed == 1

    def test_next_seed_excludes_current(self):
        g = _graph()
        cfg = BaselineConfig(rr_samples=500, eval_samples=40)
        rng = np.random.default_rng(0)
        seed = _next_seed(g, (3, 4), ("hot",), [1], cfg, rng)
        assert seed != 1

    def test_next_seed_all_covered(self):
        # Seeding the targets themselves covers every RR set: any
        # remaining candidate is acceptable, but none may crash.
        g = _graph()
        cfg = BaselineConfig(rr_samples=100, eval_samples=40)
        rng = np.random.default_rng(0)
        seed = _next_seed(g, (3,), ("hot",), [3], cfg, rng)
        assert seed != 3

    def test_next_tag_picks_best_marginal(self):
        g = _graph()
        cfg = BaselineConfig(rr_samples=100, eval_samples=200)
        rng = np.random.default_rng(0)
        tag = _next_tag(
            g, (3, 4), [0, 1], [], ["hot", "cold"], cfg, rng
        )
        assert tag == "hot"


class TestCreditCount:
    def test_single_credit(self):
        assert _credit_count([0.0], [1.0], window=5.0) == 1

    def test_outside_window(self):
        assert _credit_count([0.0], [10.0], window=5.0) == 0

    def test_equal_times_not_credited(self):
        assert _credit_count([1.0], [1.0], window=5.0) == 0

    def test_one_credit_per_destination_event(self):
        # Two src adoptions before one dst adoption: still one credit.
        assert _credit_count([0.0, 1.0], [2.0], window=5.0) == 1

    def test_multiple_episodes_accumulate(self):
        src = [0.0, 100.0, 200.0]
        dst = [1.0, 101.0, 300.0]
        assert _credit_count(src, dst, window=5.0) == 2

    def test_uses_latest_prior_adoption(self):
        # src at 0 and 50; dst at 52: within window of the 50 adoption
        # even though far from the first.
        assert _credit_count([0.0, 50.0], [52.0], window=5.0) == 1

    def test_unsorted_inputs(self):
        assert _credit_count([50.0, 0.0], [52.0, 1.0], window=5.0) == 2
