"""Tests for repro.utils: rng, timing, math helpers, validation."""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.exceptions import GraphConstructionError, InvalidQueryError
from repro.utils import (
    Timer,
    check_budget,
    check_node_ids,
    check_probability,
    check_tags_exist,
    ensure_rng,
    log_binomial,
    mean_std,
    quartiles,
    spawn_rngs,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(ensure_rng(0), 4)
        assert len(children) == 4

    def test_children_independent(self):
        children = spawn_rngs(ensure_rng(0), 2)
        assert not np.array_equal(children[0].random(8), children[1].random(8))

    def test_zero_children(self):
        assert spawn_rngs(ensure_rng(0), 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(ensure_rng(0), -1)

    def test_deterministic_given_parent_seed(self):
        a = [g.random() for g in spawn_rngs(ensure_rng(5), 3)]
        b = [g.random() for g in spawn_rngs(ensure_rng(5), 3)]
        assert a == b


class TestTimer:
    def test_measures_elapsed(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_accumulates_across_spans(self):
        timer = Timer()
        with timer:
            time.sleep(0.005)
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed > first

    def test_reset(self):
        timer = Timer()
        with timer:
            time.sleep(0.002)
        timer.reset()
        assert timer.elapsed == 0.0

    def test_open_span_counts(self):
        timer = Timer()
        timer.__enter__()
        time.sleep(0.002)
        assert timer.elapsed > 0.0
        timer.__exit__(None, None, None)


class TestLogBinomial:
    def test_small_exact(self):
        assert log_binomial(5, 2) == pytest.approx(math.log(10))

    def test_edges(self):
        assert log_binomial(7, 0) == pytest.approx(0.0)
        assert log_binomial(7, 7) == pytest.approx(0.0)

    def test_symmetry(self):
        assert log_binomial(30, 7) == pytest.approx(log_binomial(30, 23))

    def test_large_no_overflow(self):
        value = log_binomial(10**6, 100)
        assert math.isfinite(value) and value > 0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            log_binomial(3, 5)
        with pytest.raises(ValueError):
            log_binomial(3, -1)


class TestMeanStd:
    def test_basic(self):
        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(math.sqrt(2.0 / 3.0))

    def test_empty(self):
        assert mean_std([]) == (0.0, 0.0)

    def test_constant(self):
        mean, std = mean_std([4.0] * 10)
        assert (mean, std) == (4.0, 0.0)


class TestQuartiles:
    def test_five_points(self):
        q1, q2, q3 = quartiles([1, 2, 3, 4, 5])
        assert (q1, q2, q3) == (2.0, 3.0, 4.0)

    def test_interpolation(self):
        q1, q2, q3 = quartiles([1, 2, 3, 4])
        assert q2 == pytest.approx(2.5)
        assert q1 == pytest.approx(1.75)
        assert q3 == pytest.approx(3.25)

    def test_single_value(self):
        assert quartiles([7.0]) == (7.0, 7.0, 7.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quartiles([])

    def test_unsorted_input(self):
        assert quartiles([5, 1, 3, 2, 4]) == quartiles([1, 2, 3, 4, 5])


class TestValidation:
    def test_check_probability_accepts_valid(self):
        check_probability(0.5, context="x")
        check_probability(1.0, context="x")

    @pytest.mark.parametrize("value", [0.0, -0.1, 1.01])
    def test_check_probability_rejects(self, value):
        with pytest.raises(GraphConstructionError):
            check_probability(value, context="x")

    def test_check_node_ids_ok(self):
        check_node_ids([0, 4], 5, context="x")

    @pytest.mark.parametrize("node", [-1, 5])
    def test_check_node_ids_bad(self, node):
        with pytest.raises(InvalidQueryError):
            check_node_ids([node], 5, context="x")

    def test_check_budget_ok(self):
        check_budget(3, 5, what="seeds")

    def test_check_budget_nonpositive(self):
        with pytest.raises(InvalidQueryError):
            check_budget(0, 5, what="seeds")

    def test_check_budget_too_large(self):
        with pytest.raises(InvalidQueryError):
            check_budget(6, 5, what="seeds")

    def test_check_tags_exist_ok(self):
        check_tags_exist(["a"], {"a", "b"})

    def test_check_tags_exist_unknown(self):
        with pytest.raises(InvalidQueryError, match="unknown tags"):
            check_tags_exist(["z"], {"a", "b"})
