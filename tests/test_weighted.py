"""Tests for benefit-weighted targeted influence maximization."""

from __future__ import annotations

import pytest

from repro.core import estimate_weighted_spread, weighted_trs_select_seeds
from repro.exceptions import InvalidQueryError
from repro.graphs import TagGraphBuilder
from repro.sketch import SketchConfig

FAST = SketchConfig(pilot_samples=100, theta_min=300, theta_max=1500)


def _two_hub_graph():
    """Hub 0 → {2, 3}; hub 1 → {4}; all probability 1."""
    builder = TagGraphBuilder(5)
    builder.add(0, 2, "t", 1.0)
    builder.add(0, 3, "t", 1.0)
    builder.add(1, 4, "t", 1.0)
    return builder.build()


class TestEstimateWeightedSpread:
    def test_matches_unweighted_with_unit_benefits(self, line_graph):
        from repro.diffusion import estimate_spread

        weighted = estimate_weighted_spread(
            line_graph, [0], {2: 1.0, 3: 1.0}, ["a", "b", "c"],
            num_samples=3000, rng=0,
        )
        plain = estimate_spread(
            line_graph, [0], [2, 3], ["a", "b", "c"],
            num_samples=3000, rng=0,
        )
        assert weighted == pytest.approx(plain, abs=0.05)

    def test_scales_with_benefit(self, line_graph):
        low = estimate_weighted_spread(
            line_graph, [0], {1: 1.0}, ["a"], num_samples=3000, rng=0
        )
        high = estimate_weighted_spread(
            line_graph, [0], {1: 10.0}, ["a"], num_samples=3000, rng=0
        )
        assert high == pytest.approx(10 * low, rel=0.1)

    def test_empty_seeds(self, line_graph):
        assert estimate_weighted_spread(
            line_graph, [], {1: 2.0}, ["a"], rng=0
        ) == 0.0

    def test_empty_benefits_rejected(self, line_graph):
        with pytest.raises(InvalidQueryError):
            estimate_weighted_spread(line_graph, [0], {}, ["a"], rng=0)

    def test_nonpositive_benefit_rejected(self, line_graph):
        with pytest.raises(InvalidQueryError):
            estimate_weighted_spread(
                line_graph, [0], {1: 0.0}, ["a"], rng=0
            )


class TestWeightedTRS:
    def test_unit_benefits_pick_bigger_hub(self):
        g = _two_hub_graph()
        result = weighted_trs_select_seeds(
            g, {2: 1.0, 3: 1.0, 4: 1.0}, ["t"], 1, FAST, rng=0
        )
        assert result.seeds == (0,)  # hub 0 covers benefit 2 of 3

    def test_heavy_benefit_flips_choice(self):
        # Target 4 is worth more than 2 and 3 combined: hub 1 wins.
        g = _two_hub_graph()
        result = weighted_trs_select_seeds(
            g, {2: 1.0, 3: 1.0, 4: 5.0}, ["t"], 1, FAST, rng=0
        )
        assert result.seeds == (1,)

    def test_benefit_estimate_close_to_truth(self):
        g = _two_hub_graph()
        result = weighted_trs_select_seeds(
            g, {2: 1.0, 3: 1.0, 4: 5.0}, ["t"], 1, FAST, rng=0
        )
        # Hub 1 captures benefit 5 of total 7.
        assert result.estimated_benefit == pytest.approx(5.0, abs=0.4)

    def test_budget_two_takes_both_hubs(self):
        g = _two_hub_graph()
        result = weighted_trs_select_seeds(
            g, {2: 1.0, 3: 1.0, 4: 5.0}, ["t"], 2, FAST, rng=0
        )
        assert set(result.seeds) == {0, 1}
        assert result.estimated_benefit == pytest.approx(7.0, abs=0.4)

    def test_deterministic(self, small_yelp):
        members = small_yelp.community_members("vegas")[:20]
        benefits = {int(v): 1.0 + (i % 3) for i, v in enumerate(members)}
        tags = small_yelp.graph.tags[:4]
        a = weighted_trs_select_seeds(
            small_yelp.graph, benefits, tags, 3, FAST, rng=5
        )
        b = weighted_trs_select_seeds(
            small_yelp.graph, benefits, tags, 3, FAST, rng=5
        )
        assert a.seeds == b.seeds

    def test_bad_budget(self):
        with pytest.raises(InvalidQueryError):
            weighted_trs_select_seeds(
                _two_hub_graph(), {2: 1.0}, ["t"], 0, FAST, rng=0
            )
