"""Equivalence tests for the vectorized frontier-batched sampling engine.

Three layers of evidence, mirroring ROADMAP's "scalar path is the
correctness oracle" stance:

* *fixed-world* equivalence — with all coins removed (a deterministic
  edge mask), the vectorized traversals must return exactly the same
  node sets as the scalar ones, on every graph;
* *distributional* equivalence — with coins, vectorized estimates must
  converge to the exact possible-world oracle on enumerable graphs;
* *determinism* — the parallel driver must be bit-identical across
  worker counts for a fixed master seed, and the flat greedy coverage
  must reproduce the list-based greedy exactly (same seeds, same
  marginals, same tie-breaking).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import exact_spread, simulate_cascade
from repro.diffusion.monte_carlo import estimate_spread, target_mask
from repro.engine import (
    RRCollection,
    SamplingEngine,
    batched_cascade_counts,
    batched_rr_members,
    cascade_frontier,
    rr_fixed_frontier,
    rr_frontier,
)
from repro.engine.parallel import _shard_counts
from repro.graphs import TagGraphBuilder
from repro.sketch import greedy_max_coverage, rr_set_from_edge_mask
from repro.utils.validation import as_target_array

# ---------------------------------------------------------------------------
# Fixed-world equivalence: vectorized vs scalar traversal
# ---------------------------------------------------------------------------


def test_fixed_world_matches_scalar_on_yelp(small_yelp):
    graph = small_yelp.graph
    rng = np.random.default_rng(42)
    edge_probs = graph.edge_probabilities(list(graph.tags[:4]))
    for trial in range(10):
        mask = rng.random(graph.num_edges) < edge_probs
        root = int(rng.integers(graph.num_nodes))
        scalar = rr_set_from_edge_mask(graph, root, mask)
        vector = rr_fixed_frontier(graph, root, mask)
        assert set(scalar.tolist()) == set(vector.tolist())


def test_certain_world_cascade_matches_scalar(diamond_graph):
    # probability-1 edges: both cascade paths are deterministic.
    edge_probs = np.ones(diamond_graph.num_edges)
    scalar = simulate_cascade(diamond_graph, [0], edge_probs, rng=0)
    vector = cascade_frontier(diamond_graph, [0], edge_probs, rng=0)
    np.testing.assert_array_equal(scalar, vector)


def test_certain_world_batched_rr_members(line_graph):
    # All edges certain: every RR set is the full ancestor set.
    edge_probs = np.ones(line_graph.num_edges)
    roots = np.array([3, 2, 0], dtype=np.int64)
    members, indptr = batched_rr_members(line_graph, roots, edge_probs, rng=1)
    sets = [
        set(members[indptr[i]:indptr[i + 1]].tolist())
        for i in range(len(roots))
    ]
    assert sets == [{0, 1, 2, 3}, {0, 1, 2}, {0}]


def test_rr_frontier_root_always_member(small_yelp):
    graph = small_yelp.graph
    edge_probs = graph.edge_probabilities(list(graph.tags[:2]))
    for root in (0, 5, graph.num_nodes - 1):
        members = rr_frontier(graph, root, edge_probs, rng=root)
        assert root in members.tolist()
        assert len(set(members.tolist())) == members.size


# ---------------------------------------------------------------------------
# Distributional equivalence against the exact oracle
# ---------------------------------------------------------------------------


def test_engine_spread_converges_to_exact(fig4_graph):
    tags = ["c1", "c2", "c3"]
    exact = exact_spread(fig4_graph, [0, 3], [2, 5], tags)
    engine = SamplingEngine(mode="vectorized", workers=1, shard_size=256)
    value = estimate_spread(
        fig4_graph, [0, 3], [2, 5], tags,
        num_samples=20000, rng=11, engine=engine,
    )
    assert value == pytest.approx(exact, abs=0.05)


def test_batched_cascade_counts_converge(fig9_graph):
    tags = ["c1", "c2", "c3", "c4", "c5", "c6"]
    exact = exact_spread(fig9_graph, [0], [6, 7, 8], tags)
    edge_probs = fig9_graph.edge_probabilities(tags)
    counts = batched_cascade_counts(
        fig9_graph, np.array([0], dtype=np.int64), edge_probs,
        20000, np.array([6, 7, 8], dtype=np.int64), rng=5,
    )
    assert counts.size == 20000
    assert counts.mean() == pytest.approx(exact, abs=0.05)


def test_vectorized_rr_membership_rate_matches_scalar(line_graph):
    # P(0 ∈ RR(3)) = 0.5^3 on the all-tags line graph.
    edge_probs = line_graph.edge_probabilities(["a", "b", "c"])
    roots = np.full(20000, 3, dtype=np.int64)
    members, indptr = batched_rr_members(line_graph, roots, edge_probs, rng=3)
    hits = np.bincount(members, minlength=4)[0]
    assert hits / 20000 == pytest.approx(0.125, abs=0.02)


# ---------------------------------------------------------------------------
# RRCollection storage
# ---------------------------------------------------------------------------


def test_rr_collection_roundtrip():
    sets = [
        np.array([3, 1], dtype=np.int64),
        np.array([0], dtype=np.int64),
        np.array([2, 3, 4], dtype=np.int64),
    ]
    rr = RRCollection.from_sets(sets, num_nodes=5)
    assert len(rr) == 3
    assert rr.total_members == 6
    for got, want in zip(rr, sets):
        np.testing.assert_array_equal(got, want)
    np.testing.assert_array_equal(rr[1], sets[1])


def test_rr_collection_concat_and_truncate():
    a = RRCollection.from_sets([np.array([0, 1])], num_nodes=4)
    b = RRCollection.from_sets([np.array([2]), np.array([3, 0])], num_nodes=4)
    merged = RRCollection.concat([a, b])
    assert len(merged) == 3
    np.testing.assert_array_equal(merged[2], [3, 0])
    head = merged[:2]
    assert isinstance(head, RRCollection)
    assert len(head) == 2
    np.testing.assert_array_equal(head[1], [2])
    assert len(merged.truncated(10)) == 3  # clamps, never over-reads


def test_rr_collection_inverted_index():
    rr = RRCollection.from_sets(
        [np.array([1, 2]), np.array([2]), np.array([0, 2])], num_nodes=3
    )
    indptr, set_ids = rr.inverted()
    # node 2 appears in all three sets, node 0 only in set 2.
    assert set(set_ids[indptr[2]:indptr[3]].tolist()) == {0, 1, 2}
    assert set_ids[indptr[0]:indptr[1]].tolist() == [2]
    np.testing.assert_array_equal(rr.member_counts(), [1, 1, 3])


def test_rr_collection_empty():
    rr = RRCollection(
        np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64), 4
    )
    assert len(rr) == 0
    assert greedy_max_coverage(rr, 2, 4).covered == 0


# ---------------------------------------------------------------------------
# Flat greedy coverage == list greedy coverage (exact, incl. tie-breaks)
# ---------------------------------------------------------------------------

rr_set_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=5),
    min_size=1,
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(sets=rr_set_lists, k=st.integers(min_value=1, max_value=4))
def test_flat_greedy_matches_list_greedy(sets, k):
    arrays = [np.unique(np.array(s, dtype=np.int64)) for s in sets]
    flat = RRCollection.from_sets(arrays, num_nodes=8)
    want = greedy_max_coverage(arrays, k, 8)
    got = greedy_max_coverage(flat, k, 8)
    assert got.seeds == want.seeds
    assert got.covered == want.covered
    assert got.total == want.total
    assert got.marginal_covered == want.marginal_covered


def test_flat_greedy_respects_candidates():
    arrays = [np.array([0, 1]), np.array([1, 2]), np.array([1])]
    flat = RRCollection.from_sets(arrays, num_nodes=3)
    candidates = np.array([0, 2], dtype=np.int64)
    want = greedy_max_coverage(arrays, 2, 3, candidate_nodes=candidates)
    got = greedy_max_coverage(flat, 2, 3, candidate_nodes=candidates)
    assert got.seeds == want.seeds
    assert got.covered == want.covered


# ---------------------------------------------------------------------------
# Parallel determinism: identical results for any worker count
# ---------------------------------------------------------------------------


def _rr_signature(rr: RRCollection) -> tuple:
    return (
        rr.members.tobytes(),
        rr.indptr.tobytes(),
        rr.num_sets,
    )


@pytest.fixture(scope="module")
def worker_engines():
    """One serial and one 4-worker engine, shared across the module
    (process-pool startup is the expensive part)."""
    serial = SamplingEngine(mode="vectorized", workers=1, shard_size=16)
    pooled = SamplingEngine(mode="vectorized", workers=4, shard_size=16)
    yield serial, pooled
    serial.close()
    pooled.close()


def test_rr_sampling_identical_across_workers(small_yelp, worker_engines):
    graph = small_yelp.graph
    serial, pooled = worker_engines
    target_arr = as_target_array(range(0, 40), graph.num_nodes, context="t")
    edge_probs = graph.edge_probabilities(list(graph.tags[:3]))
    a = serial.sample_rr_sets(graph, target_arr, edge_probs, 100, rng=99)
    b = pooled.sample_rr_sets(graph, target_arr, edge_probs, 100, rng=99)
    assert _rr_signature(a) == _rr_signature(b)


def test_cascade_counts_identical_across_workers(small_yelp, worker_engines):
    graph = small_yelp.graph
    serial, pooled = worker_engines
    seed_arr = np.array([0, 7, 19], dtype=np.int64)
    target_arr = np.arange(30, dtype=np.int64)
    edge_probs = graph.edge_probabilities(list(graph.tags[:3]))
    a = serial.cascade_target_counts(
        graph, seed_arr, edge_probs, 100, target_arr, rng=123
    )
    b = pooled.cascade_target_counts(
        graph, seed_arr, edge_probs, 100, target_arr, rng=123
    )
    np.testing.assert_array_equal(a, b)


@settings(max_examples=5, deadline=None)
@given(master=st.integers(min_value=0, max_value=2**31 - 1))
def test_serial_parallel_identical_for_any_seed(
    small_yelp, worker_engines, master
):
    """The determinism contract, property-style: for any fixed master
    SeedSequence the serial and 4-worker drivers are bit-identical."""
    graph = small_yelp.graph
    serial, pooled = worker_engines
    target_arr = np.arange(25, dtype=np.int64)
    edge_probs = graph.edge_probabilities(list(graph.tags[:2]))
    rng_a = np.random.default_rng(np.random.SeedSequence(master))
    rng_b = np.random.default_rng(np.random.SeedSequence(master))
    a = serial.sample_rr_sets(graph, target_arr, edge_probs, 40, rng=rng_a)
    b = pooled.sample_rr_sets(graph, target_arr, edge_probs, 40, rng=rng_b)
    assert _rr_signature(a) == _rr_signature(b)


def test_shard_counts_partition():
    assert _shard_counts(0, 512) == []
    assert _shard_counts(100, 512) == [100]
    assert _shard_counts(1030, 512) == [512, 512, 6]
    assert sum(_shard_counts(9999, 128)) == 9999


def test_shard_layout_independent_of_workers():
    # The shard plan depends only on (total, shard_size) — never on the
    # worker count — which is what makes the contract possible at all.
    assert _shard_counts(1000, 64) == _shard_counts(1000, 64)


# ---------------------------------------------------------------------------
# Engine-threaded high-level APIs
# ---------------------------------------------------------------------------


def test_estimate_spread_accepts_precomputed_mask(fig9_graph):
    tags = ["c1", "c2", "c5"]
    mask = target_mask(fig9_graph, [6, 7, 8])
    a = estimate_spread(
        fig9_graph, [0], [6, 7, 8], tags, num_samples=500, rng=1
    )
    b = estimate_spread(
        fig9_graph, [0], None, tags, num_samples=500, rng=1,
        targets_mask=mask,
    )
    assert a == pytest.approx(b)


def test_scalar_mode_engine_matches_vectorized_distribution(fig4_graph):
    tags = ["c1", "c2", "c3"]
    exact = exact_spread(fig4_graph, [0, 3], [2, 5], tags)
    engine = SamplingEngine(mode="scalar", workers=1, shard_size=4096)
    value = estimate_spread(
        fig4_graph, [0, 3], [2, 5], tags,
        num_samples=8000, rng=2, engine=engine,
    )
    assert value == pytest.approx(exact, abs=0.07)


def test_find_seeds_with_sampler_all_engines(small_yelp):
    from repro import find_seeds

    graph = small_yelp.graph
    targets = list(range(0, 30))
    tags = list(graph.tags[:3])
    with SamplingEngine(mode="vectorized", workers=1) as engine:
        for algo in ("trs", "imm", "ltrs", "lltrs"):
            sel = find_seeds(
                graph, targets, tags, 3, engine=algo, rng=17, sampler=engine
            )
            assert len(sel.seeds) == 3
            assert sel.estimated_spread >= 0.0
