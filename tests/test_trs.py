"""Tests for TRS — targeted reverse sketching seed selection."""

from __future__ import annotations

import pytest

from repro.diffusion import exact_spread
from repro.exceptions import InvalidQueryError
from repro.graphs import TagGraphBuilder
from repro.sketch import SketchConfig, trs_select_seeds


def _star_graph():
    """Node 0 → {1..5} with probability 1; node 6 isolated."""
    builder = TagGraphBuilder(7)
    for v in range(1, 6):
        builder.add(0, v, "t", 1.0)
    return builder.build()


FAST = SketchConfig(pilot_samples=100, theta_min=100, theta_max=2000)


class TestTRS:
    def test_finds_obvious_hub(self):
        g = _star_graph()
        result = trs_select_seeds(g, [1, 2, 3, 4, 5], ["t"], 1, FAST, rng=0)
        assert result.seeds == (0,)
        assert result.estimated_spread == pytest.approx(5.0, abs=0.01)

    def test_respects_budget(self, small_yelp):
        from repro.datasets import community_targets

        targets = community_targets(small_yelp, "vegas", size=30, rng=0)
        result = trs_select_seeds(
            small_yelp.graph, targets, small_yelp.graph.tags[:5], 4,
            FAST, rng=0,
        )
        assert len(result.seeds) == 4
        assert len(set(result.seeds)) == 4

    def test_estimate_close_to_exact(self, fig9_graph):
        # Fix tags c4+c5; the best single seed and its exact spread are
        # computable by enumeration.
        tags = ["c4", "c5"]
        result = trs_select_seeds(
            fig9_graph, [6, 7, 8], tags, 1,
            SketchConfig(pilot_samples=500, theta_min=4000, theta_max=8000),
            rng=0,
        )
        exact = exact_spread(fig9_graph, result.seeds, [6, 7, 8], tags)
        assert result.estimated_spread == pytest.approx(exact, abs=0.15)

    def test_spread_fraction(self):
        g = _star_graph()
        result = trs_select_seeds(g, [1, 2, 3, 4, 5], ["t"], 1, FAST, rng=0)
        assert result.spread_fraction(5) == pytest.approx(1.0, abs=0.01)
        assert result.spread_fraction(0) == 0.0

    def test_theta_recorded(self):
        g = _star_graph()
        result = trs_select_seeds(g, [1, 2], ["t"], 1, FAST, rng=0)
        assert FAST.theta_min <= result.theta <= FAST.theta_max

    def test_deterministic_with_seed(self, small_yelp):
        from repro.datasets import community_targets

        targets = community_targets(small_yelp, "vegas", size=20, rng=0)
        tags = small_yelp.graph.tags[:4]
        a = trs_select_seeds(small_yelp.graph, targets, tags, 3, FAST, rng=7)
        b = trs_select_seeds(small_yelp.graph, targets, tags, 3, FAST, rng=7)
        assert a.seeds == b.seeds

    def test_bad_budget_raises(self):
        g = _star_graph()
        with pytest.raises(InvalidQueryError):
            trs_select_seeds(g, [1], ["t"], 0, FAST, rng=0)

    def test_unknown_tag_raises(self):
        g = _star_graph()
        with pytest.raises(InvalidQueryError):
            trs_select_seeds(g, [1], ["nope"], 1, FAST, rng=0)

    def test_more_seeds_never_hurt(self, small_yelp):
        from repro.datasets import community_targets

        targets = community_targets(small_yelp, "vegas", size=30, rng=0)
        tags = small_yelp.graph.tags[:5]
        one = trs_select_seeds(small_yelp.graph, targets, tags, 1, FAST, rng=3)
        five = trs_select_seeds(small_yelp.graph, targets, tags, 5, FAST, rng=3)
        assert five.estimated_spread >= one.estimated_spread - 0.5
