"""Load-generator suite: synthesis determinism, exact accounting, report.

The traffic generator's claims:

* The synthesized query sequence is a pure function of the
  :class:`LoadSpec` seed (replayable load tests), Zipf-shaped over tags
  and overlapping target sets (so the asset cache is actually
  exercised), and respects the configured class/op mixes.
* ``run_rate`` accounts every issued query in exactly one of
  done / degraded / rejected / errors — in open *and* closed loop.
* ``capacity_report`` emits the ``repro.bench.load/1`` document that
  ``scripts/check_bench.py`` gates in CI.
* ``replay_ops_from_events`` lifts an (op, class) sequence from a
  ``--events-out`` JSONL, skipping torn lines.
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.core.joint import JointConfig
from repro.exceptions import ConfigurationError
from repro.serve import CampaignServer
from repro.serve.loadgen import (
    LOAD_SCHEMA,
    LoadSpec,
    QuerySpec,
    RateResult,
    capacity_report,
    replay_ops_from_events,
    run_rate,
    synthesize_queries,
)
from repro.sketch.theta import SketchConfig

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
from check_bench import check_load, detect_kind  # noqa: E402

FAST_SKETCH = SketchConfig(theta_max=1_000, pilot_samples=50)

#: Small, fast workload over the 9-node fig9 graph.
TINY = LoadSpec(
    seed=0,
    queries_per_rate=12,
    rates=(200.0,),
    target_size=4,
    target_pool=3,
    spread_samples=20,
    slo_p95_ms=60_000.0,  # generous: this suite tests plumbing, not perf
)


def _server(graph, **kwargs):
    kwargs.setdefault("config", JointConfig(sketch=FAST_SKETCH))
    kwargs.setdefault("pool_size", 4)
    return CampaignServer(graph, **kwargs)


class TestSynthesis:
    def test_deterministic_in_seed(self, fig9_graph):
        a = synthesize_queries(fig9_graph, TINY)
        b = synthesize_queries(fig9_graph, TINY)
        assert a == b
        different = synthesize_queries(
            fig9_graph, LoadSpec(**{**TINY.__dict__, "seed": 1})
        )
        assert a != different

    def test_respects_mixes_and_shape(self, fig9_graph):
        spec = LoadSpec(
            seed=3, queries_per_rate=200, rates=(1.0,),
            class_mix=(("interactive", 1.0),),
            op_mix=(("find_seeds", 1.0),),
            tags_per_query=2, target_size=4,
        )
        queries = synthesize_queries(fig9_graph, spec)
        assert len(queries) == 200
        assert {q.qos_class for q in queries} == {"interactive"}
        assert {q.op for q in queries} == {"find_seeds"}
        for q in queries:
            kwargs = q.kwargs()
            assert len(kwargs["tags"]) == 2
            assert len(set(kwargs["tags"])) == 2
            assert all(0 <= t < 9 for t in kwargs["targets"])
            # Interactive queries carry the SLO-derived deadline.
            assert q.deadline == pytest.approx(
                spec.interactive_deadline_factor * spec.slo_p95_ms / 1000.0
            )

    def test_zipf_head_is_hot(self, fig9_graph):
        """Rank-0 tag dominates: the workload is genuinely skewed."""
        spec = LoadSpec(
            seed=0, queries_per_rate=400, rates=(1.0,),
            zipf_s=1.2, tags_per_query=1,
        )
        queries = synthesize_queries(fig9_graph, spec)
        counts = Counter(
            q.kwargs()["tags"][0] for q in queries
            if "tags" in q.kwargs()
        )
        hottest = counts.most_common(1)[0][1]
        assert hottest > len(queries) / 4  # >> uniform share (1/6)

    def test_target_sets_overlap(self, fig9_graph):
        spec = LoadSpec(
            seed=0, queries_per_rate=50, rates=(1.0,),
            target_size=6, target_pool=4, target_overlap=0.5,
        )
        queries = synthesize_queries(fig9_graph, spec)
        distinct = {
            q.kwargs()["targets"] for q in queries
            if "targets" in q.kwargs()
        }
        # Draws come from a small pool → few distinct digests, and the
        # shared core makes every pair overlap.
        assert len(distinct) <= spec.target_pool
        sets = [set(t) for t in distinct]
        for i, a in enumerate(sets):
            for b in sets[i + 1:]:
                assert a & b

    def test_ops_pin_replays_sequence(self, fig9_graph):
        ops = [("spread", "batch"), ("find_seeds", "best_effort")]
        queries = synthesize_queries(fig9_graph, TINY, count=6, ops=ops)
        assert [(q.op, q.qos_class) for q in queries] == ops * 3

    @pytest.mark.parametrize("kwargs", [
        {"queries_per_rate": 0},
        {"rates": ()},
        {"rates": (0.0,)},
        {"class_mix": (("vip", 1.0),)},
        {"op_mix": (("mine_bitcoin", 1.0),)},
        {"target_overlap": 1.5},
    ])
    def test_spec_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoadSpec(**kwargs)


class TestRunRate:
    def _assert_exact(self, result: RateResult, n: int) -> None:
        assert result.issued == n
        accounted = (
            result.done + result.degraded + result.rejected_total
            + result.errors
        )
        assert accounted == n

    def test_open_loop_accounts_every_query(self, fig9_graph):
        queries = synthesize_queries(fig9_graph, TINY)
        with _server(fig9_graph) as server:
            result = run_rate(server, queries, rate=200.0, open_loop=True)
        self._assert_exact(result, len(queries))
        assert result.errors == 0
        assert result.elapsed_s > 0
        # Completed queries recorded client-observed latencies.
        recorded = sum(len(v) for v in result.latencies_ms.values())
        assert recorded == result.done + result.degraded

    def test_closed_loop_accounts_every_query(self, fig9_graph):
        queries = synthesize_queries(fig9_graph, TINY)
        with _server(fig9_graph) as server:
            result = run_rate(
                server, queries, rate=200.0, open_loop=False,
                concurrency=4,
            )
        self._assert_exact(result, len(queries))
        assert result.errors == 0

    def test_overload_ends_in_clean_rejections(self, fig9_graph):
        """Past capacity every extra query is rejected, never lost."""
        queries = synthesize_queries(
            fig9_graph,
            LoadSpec(**{**TINY.__dict__, "queries_per_rate": 30}),
        )
        with _server(fig9_graph, pool_size=1, queue_capacity=2) as server:
            result = run_rate(server, queries, rate=500.0, open_loop=True)
        self._assert_exact(result, len(queries))
        assert result.errors == 0
        assert result.rejected_total > 0
        assert set(result.rejected) <= {
            "overloaded", "deadline", "shed", "breaker_open", "rejected",
        }

    def test_as_row_shape(self, fig9_graph):
        queries = synthesize_queries(fig9_graph, TINY)
        with _server(fig9_graph) as server:
            row = run_rate(server, queries, rate=200.0).as_row()
        assert row["accounted"] == row["issued"]
        for name in ("interactive", "batch", "best_effort"):
            assert f"p95_ms.{name}" in row
        assert row["rate_qps"] == 200.0
        assert row["achieved_qps"] is not None


class TestCapacityReport:
    def test_report_schema_and_gate(self, fig9_graph, tmp_path):
        spec = LoadSpec(**{**TINY.__dict__, "rates": (100.0, 200.0)})

        def make_server():
            return _server(fig9_graph)

        report = capacity_report(make_server, fig9_graph, spec)
        assert report["schema"] == LOAD_SCHEMA
        assert len(report["rows"]) == 2
        for row in report["rows"]:
            assert row["accounted"] == row["issued"] > 0
            assert "slo_ok" in row and "interactive_reject_frac" in row
        # The generous SLO makes every swept rate sustainable.
        assert report["max_sustainable_qps"] == 200.0
        # Round-trip through the CI gate.
        path = tmp_path / "BENCH_load.json"
        path.write_text(json.dumps(report), encoding="utf-8")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert detect_kind(payload) == "load"
        assert check_load(payload) == []

    def test_gate_rejects_broken_accounting(self):
        payload = {
            "schema": LOAD_SCHEMA,
            "rows": [{
                "rate_qps": 4.0, "issued": 10, "accounted": 9,
                "errors": 0, "p95_ms.interactive": 1.0,
                "p95_ms.batch": 1.0, "p95_ms.best_effort": 1.0,
            }],
        }
        failures = check_load(payload)
        assert any("accounted" in f for f in failures)

    def test_gate_rejects_raw_errors(self):
        payload = {
            "schema": LOAD_SCHEMA,
            "rows": [{
                "rate_qps": 4.0, "issued": 10, "accounted": 10,
                "errors": 2, "p95_ms.interactive": 1.0,
                "p95_ms.batch": 1.0, "p95_ms.best_effort": 1.0,
            }],
        }
        assert any("errors" in f for f in check_load(payload))
        # A tolerance can be opted into explicitly.
        assert not any(
            "errors" in f
            for f in check_load(payload, max_error_frac=0.2)
        )


class TestReplay:
    def test_replay_from_events_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [
            json.dumps({"kind": "query.admitted", "attrs": {
                "op": "find_seeds", "qos_class": "batch"}}),
            json.dumps({"kind": "query.done", "attrs": {"ok": True}}),
            json.dumps({"kind": "query.admitted", "attrs": {
                "op": "spread", "qos_class": "interactive"}}),
            json.dumps({"kind": "query.admitted", "attrs": {
                "op": "spread", "qos_class": "vip"}}),  # unknown class
            '{"kind": "query.admitted", "attrs": {"op": "find',  # torn
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        ops = replay_ops_from_events(path)
        assert ops == [
            ("find_seeds", "batch"),
            ("spread", "interactive"),
            ("spread", "interactive"),  # unknown class normalized
        ]

    def test_replay_empty_file_is_an_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            replay_ops_from_events(path)

    def test_replayed_ops_drive_the_report(self, fig9_graph, tmp_path):
        events = tmp_path / "events.jsonl"
        events.write_text(
            json.dumps({"kind": "query.admitted", "attrs": {
                "op": "find_seeds", "qos_class": "interactive"}}) + "\n",
            encoding="utf-8",
        )
        ops = replay_ops_from_events(events)
        spec = LoadSpec(**{**TINY.__dict__, "queries_per_rate": 6})
        report = capacity_report(
            lambda: _server(fig9_graph), fig9_graph, spec,
            replay_ops=ops,
        )
        assert report["replayed"] is True
        assert report["rows"][0]["issued"] == 6


def test_queryspec_kwargs_round_trip():
    spec = QuerySpec(
        op="find_seeds", qos_class="batch",
        args=(("targets", (1, 2)), ("k", 2)),
    )
    assert spec.kwargs() == {"targets": (1, 2), "k": 2}
