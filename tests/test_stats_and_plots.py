"""Tests for graph statistics and terminal plots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sparkline, trajectory_chart
from repro.graphs import TagGraphBuilder, graph_stats
from repro.graphs.stats import _gini


class TestGraphStats:
    def test_basic_counts(self, diamond_graph):
        stats = graph_stats(diamond_graph)
        assert stats.num_nodes == 4
        assert stats.num_edges == 4
        assert stats.num_tags == 3
        assert stats.mean_out_degree == pytest.approx(1.0)

    def test_probability_moments(self, line_graph):
        stats = graph_stats(line_graph)
        assert stats.prob_mean == pytest.approx(0.5)
        assert stats.prob_std == pytest.approx(0.0)
        assert stats.prob_quartiles == (0.5, 0.5, 0.5)

    def test_tags_per_edge(self, diamond_graph):
        # 4 edges, 5 (edge, tag) assignments.
        stats = graph_stats(diamond_graph)
        assert stats.tags_per_edge_mean == pytest.approx(1.25)

    def test_hub_detection(self):
        builder = TagGraphBuilder(10)
        for u in range(1, 10):
            builder.add(u, 0, "t", 0.5)  # node 0 is a pure hub
        stats = graph_stats(builder.build())
        assert stats.max_in_degree == 9
        assert stats.degree_gini > 0.8

    def test_uniform_degrees_low_gini(self):
        builder = TagGraphBuilder(6)
        for u in range(6):
            builder.add(u, (u + 1) % 6, "t", 0.5)  # directed cycle
        stats = graph_stats(builder.build())
        assert stats.degree_gini == pytest.approx(0.0, abs=1e-9)

    def test_empty_graph(self):
        stats = graph_stats(TagGraphBuilder(3).build())
        assert stats.num_edges == 0
        assert stats.prob_mean == 0.0
        assert stats.tag_mass_top_share == 0.0

    def test_tag_skew_detected(self):
        builder = TagGraphBuilder(30)
        # Tag 'big' carries 20 strong assignments; 9 tags carry 1 weak each.
        for u in range(20):
            builder.add(u, u + 1, "big", 0.9)
        for i in range(9):
            builder.add(20 + i, 21 + i, f"small-{i}", 0.1)
        stats = graph_stats(builder.build())
        assert stats.tag_mass_top_share > 0.9

    def test_synthetic_datasets_have_hubs_and_skew(self, small_yelp):
        stats = graph_stats(small_yelp.graph)
        assert stats.degree_gini > 0.3
        assert stats.tag_mass_top_share > 0.1


class TestGini:
    def test_empty(self):
        assert _gini(np.array([])) == 0.0

    def test_uniform(self):
        assert _gini(np.full(10, 5.0)) == pytest.approx(0.0, abs=1e-9)

    def test_extreme(self):
        values = np.zeros(100)
        values[0] = 1.0
        assert _gini(values) > 0.95


class TestSparkline:
    def test_shape(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_input_monotone_output(self):
        bars = sparkline([1, 2, 4, 8, 16])
        assert list(bars) == sorted(bars, key="▁▂▃▄▅▆▇█".index)


class TestTrajectoryChart:
    def test_shared_scale(self):
        chart = trajectory_chart({"a": [0, 10], "b": [5, 5]})
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a")
        assert "10.0" in lines[0]
        # b's values sit mid-scale: not the lowest block.
        assert "▁" not in lines[1].split()[1]

    def test_empty(self):
        assert trajectory_chart({}) == ""
        assert trajectory_chart({"a": []}) == ""

    def test_width_truncation(self):
        chart = trajectory_chart({"a": list(range(100))}, width=10)
        bar = chart.split()[1]
        assert len(bar) == 10
