"""Tests for the two-step path-set spread evaluator (Section 4.4)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidQueryError
from repro.tags import (
    PathSpreadEvaluator,
    TagSelectionConfig,
    collect_paths,
)
from tests.conftest import FIG9_SEEDS, FIG9_TARGETS


@pytest.fixture
def fig9_setup(fig9_graph):
    cfg = TagSelectionConfig(per_pair_paths=10, prob_floor=0.0)
    paths = collect_paths(fig9_graph, FIG9_SEEDS, FIG9_TARGETS, cfg, rng=0)
    index_of = {p.edge_ids: i for i, p in enumerate(paths)}
    return fig9_graph, paths, index_of


def _evaluator(graph, paths, mode="exact", **kwargs):
    cfg = TagSelectionConfig(
        per_pair_paths=10, prob_floor=0.0, evaluator_mode=mode, **kwargs
    )
    return PathSpreadEvaluator(
        graph, FIG9_SEEDS, FIG9_TARGETS, paths, cfg, rng=0
    )


class TestExactMode:
    def test_single_path_e3e8(self, fig9_setup):
        graph, paths, idx = fig9_setup
        ev = _evaluator(graph, paths)
        assert ev.spread([idx[(2, 7)]]) == pytest.approx(0.81)

    def test_example4_first_batch(self, fig9_setup):
        # σ(S, T, Des P(c4,c5)) = {e4e10, e5e10, e7, e6e12} ≈ 2.21.
        graph, paths, idx = fig9_setup
        ev = _evaluator(graph, paths)
        active = [idx[(3, 9)], idx[(4, 9)], idx[(6,)], idx[(5, 11)]]
        expected = 0.8 * (1 - 0.3 * 0.1) + 0.9 * 0.7 + 0.8
        assert ev.spread(active) == pytest.approx(expected)  # ≈ 2.206

    def test_example4_final_selection(self, fig9_setup):
        # Tags {c4, c5, c6} activate 6 pruned paths; spread ≈ 2.61.
        graph, paths, idx = fig9_setup
        ev = _evaluator(graph, paths)
        active = [
            idx[(3, 9)], idx[(4, 9)], idx[(6,)], idx[(5, 11)],
            idx[(8,)], idx[(3, 10)], idx[(4, 10)],
        ]
        # G: e7 = 0.8; H: e9 ∨ (e10 ∧ (e4 ∨ e5)); I: (e11 ∧ (e4 ∨ e5)) ∨ e6e12.
        # The paper reports ≈2.61 from its explicit path list (which
        # omits e4e11); edge-level reachability also credits e4→e11 and
        # gives 2.627 — the same selection, 0.02 apart.
        p_h = 1 - (1 - 0.6) * (1 - 0.8 * (1 - 0.3 * 0.1))
        p_i = 1 - (1 - 0.8 * (1 - 0.3 * 0.1)) * (1 - 0.63)
        expected = 0.8 + p_h + p_i
        assert ev.spread(active) == pytest.approx(expected)
        assert expected == pytest.approx(2.61, abs=0.02)

    def test_individual_selection_spread(self, fig9_setup):
        # {e3e8, e6e12} = 0.81 + 0.63 = 1.44 (Example 3's outcome).
        graph, paths, idx = fig9_setup
        ev = _evaluator(graph, paths)
        assert ev.spread([idx[(2, 7)], idx[(5, 11)]]) == pytest.approx(1.44)

    def test_empty_active_set(self, fig9_setup):
        graph, paths, _ = fig9_setup
        ev = _evaluator(graph, paths)
        assert ev.spread([]) == 0.0

    def test_shared_edge_coins_correlated(self, fig9_setup):
        # e4e10 and e5e10 share e10: spread is NOT the independent sum.
        graph, paths, idx = fig9_setup
        ev = _evaluator(graph, paths)
        joint = ev.spread([idx[(3, 9)], idx[(4, 9)]])
        assert joint == pytest.approx(0.8 * (1 - 0.3 * 0.1))
        independent_sum = 0.56 + 0.72
        assert joint < independent_sum


class TestMCMode:
    def test_matches_exact(self, fig9_setup):
        graph, paths, idx = fig9_setup
        exact = _evaluator(graph, paths)
        mc = _evaluator(graph, paths, mode="mc", mc_samples=6000)
        active = [idx[(3, 9)], idx[(4, 9)], idx[(6,)], idx[(5, 11)]]
        assert mc.spread(active) == pytest.approx(
            exact.spread(active), abs=0.08
        )


class TestRRMode:
    def test_matches_exact(self, fig9_setup):
        graph, paths, idx = fig9_setup
        exact = _evaluator(graph, paths)
        rr = _evaluator(graph, paths, mode="rr", rr_theta=30_000)
        active = [idx[(3, 9)], idx[(4, 9)], idx[(6,)], idx[(5, 11)]]
        assert rr.spread(active) == pytest.approx(
            exact.spread(active), abs=0.1
        )

    def test_monotone_in_path_inclusion(self, fig9_setup):
        graph, paths, idx = fig9_setup
        rr = _evaluator(graph, paths, mode="rr", rr_theta=2000)
        few = rr.spread([idx[(6,)]])
        more = rr.spread([idx[(6,)], idx[(8,)]])
        assert more >= few

    def test_mode_stays_rr(self, fig9_setup):
        graph, paths, idx = fig9_setup
        rr = _evaluator(graph, paths, mode="rr")
        rr.spread([idx[(6,)]])
        assert rr.mode == "rr"


class TestAutoSwitch:
    def test_switches_after_threshold(self, fig9_setup):
        graph, paths, idx = fig9_setup
        cfg = TagSelectionConfig(
            per_pair_paths=10, prob_floor=0.0, evaluator_mode="auto",
            opt_prime_ratio=0.2, exact_edge_limit=14,
        )
        ev = PathSpreadEvaluator(
            graph, FIG9_SEEDS, FIG9_TARGETS, paths, cfg, rng=0
        )
        assert ev.mode == "cascade"
        # 0.81 spread > 0.2 * 3 targets = 0.6 → switch.
        ev.spread([idx[(2, 7)]])
        assert ev.mode == "rr"

    def test_no_switch_below_threshold(self, fig9_setup):
        graph, paths, idx = fig9_setup
        cfg = TagSelectionConfig(
            per_pair_paths=10, prob_floor=0.0, evaluator_mode="auto",
            opt_prime_ratio=0.9,
        )
        ev = PathSpreadEvaluator(
            graph, FIG9_SEEDS, FIG9_TARGETS, paths, cfg, rng=0
        )
        ev.spread([idx[(2, 7)]])  # 0.81 < 2.7
        assert ev.mode == "cascade"


class TestValidation:
    def test_bad_path_index(self, fig9_setup):
        graph, paths, _ = fig9_setup
        ev = _evaluator(graph, paths)
        with pytest.raises(InvalidQueryError):
            ev.spread([999])

    def test_empty_targets_rejected(self, fig9_setup):
        graph, paths, _ = fig9_setup
        with pytest.raises(InvalidQueryError):
            PathSpreadEvaluator(graph, FIG9_SEEDS, [], paths, rng=0)

    def test_evaluation_counter(self, fig9_setup):
        graph, paths, idx = fig9_setup
        ev = _evaluator(graph, paths)
        ev.spread([idx[(6,)]])
        ev.spread([idx[(8,)]])
        assert ev.evaluations == 2

    def test_num_paths_and_targets(self, fig9_setup):
        graph, paths, _ = fig9_setup
        ev = _evaluator(graph, paths)
        assert ev.num_paths == len(paths)
        assert ev.num_targets == 3


class TestEdgeProbAggregation:
    def test_repeated_edge_multiple_tags(self, fig9_graph):
        # Two synthetic paths that share edge e4 under different tag
        # choices would aggregate; on Figure 9 each edge has one tag,
        # so build a dedicated evaluator with a two-tag edge.
        from repro.graphs import TagGraphBuilder
        from repro.tags import TagPath

        builder = TagGraphBuilder(3)
        builder.add(0, 1, "x", 0.5)
        builder.add(0, 1, "y", 0.5)
        builder.add(1, 2, "z", 1.0)
        g = builder.build()
        paths = [
            TagPath((0, 1, 2), (0, 1), ("x", "z"), 0.5),
            TagPath((0, 1, 2), (0, 1), ("y", "z"), 0.5),
        ]
        cfg = TagSelectionConfig(evaluator_mode="exact", prob_floor=0.0)
        ev = PathSpreadEvaluator(g, [0], [2], paths, cfg, rng=0)
        # One path active: P = 0.5; both active: edge (0,1) aggregates
        # to 1 - 0.5·0.5 = 0.75.
        assert ev.spread([0]) == pytest.approx(0.5)
        assert ev.spread([0, 1]) == pytest.approx(0.75)

    def test_forced_mc_mode_agrees_with_exact(self, fig9_setup):
        graph, paths, idx = fig9_setup
        exact = _evaluator(graph, paths)
        mc = _evaluator(graph, paths, mode="mc", mc_samples=8000)
        single = [idx[(6,)]]
        assert mc.spread(single) == pytest.approx(
            exact.spread(single), abs=0.05
        )

    def test_rr_theta_controls_precision(self, fig9_setup):
        graph, paths, idx = fig9_setup
        loose = _evaluator(graph, paths, mode="rr", rr_theta=50)
        tight = _evaluator(graph, paths, mode="rr", rr_theta=50_000)
        truth = _evaluator(graph, paths).spread([idx[(2, 7)]])
        tight_err = abs(tight.spread([idx[(2, 7)]]) - truth)
        assert tight_err <= 0.1
