"""Property-based tests for the LT / MIA / weighted extensions."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import (
    lt_edge_weights,
    mia_spread,
    sample_live_edges,
    simulate_lt_cascade,
)
from repro.graphs import TagGraphBuilder
from repro.tags.paths import TagSelectionConfig, top_paths

TAGS = ("t0", "t1", "t2")


@st.composite
def tagged_graphs(draw, max_nodes=7, max_assignments=10):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    count = draw(st.integers(min_value=0, max_value=max_assignments))
    builder = TagGraphBuilder(n)
    used = set()
    for _ in range(count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        tag = draw(st.sampled_from(TAGS))
        if u == v or (u, v, tag) in used:
            continue
        used.add((u, v, tag))
        prob = draw(st.floats(min_value=0.05, max_value=1.0))
        builder.add(u, v, tag, prob)
    return builder.build()


@given(tagged_graphs())
@settings(max_examples=40, deadline=None)
def test_lt_weights_per_node_capacity(graph):
    tags = [t for t in TAGS if graph.has_tag(t)]
    weights = lt_edge_weights(graph, tags)
    incoming = np.zeros(graph.num_nodes)
    np.add.at(incoming, graph.dst, weights)
    assert (incoming <= 1.0 + 1e-9).all()
    assert (weights >= 0.0).all()


@given(tagged_graphs(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_live_edge_world_is_functional(graph, seed):
    tags = [t for t in TAGS if graph.has_tag(t)]
    weights = lt_edge_weights(graph, tags)
    mask = sample_live_edges(graph, weights, rng=np.random.default_rng(seed))
    per_node = np.zeros(graph.num_nodes, dtype=np.int64)
    np.add.at(per_node, graph.dst[np.flatnonzero(mask)], 1)
    assert per_node.max(initial=0) <= 1


@given(tagged_graphs(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_lt_cascade_contains_seeds_and_reachable_only(graph, seed):
    tags = [t for t in TAGS if graph.has_tag(t)]
    weights = lt_edge_weights(graph, tags)
    active = simulate_lt_cascade(
        graph, [0], weights, rng=np.random.default_rng(seed)
    )
    assert active[0]
    reachable = {0}
    frontier = [0]
    while frontier:
        u = frontier.pop()
        for v in graph.out_neighbors(u).tolist():
            if v not in reachable:
                reachable.add(v)
                frontier.append(v)
    assert set(np.flatnonzero(active).tolist()) <= reachable


@given(tagged_graphs(), st.data())
@settings(max_examples=30, deadline=None)
def test_mia_spread_bounds(graph, data):
    tags = [t for t in TAGS if graph.has_tag(t)]
    seeds = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.num_nodes - 1),
            min_size=1, max_size=2, unique=True,
        )
    )
    targets = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.num_nodes - 1),
            min_size=1, max_size=3, unique=True,
        )
    )
    value = mia_spread(graph, seeds, targets, tags, theta=1e-9)
    assert -1e-9 <= value <= len(targets) + 1e-9
    assert value >= len(set(seeds) & set(targets)) - 1e-9


@given(tagged_graphs(), st.data())
@settings(max_examples=30, deadline=None)
def test_top_paths_order_and_simplicity(graph, data):
    source = data.draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    target = data.draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    cfg = TagSelectionConfig(per_pair_paths=5, prob_floor=0.0)
    paths = top_paths(graph, source, target, 5, config=cfg)
    probs = [p.probability for p in paths]
    assert probs == sorted(probs, reverse=True)
    for path in paths:
        assert path.source == source
        assert path.target == target
        assert len(set(path.nodes)) == len(path.nodes)  # simple
        # Each hop is a real edge with the claimed tag.
        for (eid, tag), u, v in zip(
            path.pairs, path.nodes[:-1], path.nodes[1:]
        ):
            assert int(graph.src[eid]) == u
            assert int(graph.dst[eid]) == v
            assert graph.edge_tag_probability(eid, tag) > 0.0


@given(
    st.lists(
        st.floats(min_value=0.1, max_value=10.0),
        min_size=1, max_size=6,
    ),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=25, deadline=None)
def test_weighted_spread_bounded_by_total_benefit(benefits_list, seed):
    from repro.core import estimate_weighted_spread

    builder = TagGraphBuilder(len(benefits_list) + 1)
    for i in range(len(benefits_list)):
        builder.add(0, i + 1, "t", 0.5)
    graph = builder.build()
    benefits = {i + 1: b for i, b in enumerate(benefits_list)}
    value = estimate_weighted_spread(
        graph, [0], benefits, ["t"], num_samples=50,
        rng=np.random.default_rng(seed),
    )
    assert -1e-9 <= value <= sum(benefits_list) + 1e-9


@given(
    st.lists(
        st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=99),
                st.floats(min_value=0, max_value=10),
                st.text(
                    alphabet=st.characters(
                        blacklist_categories=("Cs", "Cc"),
                    ),
                    max_size=6,
                ),
            ),
            min_size=2, max_size=2,
        ),
        max_size=8,
    )
)
@settings(max_examples=30, deadline=None)
def test_format_table_structure(rows):
    from repro.analysis import format_table

    text = format_table(["col-a", "col-b"], rows)
    # split("\n") keeps trailing empty lines (an all-empty row renders
    # as a blank line), unlike splitlines().
    lines = text.split("\n")
    assert len(lines) == len(rows) + 1
    assert lines[0].startswith("col-a")
