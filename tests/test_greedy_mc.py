"""Tests for CELF/CELF++ Monte-Carlo greedy seed selection."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidQueryError
from repro.graphs import TagGraphBuilder
from repro.seeds import greedy_mc_select_seeds


def _two_hub_graph():
    """Hub 0 → {2..6} at p=1; hub 1 → {7, 8} at p=1; 9 isolated."""
    builder = TagGraphBuilder(10)
    for v in range(2, 7):
        builder.add(0, v, "t", 1.0)
    for v in (7, 8):
        builder.add(1, v, "t", 1.0)
    return builder.build()


class TestGreedyMC:
    def test_picks_hubs_in_order(self):
        g = _two_hub_graph()
        result = greedy_mc_select_seeds(
            g, list(range(2, 9)), ["t"], 2, num_samples=50, rng=0
        )
        assert result.seeds == (0, 1)
        assert result.estimated_spread == pytest.approx(7.0)

    def test_single_seed(self):
        g = _two_hub_graph()
        result = greedy_mc_select_seeds(
            g, list(range(2, 9)), ["t"], 1, num_samples=50, rng=0
        )
        assert result.seeds == (0,)

    def test_candidate_restriction(self):
        g = _two_hub_graph()
        result = greedy_mc_select_seeds(
            g, list(range(2, 9)), ["t"], 1,
            num_samples=50, candidates=[1, 9], rng=0,
        )
        assert result.seeds == (1,)

    def test_celf_reduces_evaluations(self, small_yelp):
        from repro.datasets import community_targets

        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        tags = small_yelp.graph.tags[:4]
        lazy = greedy_mc_select_seeds(
            small_yelp.graph, targets, tags, 3, num_samples=20, rng=0
        )
        # Upper bound if nothing were lazy: initialization (n) plus a
        # full rescan (n) per round with CELF++ probes on top.
        n = small_yelp.graph.num_nodes
        assert lazy.spread_evaluations < 4 * n

    def test_plain_celf_matches_celfpp_quality(self):
        g = _two_hub_graph()
        targets = list(range(2, 9))
        plain = greedy_mc_select_seeds(
            g, targets, ["t"], 2, num_samples=50,
            use_celf_plus_plus=False, rng=0,
        )
        plus = greedy_mc_select_seeds(
            g, targets, ["t"], 2, num_samples=50,
            use_celf_plus_plus=True, rng=0,
        )
        assert set(plain.seeds) == set(plus.seeds) == {0, 1}

    def test_budget_exceeding_candidates_raises(self):
        g = _two_hub_graph()
        with pytest.raises(InvalidQueryError):
            greedy_mc_select_seeds(
                g, [2], ["t"], 3, candidates=[0, 1], rng=0
            )

    def test_unknown_tag_raises(self):
        with pytest.raises(InvalidQueryError):
            greedy_mc_select_seeds(_two_hub_graph(), [2], ["zz"], 1, rng=0)

    def test_deterministic(self):
        g = _two_hub_graph()
        a = greedy_mc_select_seeds(
            g, list(range(2, 9)), ["t"], 2, num_samples=30, rng=11
        )
        b = greedy_mc_select_seeds(
            g, list(range(2, 9)), ["t"], 2, num_samples=30, rng=11
        )
        assert a.seeds == b.seeds
