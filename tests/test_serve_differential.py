"""Differential suite: served answers ≡ direct library calls, bit for bit.

Every test compares a :class:`repro.serve.CampaignServer` answer against
the equivalent direct library call with the same RNG seed and canonical
inputs — seeds, tags, spreads, *and* observability work counters — on
all three cache paths:

* **cold** — the server executes the query itself (miss);
* **warm** — a repeat query is answered from the cached asset (hit);
* **post-eviction** — a tiny cache budget forces the asset out and the
  repeat query rebuilds it (miss again).

The counter comparison is the sharp edge: a cache hit must *merge the
asset's build-time metrics* into the query's report, so a warm answer
accounts for the same work as the cold one. A plain "return the cached
object" implementation passes the seeds/spread checks but fails these.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.joint import JointConfig, jointly_select
from repro.core.problem import JointQuery
from repro.diffusion.monte_carlo import estimate_spread
from repro.index.itrs import make_ltrs_manager
from repro.seeds.api import find_seeds
from repro.serve import CampaignServer, canonical_tags
from repro.sketch.theta import SketchConfig
from repro.tags.api import find_tags
from tests.conftest import FIG9_SEEDS, FIG9_TARGETS

FAST_SKETCH = SketchConfig(theta_max=2_000, pilot_samples=50)


def _counters(fn):
    """Run ``fn`` inside a fresh observe scope; return its counters."""
    with obs.observe() as ob:
        result = fn()
    return result, ob.metrics.as_dict()["counters"]


def _server(graph, **kwargs):
    kwargs.setdefault("config", JointConfig(sketch=FAST_SKETCH))
    kwargs.setdefault("pool_size", 2)
    return CampaignServer(graph, **kwargs)


def _assert_matches(response, direct, direct_counters):
    assert response.value.seeds == direct.seeds
    assert response.value.estimated_spread == direct.estimated_spread
    served = response.report["metrics"]["counters"]
    assert served == direct_counters


class TestFindSeedsDifferential:
    """Grid of (dataset, targets, k, engine) configs, cold + warm."""

    GRID = [
        ("fig9", FIG9_TARGETS, 2, "trs", 0),
        ("fig9", FIG9_TARGETS, 2, "trs", 7),
        ("fig9", FIG9_TARGETS, 1, "trs", 0),
        ("fig9", (6, 8), 2, "trs", 3),
        ("fig9", FIG9_TARGETS, 2, "imm", 0),
        ("fig9", FIG9_TARGETS, 2, "lltrs", 0),
        ("fig9", FIG9_TARGETS, 2, "greedy-mc", 0),
        ("yelp", None, 2, "trs", 0),
        ("yelp", None, 2, "lltrs", 5),
    ]

    @pytest.mark.parametrize(
        "dataset,targets,k,engine,seed", GRID,
        ids=[f"{d}-{e}-k{k}-s{s}" for d, _t, k, e, s in GRID],
    )
    def test_cold_and_warm_match_direct(
        self, dataset, targets, k, engine, seed, fig9_graph, small_yelp
    ):
        graph = fig9_graph if dataset == "fig9" else small_yelp.graph
        if targets is None:
            targets = tuple(range(0, graph.num_nodes, 7))[:12]
        tags = tuple(graph.tags[:3])

        direct, direct_counters = _counters(lambda: find_seeds(
            graph, targets, canonical_tags(tags), k,
            engine=engine, config=FAST_SKETCH, rng=seed,
        ))
        with _server(graph) as server:
            cold = server.find_seeds(
                targets, tags, k, engine=engine, seed=seed
            )
            warm = server.find_seeds(
                targets, tags, k, engine=engine, seed=seed
            )
        assert cold.cache == "miss"
        assert warm.cache == "hit"
        _assert_matches(cold, direct, direct_counters)
        _assert_matches(warm, direct, direct_counters)

    def test_tag_order_and_duplicates_share_one_answer(self, fig9_graph):
        """Permuted/duplicated tag sets canonicalize to one asset."""
        tags = ("c5", "c4", "c6")
        with _server(fig9_graph) as server:
            a = server.find_seeds(FIG9_TARGETS, tags, 2, engine="trs")
            b = server.find_seeds(
                FIG9_TARGETS, ("c6", "c4", "c5", "c4"), 2, engine="trs"
            )
        assert b.cache == "hit"
        assert a.value.seeds == b.value.seeds
        assert a.value.estimated_spread == b.value.estimated_spread

    def test_post_eviction_rebuild_matches_cold(self, fig9_graph):
        """A tiny byte budget forces eviction; the rebuild is identical."""
        tags_a, tags_b = ("c5", "c4"), ("c6", "c1")
        with _server(fig9_graph, cache_bytes=1) as server:
            cold = server.find_seeds(FIG9_TARGETS, tags_a, 2, engine="trs")
            other = server.find_seeds(FIG9_TARGETS, tags_b, 2, engine="trs")
            rebuilt = server.find_seeds(
                FIG9_TARGETS, tags_a, 2, engine="trs"
            )
            stats = server.cache_stats()
        assert other.cache == "miss"
        assert rebuilt.cache == "miss"  # evicted, so re-built
        assert stats.evictions >= 2
        assert rebuilt.value.seeds == cold.value.seeds
        assert (
            rebuilt.value.estimated_spread == cold.value.estimated_spread
        )
        assert (
            rebuilt.report["metrics"]["counters"]
            == cold.report["metrics"]["counters"]
        )

    def test_distinct_seeds_get_distinct_assets(self, fig9_graph):
        """The RNG seed is part of the sketch key — no cross-seed reuse."""
        with _server(fig9_graph) as server:
            first = server.find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=0
            )
            second = server.find_seeds(
                FIG9_TARGETS, ("c5", "c4"), 2, engine="trs", seed=1
            )
        assert first.cache == "miss"
        assert second.cache == "miss"

    def test_index_engine_with_warm_frozen_index(self, fig9_graph):
        """ltrs on the server's frozen index ≡ direct call on its twin."""
        tags = ("c5", "c4")
        with _server(fig9_graph) as server:
            built = server.warm_index(seed=0)
            theta_c = server.warmed_theta_c
            cold = server.find_seeds(
                FIG9_TARGETS, tags, 2, engine="ltrs", seed=0
            )
            warm = server.find_seeds(
                FIG9_TARGETS, tags, 2, engine="ltrs", seed=0
            )
        assert set(built) == set(fig9_graph.tags)

        manager = make_ltrs_manager(fig9_graph)
        manager.ensure_indexes(fig9_graph.tags, theta_c, rng=0)
        manager.freeze()
        direct = find_seeds(
            fig9_graph, FIG9_TARGETS, canonical_tags(tags), 2,
            engine="ltrs", config=FAST_SKETCH, manager=manager, rng=0,
        )
        assert cold.value.seeds == direct.seeds
        assert warm.value.seeds == direct.seeds
        assert cold.value.estimated_spread == direct.estimated_spread
        assert warm.value.estimated_spread == direct.estimated_spread


class TestOtherOpsDifferential:
    @pytest.mark.parametrize("method", ["batch", "individual"])
    def test_find_tags_matches_direct(self, fig9_graph, method):
        direct, direct_counters = _counters(lambda: find_tags(
            fig9_graph, FIG9_SEEDS, FIG9_TARGETS, 2, method=method, rng=0,
        ))
        with _server(fig9_graph) as server:
            cold = server.find_tags(
                FIG9_SEEDS, FIG9_TARGETS, 2, method=method, seed=0
            )
            warm = server.find_tags(
                FIG9_SEEDS, FIG9_TARGETS, 2, method=method, seed=0
            )
        for resp in (cold, warm):
            assert resp.value.tags == direct.tags
            assert resp.value.estimated_spread == direct.estimated_spread
            assert resp.report["metrics"]["counters"] == direct_counters
        assert cold.cache == "miss" and warm.cache == "hit"

    def test_seed_order_canonicalized(self, fig9_graph):
        """Permuted seed lists share one tag-selection asset."""
        with _server(fig9_graph) as server:
            a = server.find_tags((2, 0, 1), FIG9_TARGETS, 2, seed=0)
            b = server.find_tags((1, 2, 0, 0), FIG9_TARGETS, 2, seed=0)
        assert b.cache == "hit"
        assert a.value.tags == b.value.tags

    @pytest.mark.parametrize("k,r,seed", [(2, 2, 0), (1, 2, 4)])
    def test_joint_matches_direct(self, fig9_graph, k, r, seed):
        config = JointConfig(sketch=FAST_SKETCH)
        direct, direct_counters = _counters(lambda: jointly_select(
            fig9_graph, JointQuery(FIG9_TARGETS, k=k, r=r), config,
            rng=seed,
        ))
        with _server(fig9_graph, config=config) as server:
            cold = server.jointly_select(FIG9_TARGETS, k=k, r=r, seed=seed)
            warm = server.jointly_select(FIG9_TARGETS, k=k, r=r, seed=seed)
        for resp in (cold, warm):
            assert resp.value.seeds == direct.seeds
            assert resp.value.tags == direct.tags
            assert resp.value.spread == direct.spread
            assert resp.value.rounds == direct.rounds
            assert resp.report["metrics"]["counters"] == direct_counters
        assert cold.cache == "miss" and warm.cache == "hit"

    def test_spread_matches_direct(self, fig9_graph):
        direct, direct_counters = _counters(lambda: estimate_spread(
            fig9_graph, sorted(set(FIG9_SEEDS)), FIG9_TARGETS,
            canonical_tags(("c5", "c4")), num_samples=150, rng=0,
        ))
        with _server(fig9_graph) as server:
            cold = server.estimate_spread(
                FIG9_SEEDS, FIG9_TARGETS, ("c4", "c5"),
                num_samples=150, seed=0,
            )
            warm = server.estimate_spread(
                FIG9_SEEDS, FIG9_TARGETS, ("c5", "c4"),
                num_samples=150, seed=0,
            )
        assert cold.value == direct
        assert warm.value == direct
        assert cold.report["metrics"]["counters"] == direct_counters
        assert warm.report["metrics"]["counters"] == direct_counters
        assert cold.cache == "miss" and warm.cache == "hit"


class TestConnectedSession:
    def test_connected_sessions_replay_identically(self, fig9_graph):
        """Same-seed connected sessions get bit-identical answers."""
        from repro.core.session import CampaignSession

        with _server(fig9_graph) as server:
            s1 = CampaignSession.connect(server, seed=42)
            s2 = CampaignSession.connect(server, seed=42)
            r1 = s1.seeds(FIG9_TARGETS, ("c5", "c4"), 2)
            t1 = s1.tags(r1.seeds, FIG9_TARGETS, 2)
            r2 = s2.seeds(FIG9_TARGETS, ("c5", "c4"), 2)
            t2 = s2.tags(r2.seeds, FIG9_TARGETS, 2)
            v1 = s1.spread(r1.seeds, FIG9_TARGETS, t1.tags)
            v2 = s2.spread(r2.seeds, FIG9_TARGETS, t2.tags)
            stats = server.cache_stats()
        assert r1.seeds == r2.seeds
        assert r1.estimated_spread == r2.estimated_spread
        assert t1.tags == t2.tags
        assert v1 == v2
        # The second session re-asked the first's questions: all hits.
        assert stats.hits >= 3
        assert s1.server is server and s2.server is server

    def test_connected_session_forwards_memory_budget(self, fig9_graph):
        """Regression: a connected session must forward the whole
        RunBudget — max_rr_members used to be silently dropped, so a
        memory-capped query that fails in direct mode ran uncapped when
        routed through a server."""
        from repro.core.session import CampaignSession
        from repro.engine.runtime import RunBudget
        from repro.exceptions import BudgetExceededError

        budget = RunBudget(max_rr_members=1)
        with pytest.raises(BudgetExceededError):
            CampaignSession(
                fig9_graph, JointConfig(sketch=FAST_SKETCH)
            ).seeds(FIG9_TARGETS, ("c5", "c4"), 2, budget=budget)

        with _server(fig9_graph) as server:
            session = CampaignSession.connect(server, seed=0)
            with pytest.raises(BudgetExceededError):
                session.seeds(
                    FIG9_TARGETS, ("c5", "c4"), 2,
                    budget=RunBudget(max_rr_members=1),
                )

    def test_connected_session_returns_library_types(self, fig9_graph):
        from repro.core.session import CampaignSession
        from repro.seeds.api import SeedSelection
        from repro.tags.api import TagSelection

        with _server(fig9_graph) as server:
            session = CampaignSession.connect(server)
            selection = session.seeds(FIG9_TARGETS, ("c5",), 1)
            tag_sel = session.tags((0,), FIG9_TARGETS, 1)
            value = session.spread((0,), FIG9_TARGETS, ("c5",))
        assert isinstance(selection, SeedSelection)
        assert isinstance(tag_sel, TagSelection)
        assert isinstance(value, float)
        assert session.queries_run == 2
