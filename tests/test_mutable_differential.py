"""Differential edit-storm harness for incremental RR-sketch repair.

The mutability contract (``docs/mutability.md``) is *bit-identity*:
after any edit batch, :meth:`RepairableSketch.repair` — which resamples
only the RR sets whose touch trace intersects the dirty edges — must
produce exactly the collection a cold rebuild with the same
``SeedSequence`` tree would produce on the post-edit graph. Not
statistically close: byte-for-byte equal members and offsets.

This file drives that property through seeded random edit storms
(edge adds, tombstone removals, tag prob set/unset) over every
sampling path:

* **uniform** — one constant probability on every live edge,
* **weighted** — the paper's independent tag aggregation
  (:meth:`TagGraph.edge_probabilities`),
* **TRS** — the full pilot → θ → sample pipeline
  (:func:`trs_build_repairable_sketch`),

each under both the scalar per-set-substream kernel and the
bit-parallel capacity-strided kernel. Across the storms below, repair
is checked against cold rebuild after **more than 50** distinct
``apply()`` calls.

Why this is sound as a test oracle: a cold rebuild re-derives every RR
set from the stored seed tree, so any dirty set the touch-trace theorem
*missed* would differ between the repaired sketch (which kept it) and
the rebuild (which resampled it on the new graph) — the comparison
fails precisely when the dirty-set computation is wrong, the replay
kernel diverges from the build kernel, or RNG substreams drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    EdgeAdd,
    EdgeRemove,
    MutableTagGraph,
    TagGraphBuilder,
    TagSet,
    TagUnset,
    edits_from_dicts,
)
from repro.sketch import (
    SketchCapacityError,
    SketchConfig,
    build_repairable_sketch,
    trs_build_repairable_sketch,
)

TAGS = ("alpha", "beta", "gamma")


def make_graph(rng: np.random.Generator, n: int = 50, m: int = 240):
    """Random multi-tag graph with every node reachable as an endpoint."""
    builder = TagGraphBuilder(n)
    added = set()
    while len(added) < m:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u == v or (u, v) in added:
            continue
        added.add((u, v))
        for tag in TAGS:
            if rng.random() < 0.6:
                builder.add(u, v, tag, float(rng.uniform(0.05, 0.6)))
    return builder.build()


class EditStorm:
    """Generates *valid* random edit batches and mirrors their effect.

    Tracks live edges and per-tag entries so every generated batch
    passes ``MutableTagGraph.apply`` validation (no double-removes, no
    tag ops on removed edges, no unsetting absent entries) and never
    empties a tag's edge set (the sketch paths aggregate over all of
    ``TAGS``, and an empty tag is a vocabulary change, not an edit).
    """

    def __init__(self, graph, rng: np.random.Generator) -> None:
        self.rng = rng
        self.n = graph.num_nodes
        self.next_eid = graph.num_edges
        self.live: set[int] = set(range(graph.num_edges))
        self.entries: dict[str, set[int]] = {}
        for tag in TAGS:
            ids, _ = graph.tag_edges(tag)
            self.entries[tag] = set(ids.tolist())

    def _tags_of(self, eid: int) -> list[str]:
        return [tag for tag in TAGS if eid in self.entries[tag]]

    def batch(self, size: int) -> list:
        edits = []
        for _ in range(size):
            roll = self.rng.random()
            if roll < 0.15:
                u, v = (int(x) for x in self.rng.integers(0, self.n, 2))
                if u == v:
                    v = (v + 1) % self.n
                tag = str(self.rng.choice(TAGS))
                edits.append(EdgeAdd(
                    src=u, dst=v,
                    tag_probs={tag: float(self.rng.uniform(0.05, 0.6))},
                ))
                self.entries[tag].add(self.next_eid)
                self.live.add(self.next_eid)
                self.next_eid += 1
            elif roll < 0.30:
                candidates = [
                    eid for eid in self.live
                    if all(len(self.entries[t]) > 1
                           for t in self._tags_of(eid))
                ]
                if not candidates:
                    continue
                eid = int(self.rng.choice(sorted(candidates)))
                edits.append(EdgeRemove(edge_id=eid))
                self.live.discard(eid)
                for tag in TAGS:
                    self.entries[tag].discard(eid)
            elif roll < 0.45:
                tag = str(self.rng.choice(TAGS))
                removable = [
                    eid for eid in self.entries[tag]
                    if eid in self.live and len(self.entries[tag]) > 1
                ]
                if not removable:
                    continue
                eid = int(self.rng.choice(sorted(removable)))
                edits.append(TagUnset(edge_id=eid, tag=tag))
                self.entries[tag].discard(eid)
            else:
                if not self.live:
                    continue
                eid = int(self.rng.choice(sorted(self.live)))
                tag = str(self.rng.choice(TAGS))
                edits.append(TagSet(
                    edge_id=eid, tag=tag,
                    prob=float(self.rng.uniform(0.05, 0.9)),
                ))
                self.entries[tag].add(eid)
        return edits


def assert_identical(repaired, rebuilt) -> None:
    """Bit-identity of two sketches' RR collections (and geometry)."""
    assert repaired.theta == rebuilt.theta
    np.testing.assert_array_equal(repaired.rr.indptr, rebuilt.rr.indptr)
    np.testing.assert_array_equal(repaired.rr.members, rebuilt.rr.members)


def edge_probs_for(graph, path: str) -> np.ndarray:
    """Per-edge probabilities for one sampling path.

    ``uniform`` puts one constant on every *live* edge (tombstoned
    edges keep probability zero — they must stay dead); ``weighted``
    is the paper's independent aggregation over all tags.
    """
    weighted = graph.edge_probabilities(TAGS)
    if path == "weighted":
        return weighted
    return np.where(weighted > 0.0, 0.2, 0.0)


def run_storm(mode: str, path: str, *, batches: int, seed: int,
              theta: int = 160, batch_size: int = 6) -> int:
    """One edit storm; returns the number of ``apply()`` calls checked."""
    rng = np.random.default_rng(seed)
    base = make_graph(rng)
    mg = MutableTagGraph(base)
    storm = EditStorm(base, rng)
    snap = mg.snapshot()
    targets = list(range(0, snap.num_nodes, 2))
    sketch = build_repairable_sketch(
        snap, targets, edge_probs_for(snap, path), theta,
        seed=seed, mode=mode,
    )
    epoch = mg.epoch
    checked = 0
    for _ in range(batches):
        edits = storm.batch(batch_size)
        if not edits:
            continue
        new_epoch = mg.apply(edits)
        snap = mg.snapshot()
        probs = edge_probs_for(snap, path)
        dirty = mg.dirty_edges(epoch)
        try:
            repaired, stats = sketch.repair(snap, probs, dirty)
        except SketchCapacityError:
            # Bit-parallel sketches freeze their coin stride; an edit
            # storm that outgrows it must rebuild cold. Still a valid
            # storm step — resume the differential from the rebuild.
            sketch = build_repairable_sketch(
                snap, targets, probs, theta, seed=seed, mode=mode,
            )
            epoch = new_epoch
            checked += 1
            continue
        rebuilt = sketch.cold_rebuild(snap, probs)
        assert_identical(repaired, rebuilt)
        assert stats["dirty_edges"] == dirty.size
        assert 0 <= stats["dirty_sets"] <= stats["total_sets"]
        sketch = repaired
        epoch = new_epoch
        checked += 1
    assert checked >= batches - 2  # storms must not degenerate to no-ops
    return checked


class TestDifferentialEditStorm:
    """repair ≡ cold rebuild, bit-for-bit, across 50+ edit batches."""

    @pytest.mark.parametrize("path", ["uniform", "weighted"])
    def test_scalar_storm(self, path):
        run_storm("scalar", path, batches=14, seed=11)

    @pytest.mark.parametrize("path", ["uniform", "weighted"])
    def test_bitparallel_storm(self, path):
        run_storm("bitparallel", path, batches=12, seed=23)

    @pytest.mark.parametrize("mode", ["scalar", "bitparallel"])
    def test_trs_pipeline_storm(self, mode):
        """Full TRS pipeline: pilot-derived θ, then a repair storm."""
        rng = np.random.default_rng(37)
        base = make_graph(rng)
        mg = MutableTagGraph(base)
        storm = EditStorm(base, rng)
        snap = mg.snapshot()
        targets = list(range(0, snap.num_nodes, 3))
        cfg = SketchConfig(theta_min=64, theta_max=512, pilot_samples=80)
        sketch = trs_build_repairable_sketch(
            snap, targets, TAGS, 3, seed=5, config=cfg, mode=mode,
        )
        assert sketch.opt_t_estimate is not None
        epoch = mg.epoch
        for _ in range(4):
            edits = storm.batch(5)
            if not edits:
                continue
            epoch_new = mg.apply(edits)
            snap = mg.snapshot()
            probs = snap.edge_probabilities(TAGS)
            dirty = mg.dirty_edges(epoch)
            repaired, _ = sketch.repair(snap, probs, dirty)
            # θ is frozen at first build: the cold oracle must agree
            # without re-running the pilot.
            rebuilt = sketch.cold_rebuild(snap, probs)
            assert_identical(repaired, rebuilt)
            assert rebuilt.theta == sketch.theta
            sketch = repaired
            epoch = epoch_new


class TestRepairSemantics:
    """Unit-level properties of the repair machinery."""

    def test_empty_dirty_set_is_identity(self):
        rng = np.random.default_rng(3)
        graph = make_graph(rng)
        probs = graph.edge_probabilities(TAGS)
        sketch = build_repairable_sketch(
            graph, [0, 2, 4, 6], probs, 64, seed=9
        )
        repaired, stats = sketch.repair(
            graph, probs, np.empty(0, dtype=np.int64)
        )
        assert stats["dirty_sets"] == 0
        assert repaired.rr is sketch.rr  # zero-copy, not just equal

    def test_untouched_sets_keep_membership(self):
        """Sets outside the dirty list are spliced through unchanged."""
        rng = np.random.default_rng(4)
        base = make_graph(rng)
        mg = MutableTagGraph(base)
        snap = mg.snapshot()
        probs = snap.edge_probabilities(TAGS)
        sketch = build_repairable_sketch(
            snap, list(range(0, 50, 2)), probs, 128, seed=2
        )
        eid = int(snap.tag_edges("alpha")[0][0])
        mg.apply([TagSet(edge_id=eid, tag="alpha", prob=0.95)])
        snap2 = mg.snapshot()
        probs2 = snap2.edge_probabilities(TAGS)
        dirty = mg.dirty_edges(0)
        dirty_sets = set(
            sketch.dirty_set_ids(np.unique(snap2.dst[dirty])).tolist()
        )
        repaired, _ = sketch.repair(snap2, probs2, dirty)
        for sid in range(len(sketch.rr)):
            if sid not in dirty_sets:
                np.testing.assert_array_equal(
                    sketch.rr[sid], repaired.rr[sid]
                )

    def test_capacity_trip_raises(self):
        rng = np.random.default_rng(5)
        graph = make_graph(rng, n=20, m=40)
        probs = graph.edge_probabilities(TAGS)
        sketch = build_repairable_sketch(
            graph, [0, 1, 2, 3], probs, 32, seed=1,
            mode="bitparallel", edge_capacity=graph.num_edges,
        )
        mg = MutableTagGraph(graph)
        mg.apply([EdgeAdd(src=0, dst=5, tag_probs={"alpha": 0.5})])
        snap = mg.snapshot()
        with pytest.raises(SketchCapacityError):
            sketch.repair(
                snap, edge_probs_for(snap, "uniform"), mg.dirty_edges(0)
            )

    def test_wire_format_storm_round_trip(self):
        """Edits parsed from protocol dicts behave like native edits."""
        rng = np.random.default_rng(6)
        base = make_graph(rng, n=30, m=80)
        mg_native = MutableTagGraph(base)
        mg_wire = MutableTagGraph(base)
        eid = int(base.tag_edges("beta")[0][0])
        native = [
            TagSet(edge_id=eid, tag="beta", prob=0.4),
            EdgeAdd(src=1, dst=2, tag_probs={"alpha": 0.3}),
        ]
        wire = edits_from_dicts([
            {"op": "tag_set", "edge_id": eid, "tag": "beta", "prob": 0.4},
            {"op": "edge_add", "src": 1, "dst": 2,
             "tag_probs": {"alpha": 0.3}},
        ])
        assert mg_native.apply(native) == mg_wire.apply(wire)
        a, b = mg_native.snapshot(), mg_wire.snapshot()
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(
            a.edge_probabilities(TAGS), b.edge_probabilities(TAGS)
        )
