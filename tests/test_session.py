"""Tests for CampaignSession — shared-index multi-query workflows."""

from __future__ import annotations

import pytest

from repro import JointConfig, SketchConfig, TagSelectionConfig
from repro.core import CampaignSession
from repro.datasets import community_targets

FAST_CFG = JointConfig(
    max_rounds=1,
    seed_engine="ltrs",
    sketch=SketchConfig(pilot_samples=60, theta_min=150, theta_max=500),
    tag_config=TagSelectionConfig(
        per_pair_paths=3, rr_theta=300, max_path_targets=15
    ),
    eval_samples=60,
)


@pytest.fixture
def session(small_yelp):
    return CampaignSession(small_yelp.graph, FAST_CFG, rng=0)


class TestSeedsQueries:
    def test_basic(self, session, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        sel = session.seeds(targets, small_yelp.graph.tags[:4], 2)
        assert len(sel.seeds) == 2
        assert session.queries_run == 1

    def test_index_reuse_across_queries(self, session, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        tags = small_yelp.graph.tags[:4]
        session.seeds(targets, tags, 2)
        built = len(session.indexed_tags)
        assert built == 4
        session.seeds(targets, tags, 3)  # same tags: nothing new
        assert len(session.indexed_tags) == built
        more = list(tags[:2]) + [small_yelp.graph.tags[5]]
        session.seeds(targets, more, 2)  # one new tag
        assert len(session.indexed_tags) == built + 1

    def test_lltrs_manager_per_target_set(self, small_yelp):
        import dataclasses

        cfg = dataclasses.replace(FAST_CFG, seed_engine="lltrs")
        session = CampaignSession(small_yelp.graph, cfg, rng=0)
        vegas = community_targets(small_yelp, "vegas", size=15, rng=0)
        toronto = community_targets(small_yelp, "toronto", size=15, rng=0)
        session.seeds(vegas, small_yelp.graph.tags[:3], 2)
        session.seeds(toronto, small_yelp.graph.tags[:3], 2)
        assert len(session._local_managers) == 2


class TestOtherQueries:
    def test_tags_query(self, session, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        sel = session.tags([0, 1], targets, 3)
        assert len(sel.tags) <= 3

    def test_joint_query(self, session, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        result = session.joint(targets, k=2, r=3)
        assert len(result.seeds) == 2

    def test_spread_query(self, session, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        value = session.spread([0, 1], targets, small_yelp.graph.tags[:3])
        assert 0.0 <= value <= 15.0

    def test_session_replayable(self, small_yelp):
        targets = community_targets(small_yelp, "vegas", size=15, rng=0)
        tags = small_yelp.graph.tags[:4]

        def run():
            session = CampaignSession(small_yelp.graph, FAST_CFG, rng=9)
            first = session.seeds(targets, tags, 2)
            second = session.joint(targets, k=2, r=3)
            return first.seeds, second.seeds, second.tags

        assert run() == run()

    def test_graph_property(self, session, small_yelp):
        assert session.graph is small_yelp.graph
