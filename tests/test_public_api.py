"""Contract tests for the top-level public API surface.

A downstream user sees ``repro`` through its ``__init__`` re-exports;
these tests pin that surface: everything in ``__all__`` resolves, key
call signatures accept the documented argument styles, and results are
plain, picklable data.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_exceptions_form_hierarchy(self):
        for exc in (
            repro.ConfigurationError,
            repro.EstimationError,
            repro.GraphConstructionError,
            repro.InvalidQueryError,
        ):
            assert issubclass(exc, repro.ReproError)

    def test_datasets_submodule_reachable(self):
        assert hasattr(repro.datasets, "yelp")
        assert hasattr(repro.datasets, "community_targets")


class TestArgumentStyles:
    """Entry points accept lists, tuples, numpy arrays, and generators."""

    @pytest.fixture(scope="class")
    def setup(self):
        data = repro.datasets.lastfm(scale=0.3)
        targets = repro.datasets.bfs_targets(data.graph, 15)
        return data.graph, targets

    def test_targets_as_numpy_array(self, setup):
        graph, targets = setup
        assert isinstance(targets, np.ndarray)
        value = repro.estimate_spread(
            graph, [0], targets, graph.tags[:2], num_samples=20, rng=0
        )
        assert value >= 0.0

    def test_targets_as_list_and_tuple(self, setup):
        graph, targets = setup
        as_list = repro.estimate_spread(
            graph, [0], list(targets), graph.tags[:2],
            num_samples=50, rng=3,
        )
        as_tuple = repro.estimate_spread(
            graph, [0], tuple(targets), graph.tags[:2],
            num_samples=50, rng=3,
        )
        assert as_list == pytest.approx(as_tuple)

    def test_rng_as_generator(self, setup):
        graph, targets = setup
        gen = np.random.default_rng(0)
        value = repro.estimate_spread(
            graph, [0], targets, graph.tags[:2], num_samples=20, rng=gen
        )
        assert value >= 0.0

    def test_numpy_integer_node_ids(self, setup):
        graph, targets = setup
        seeds = [np.int64(0), np.int64(1)]
        value = repro.estimate_spread(
            graph, seeds, targets, graph.tags[:2], num_samples=20, rng=0
        )
        assert value >= 0.0


class TestResultObjects:
    @pytest.fixture(scope="class")
    def joint_result(self):
        data = repro.datasets.lastfm(scale=0.3)
        targets = repro.datasets.bfs_targets(data.graph, 15)
        cfg = repro.JointConfig(
            max_rounds=1,
            sketch=repro.SketchConfig(
                pilot_samples=50, theta_min=100, theta_max=300
            ),
            tag_config=repro.TagSelectionConfig(
                per_pair_paths=3, max_path_targets=15
            ),
            eval_samples=40,
        )
        return repro.jointly_select(
            data.graph, repro.JointQuery(targets, k=2, r=3), cfg, rng=0
        )

    def test_result_is_picklable(self, joint_result):
        clone = pickle.loads(pickle.dumps(joint_result))
        assert clone.seeds == joint_result.seeds
        assert clone.tags == joint_result.tags

    def test_result_fields_are_plain_types(self, joint_result):
        assert isinstance(joint_result.seeds, tuple)
        assert all(isinstance(s, int) for s in joint_result.seeds)
        assert isinstance(joint_result.tags, tuple)
        assert all(isinstance(t, str) for t in joint_result.tags)
        assert isinstance(joint_result.spread, float)

    def test_configs_are_frozen(self):
        cfg = repro.SketchConfig()
        with pytest.raises(AttributeError):
            cfg.epsilon = 0.5
        jcfg = repro.JointConfig()
        with pytest.raises(AttributeError):
            jcfg.max_rounds = 1

    def test_query_is_picklable(self):
        query = repro.JointQuery([3, 1, 2], k=2, r=1)
        clone = pickle.loads(pickle.dumps(query))
        assert clone == query
