"""Statistical equivalence of every estimator path vs the exact oracle.

Each Monte-Carlo spread estimate — scalar reference loop, vectorized
frontier-batched engine, and multi-process engine — is compared against
the possible-world enumeration of :mod:`repro.diffusion.exact` on the
paper's small worked-example graphs.

The tolerance is not a tuned constant: every per-cascade activated
count lies in ``[0, |T|]``, so Hoeffding's inequality bounds the
deviation of the sample mean from the true spread by

    |est − σ| ≤ |T| · sqrt(ln(2/δ) / (2 n))

with probability at least ``1 − δ``.  With ``δ = 1e-9`` a failure is a
one-in-a-billion event per assertion *even for adversarial seeds* — and
since the RNG seeds here are fixed, any failure at all is a genuine
estimator bug, not flakiness.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.diffusion.exact import exact_spread
from repro.diffusion.monte_carlo import estimate_spread
from repro.engine import SamplingEngine

#: Per-assertion failure probability for the Hoeffding bound.
DELTA = 1e-9

#: MC samples per estimate; drives the CI width.
NUM_SAMPLES = 4000


def hoeffding_bound(range_width: float, n: int) -> float:
    """Two-sided deviation bound for a mean of ``[0, range_width]`` i.i.d.
    samples: ``P(|mean − μ| > bound) ≤ DELTA``."""
    return range_width * math.sqrt(math.log(2.0 / DELTA) / (2.0 * n))


@pytest.fixture(scope="module")
def engines():
    """One vectorized serial and one pooled engine, shared per module.

    ``parallel_threshold=0`` disables the small-work fallback so the
    pooled engine genuinely exercises the multi-process path.
    """
    serial = SamplingEngine(mode="vectorized", workers=1)
    pooled = SamplingEngine(
        mode="vectorized", workers=2, shard_size=256, parallel_threshold=0
    )
    yield {"vectorized": serial, "parallel": pooled}
    serial.close()
    pooled.close()


# (fixture name, seeds, targets, tags) — graphs small enough for the
# 2^m possible-world enumeration.
CASES = [
    ("line_graph", [0], [3], ["a", "b", "c"]),
    ("line_graph", [0, 1], [2, 3], ["a", "b", "c"]),
    ("diamond_graph", [0], [3], ["a", "b", "c"]),
    ("diamond_graph", [0], [1, 2, 3], ["a", "b"]),
    ("fig4_graph", [0, 3], [2, 5], ["c1"]),
    ("fig4_graph", [0, 3], [2, 5], ["c1", "c2", "c3"]),
    ("fig9_graph", [0, 1, 2], [6, 7, 8], ["c4", "c5"]),
    ("fig9_graph", [0, 1, 2], [6, 7, 8], ["c3", "c4", "c5", "c6"]),
]


@pytest.mark.parametrize("path", ["scalar", "vectorized", "parallel"])
@pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c[0]}-{c[3]}")
def test_mc_estimate_within_ci_of_exact(case, path, engines, request):
    fixture, seeds, targets, tags = case
    graph = request.getfixturevalue(fixture)
    exact = exact_spread(graph, seeds, targets, tags)
    engine = None if path == "scalar" else engines[path]

    est = estimate_spread(
        graph, seeds, targets, tags,
        num_samples=NUM_SAMPLES, rng=12345, engine=engine,
    )

    bound = hoeffding_bound(len(targets), NUM_SAMPLES)
    assert abs(est - exact) <= bound, (
        f"{path} estimate {est:.4f} deviates from exact {exact:.4f} by "
        f"more than the δ={DELTA} Hoeffding bound {bound:.4f}"
    )


@pytest.mark.parametrize("case", CASES[:4], ids=lambda c: f"{c[0]}-{c[3]}")
def test_vectorized_and_parallel_estimates_identical(case, engines, request):
    """The engine's determinism contract: worker count never changes the
    estimate — sharding depends only on (count, shard_size), and shard
    RNG streams are spawned per shard."""
    fixture, seeds, targets, tags = case
    graph = request.getfixturevalue(fixture)
    serial_same_shard = SamplingEngine(
        mode="vectorized", workers=1, shard_size=256
    )
    try:
        a = estimate_spread(
            graph, seeds, targets, tags,
            num_samples=NUM_SAMPLES, rng=7, engine=serial_same_shard,
        )
        b = estimate_spread(
            graph, seeds, targets, tags,
            num_samples=NUM_SAMPLES, rng=7, engine=engines["parallel"],
        )
    finally:
        serial_same_shard.close()
    assert a == b


def test_exact_oracle_matches_hand_computation(line_graph):
    """Anchor the oracle itself: P(reach 3 from 0) = 0.5^3 on the chain."""
    assert exact_spread(line_graph, [0], [3], ["a", "b", "c"]) == (
        pytest.approx(0.125)
    )
    assert exact_spread(line_graph, [0], [1], ["a"]) == pytest.approx(0.5)


def test_scalar_and_engine_agree_with_each_other(line_graph):
    """Cross-path closeness (both within a CI of exact implies within
    two CIs of each other) — checked directly for one case as a guard
    against correlated biases that happen to cancel against exact."""
    est_scalar = estimate_spread(
        line_graph, [0], [3], ["a", "b", "c"],
        num_samples=NUM_SAMPLES, rng=99,
    )
    with SamplingEngine(mode="vectorized", workers=1) as engine:
        est_engine = estimate_spread(
            line_graph, [0], [3], ["a", "b", "c"],
            num_samples=NUM_SAMPLES, rng=99, engine=engine,
        )
    assert abs(est_scalar - est_engine) <= 2 * hoeffding_bound(1, NUM_SAMPLES)
