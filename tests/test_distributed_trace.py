"""Fleet tracing differential suite: one stitched trace, zero perturbation.

The distributed-tracing contract (``repro.obs.distributed``) layered on
the sharded campaign service:

* one routed query — affinity or scatter — yields ONE stitched Chrome
  trace: a single ``trace_id``, every worker span grafted under the
  router's ``serve.query`` span via resolvable parent links, and all
  timestamps/durations non-negative after clock alignment;
* tracing is *observation only*: answers and the inlined observability
  work counters are bit-identical with tracing on and off;
* a SIGKILL'd worker mid-stream still leaves a parseable stitched
  trace, and the respawned worker ships spans under a fresh clock
  offset;
* the slow-query flight recorder retains rejections / deadline misses /
  slow queries with their QoS decisions and stitched trace, bounded.

Plus unit coverage for the building blocks: trace-context propagation,
the flight-recorder ring, metrics-merge hardening against mid-scrape
worker death, and the causal event merge (schema ``repro.obs.events/2``).
"""

from __future__ import annotations

import copy
import json
import os
import signal
import time
import urllib.request

import numpy as np
import pytest

from repro.core.joint import JointConfig
from repro.graphs.tag_graph import TagGraph
from repro.obs.distributed import (
    FLIGHT_SCHEMA,
    TRACE_CONTEXT_KEY,
    TRACE_SCHEMA,
    FlightRecorder,
    TraceContext,
    merge_event_payloads,
)
from repro.obs.events import EVENTS_SCHEMA
from repro.obs.live import TelemetryEndpoint, merge_metrics_snapshots
from repro.serve import (
    CampaignServer,
    QosConfig,
    ShardedCampaignService,
    WorkerSpec,
)
from repro.serve.protocol import handle_request
from repro.sketch.theta import SketchConfig

FAST_SKETCH = SketchConfig(theta_max=800, pilot_samples=30)
CONFIG = JointConfig(sketch=FAST_SKETCH)

TARGETS = list(range(8, 20))

REQUESTS = {
    "find_seeds": {
        "op": "find_seeds", "targets": TARGETS, "tags": ["a"], "k": 2,
        "engine": "trs", "seed": 3, "report": True,
    },
    "find_tags": {
        "op": "find_tags", "seeds": [0, 3], "targets": TARGETS,
        "r": 1, "seed": 1, "report": True,
    },
    "joint": {
        "op": "joint", "targets": TARGETS, "k": 2, "r": 1, "seed": 2,
        "report": True,
    },
    "spread": {
        "op": "spread", "seeds": [0, 3], "targets": TARGETS,
        "tags": ["a", "b"], "num_samples": 60, "seed": 5, "report": True,
    },
}

SCATTER_REQUEST = {
    "op": "find_seeds", "targets": TARGETS, "tags": ["a"], "k": 2,
    "engine": "trs", "seed": 9, "scatter": True,
}

_COMPARED_FIELDS = (
    "ok", "seeds", "tags", "spread", "engine", "method", "rounds",
    "converged", "class", "tier", "epoch",
)


def make_graph(num_nodes: int = 40, num_edges: int = 160) -> TagGraph:
    rng = np.random.default_rng(11)
    src = rng.integers(0, num_nodes, num_edges).astype(np.int64)
    dst = (src + 1 + rng.integers(0, num_nodes - 1, num_edges)) % num_nodes
    tag_probs = {}
    for tag in ("a", "b"):
        ids = np.sort(
            rng.choice(num_edges, size=num_edges // 2, replace=False)
        ).astype(np.int64)
        tag_probs[tag] = (ids, rng.uniform(0.05, 0.45, ids.size))
    return TagGraph(num_nodes, src, dst.astype(np.int64), tag_probs)


GRAPH = make_graph()


def _comparable(response: dict) -> dict:
    return {f: response[f] for f in _COMPARED_FIELDS if f in response}


def _counters(response: dict) -> dict:
    return response["report"]["metrics"]["counters"]


def _complete_events(trace: list) -> list:
    return [e for e in trace if e.get("ph") == "X"]


def _assert_stitched(trace: list, *, min_pids: int) -> str:
    """One trace: single id, resolvable parents, aligned clocks."""
    spans = _complete_events(trace)
    assert spans, trace
    trace_ids = {e["args"]["trace_id"] for e in spans}
    assert len(trace_ids) == 1, trace_ids
    pids = {e["pid"] for e in spans}
    assert len(pids) >= min_pids, pids
    by_id = {e["args"]["span_id"]: e for e in spans}
    for event in spans:
        assert event["ts"] >= 0 and event["dur"] >= 0, event
        parent = event["args"].get("parent_span_id")
        if parent is None:
            continue
        assert parent in by_id, (event["name"], parent)
        parent_event = by_id[parent]
        # Clock alignment: a child never starts before its parent.
        assert event["ts"] >= parent_event["ts"] - 1, (
            event["name"], parent_event["name"],
        )
    roots = [
        e for e in spans if e["args"].get("parent_span_id") is None
    ]
    assert len(roots) == 1 and roots[0]["name"] == "serve.query", roots
    return trace_ids.pop()


# ---------------------------------------------------------------------------
# Unit: trace-context propagation
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_round_trip(self):
        ctx = TraceContext("t-1", "abc-1")
        assert TraceContext.from_dict(ctx.as_dict()) == ctx

    def test_root_context_elides_parent(self):
        assert TraceContext("t-1").as_dict() == {"trace_id": "t-1"}

    @pytest.mark.parametrize("payload", [
        None, "t-1", 7, [], {}, {"trace_id": ""}, {"trace_id": 3},
        {"parent_span_id": "abc"},
    ])
    def test_malformed_yields_none_never_raises(self, payload):
        assert TraceContext.from_dict(payload) is None

    def test_non_string_parent_degrades_to_root(self):
        ctx = TraceContext.from_dict({"trace_id": "t-1", "parent_span_id": 5})
        assert ctx == TraceContext("t-1", None)

    def test_pop_from_strips_the_wire_key(self):
        request = {"op": "ping", TRACE_CONTEXT_KEY: {"trace_id": "t-9"}}
        ctx = TraceContext.pop_from(request)
        assert ctx == TraceContext("t-9")
        assert TRACE_CONTEXT_KEY not in request
        assert TraceContext.pop_from({"op": "ping"}) is None
        assert TraceContext.pop_from("not a dict") is None


# ---------------------------------------------------------------------------
# Unit: flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_should_record_matrix(self):
        rec = FlightRecorder(4, slow_ms=100.0)
        assert rec.should_record(failed=True)
        assert not rec.should_record()
        assert rec.should_record(elapsed_ms=250.0)            # slow
        assert not rec.should_record(elapsed_ms=50.0)
        assert rec.should_record(elapsed_ms=50.0, deadline_ms=20.0)
        assert not rec.should_record(elapsed_ms=50.0, deadline_ms=80.0)

    def test_no_slow_threshold_only_failures_and_misses(self):
        rec = FlightRecorder(4)
        assert not rec.should_record(elapsed_ms=10_000.0)
        assert rec.should_record(elapsed_ms=10.0, deadline_ms=5.0)
        assert rec.should_record(failed=True)

    def test_ring_is_bounded_and_total_is_lifetime(self):
        rec = FlightRecorder(3)
        for i in range(5):
            rec.record(reason="slow", op=f"q{i}")
        assert len(rec) == 3
        payload = rec.payload()
        assert payload["schema"] == FLIGHT_SCHEMA
        assert payload["total"] == 5
        assert [r["op"] for r in payload["records"]] == ["q2", "q3", "q4"]
        assert [r["op"] for r in rec.snapshot(limit=1)] == ["q4"]

    def test_none_fields_are_elided(self):
        rec = FlightRecorder(2)
        entry = rec.record(reason="rejected", code="shed", trace=None)
        assert "trace" not in entry
        assert entry["code"] == "shed"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)


# ---------------------------------------------------------------------------
# Unit: metrics merge hardened against mid-scrape death
# ---------------------------------------------------------------------------


class TestMetricsMergeHardening:
    GOOD = {
        "counters": {"serve.queries": 3},
        "gauges": {"serve.inflight": 1},
        "histograms": {
            "serve.op.latency_ms.find_seeds": {
                "count": 2, "sum": 30.0, "min": 10.0, "max": 20.0,
                "buckets": {"4": 1, "5": 1},
            },
        },
    }

    def test_dead_worker_snapshot_is_skipped_not_fatal(self):
        merged = merge_metrics_snapshots([self.GOOD, None, "garbage"])
        assert merged["counters"]["serve.queries"] == 3
        assert merged["gauges"]["serve.inflight"] == 1

    def test_malformed_values_are_skipped(self):
        junk = {
            "counters": {"serve.queries": "NaN-ish", "extra": 2},
            "gauges": {"serve.inflight": None},
            "histograms": {
                "h": "not a dict",
                "serve.op.latency_ms.find_seeds": {
                    "count": 1, "sum": 5.0,
                    "buckets": {"bad-edge": 1, "4": None, "6": 2},
                },
            },
        }
        merged = merge_metrics_snapshots([self.GOOD, junk])
        assert merged["counters"]["serve.queries"] == 3  # junk skipped
        assert merged["counters"]["extra"] == 2
        hist = merged["histograms"]["serve.op.latency_ms.find_seeds"]
        assert hist["count"] == 3
        assert hist["buckets"] == {"4": 1, "5": 1, "6": 2}

    def test_all_dead_yields_empty_document(self):
        merged = merge_metrics_snapshots([None, None])
        assert merged["counters"] == {}
        assert merged["gauges"] == {}


# ---------------------------------------------------------------------------
# Unit: causal event merge (repro.obs.events/2)
# ---------------------------------------------------------------------------


def _event(ts, seq, kind="query.done", **attrs):
    record = {"ts": ts, "seq": seq, "kind": kind}
    if attrs:
        record["attrs"] = attrs
    return record


def _payload(events):
    return {"capacity": 64, "total": len(events), "dropped": 0,
            "sink_errors": 0, "events": events}


class TestMergeEventPayloads:
    def test_causal_order_and_worker_epoch_labels(self):
        merged = merge_event_payloads({
            "w1": _payload([_event(2.0, 1), _event(4.0, 2)]),
            "router": _payload([_event(1.0, 1), _event(3.0, 2)]),
        }, epoch=7)
        assert merged["schema"] == EVENTS_SCHEMA
        stream = merged["events"]
        assert [e["ts"] for e in stream] == [1.0, 2.0, 3.0, 4.0]
        assert [e["worker"] for e in stream] == [
            "router", "w1", "router", "w1",
        ]
        assert all(e["epoch"] == 7 for e in stream)

    def test_record_epoch_wins_over_fleet_epoch(self):
        merged = merge_event_payloads(
            {"w0": _payload([_event(1.0, 1, epoch=3)])}, epoch=9,
        )
        assert merged["events"][0]["epoch"] == 3

    def test_tie_breaks_stable_by_worker_then_seq(self):
        merged = merge_event_payloads({
            "w1": _payload([_event(1.0, 2), _event(1.0, 1)]),
            "w0": _payload([_event(1.0, 5)]),
        })
        assert [(e["worker"], e["seq"]) for e in merged["events"]] == [
            ("w0", 5), ("w1", 1), ("w1", 2),
        ]

    def test_dead_source_is_a_labeled_gap(self):
        merged = merge_event_payloads({
            "w0": _payload([_event(1.0, 1)]),
            "w1": None,
        })
        assert merged["sources"]["w1"] == {"unreachable": True}
        assert merged["unreachable_sources"] == 1
        assert len(merged["events"]) == 1

    def test_limit_keeps_the_newest(self):
        merged = merge_event_payloads(
            {"w0": _payload([_event(float(i), i) for i in range(5)])},
            limit=2,
        )
        assert [e["ts"] for e in merged["events"]] == [3.0, 4.0]


# ---------------------------------------------------------------------------
# Fleet integration: stitching, differential, respawn, flight recorder
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_fleet():
    service = ShardedCampaignService(
        GRAPH,
        workers=2,
        spec=WorkerSpec(config=CONFIG, engine_mode="vectorized"),
        tracing=True,
    )
    yield service
    service.close()


@pytest.fixture(scope="module")
def plain_fleet():
    service = ShardedCampaignService(
        GRAPH,
        workers=2,
        spec=WorkerSpec(config=CONFIG, engine_mode="vectorized"),
    )
    yield service
    service.close()


class TestFleetStitching:
    def test_affinity_query_yields_one_stitched_trace(self, traced_fleet):
        response = handle_request(
            traced_fleet, copy.deepcopy(REQUESTS["find_seeds"])
        )
        assert response["ok"], response
        trace = traced_fleet.chrome_trace()
        # Affinity routes to exactly one worker: router + worker pids.
        _assert_stitched(
            [e for e in trace
             if e.get("ph") != "X"
             or e["args"]["trace_id"] == "t-000001"],
            min_pids=2,
        )
        names = {e["name"] for e in _complete_events(trace)}
        assert "serve.query" in names

    def test_scatter_covers_every_worker_in_one_trace(self, traced_fleet):
        response = handle_request(
            traced_fleet, copy.deepcopy(SCATTER_REQUEST)
        )
        assert response["ok"], response
        assert response["cache"] == "scatter"
        trace_id = sorted(traced_fleet._trace.trace_ids())[-1]
        trace = traced_fleet.chrome_trace(trace_id)
        # Router + both workers contribute spans to the single trace.
        _assert_stitched(trace, min_pids=3)
        names = {e["name"] for e in _complete_events(trace)}
        assert {"serve.query", "shard.build", "shard.pick"} <= names
        # Full document parses as Chrome trace JSON.
        parsed = json.loads(json.dumps(traced_fleet.chrome_trace()))
        assert any(
            e.get("ph") == "M" and e.get("name") == "process_name"
            for e in parsed
        )

    def test_wire_trace_and_flightrec_ops(self, traced_fleet):
        response = handle_request(traced_fleet, {"op": "trace"})
        assert response["ok"]
        assert response["schema"] == TRACE_SCHEMA
        assert response["enabled"] is True
        assert response["traces"] >= 1

        response = handle_request(traced_fleet, {"op": "flightrec"})
        assert response["ok"]
        assert response["schema"] == FLIGHT_SCHEMA

    def test_trace_off_serves_the_disabled_document(self, plain_fleet):
        response = handle_request(plain_fleet, {"op": "trace"})
        assert response["ok"]
        assert response["enabled"] is False
        assert plain_fleet.chrome_trace() == []

    def test_clock_offsets_measured_per_worker(self, traced_fleet):
        health = traced_fleet.health()
        assert health["tracing"] is True
        for worker in health["workers"].values():
            assert "clock_offset_ms" in worker
            # Offsets are one-way-latency biased: small and >= 0.
            assert 0.0 <= worker["clock_offset_ms"] < 1000.0


class TestTracingIsObservationOnly:
    @pytest.mark.parametrize("op", sorted(REQUESTS))
    def test_answers_and_work_counters_bit_identical(
        self, op, traced_fleet, plain_fleet
    ):
        request = REQUESTS[op]
        expected = handle_request(plain_fleet, copy.deepcopy(request))
        got = handle_request(traced_fleet, copy.deepcopy(request))
        assert expected["ok"] and got["ok"], (expected, got)
        assert _comparable(got) == _comparable(expected)
        assert _counters(got) == _counters(expected)

    def test_scatter_answers_bit_identical(self, traced_fleet, plain_fleet):
        expected = handle_request(plain_fleet, copy.deepcopy(SCATTER_REQUEST))
        got = handle_request(traced_fleet, copy.deepcopy(SCATTER_REQUEST))
        assert got["seeds"] == expected["seeds"]
        assert got["spread"] == expected["spread"]
        assert got["scatter"] == expected["scatter"]

    def test_replies_carry_no_span_residue(self, traced_fleet):
        response = handle_request(
            traced_fleet, copy.deepcopy(REQUESTS["spread"])
        )
        assert "_spans" not in response
        assert "_trace" not in response


class TestRespawnMidStream:
    def test_sigkill_still_yields_parseable_stitched_trace(self):
        service = ShardedCampaignService(
            GRAPH,
            workers=2,
            spec=WorkerSpec(config=CONFIG, engine_mode="vectorized"),
            tracing=True,
        )
        try:
            assert handle_request(
                service, copy.deepcopy(SCATTER_REQUEST)
            )["ok"]
            victim_pid = service.worker_pids()["w0"]
            os.kill(victim_pid, signal.SIGKILL)
            # The next query triggers detection + respawn + retry.
            response = handle_request(
                service, copy.deepcopy(SCATTER_REQUEST)
            )
            assert response["ok"], response
            deadline = time.monotonic() + 30.0
            while service.health()["workers"]["w0"]["respawns"] == 0:
                assert time.monotonic() < deadline, "respawn never happened"
                time.sleep(0.05)
            # The whole collector output still parses and stitches.
            trace = json.loads(json.dumps(service.chrome_trace()))
            spans = _complete_events(trace)
            assert spans
            for event in spans:
                assert event["ts"] >= 0 and event["dur"] >= 0
            # The respawned worker ships spans under its fresh clock:
            # a post-respawn query contributes its new pid.
            assert handle_request(
                service, copy.deepcopy(SCATTER_REQUEST)
            )["ok"]
            new_pid = service.worker_pids()["w0"]
            assert new_pid != victim_pid
            pids = {e["pid"] for e in
                    _complete_events(service.chrome_trace())}
            assert new_pid in pids
            offset = service.health()["workers"]["w0"]["clock_offset_ms"]
            assert 0.0 <= offset < 1000.0
        finally:
            service.close()


class TestFleetFlightRecorder:
    def test_rejection_and_deadline_miss_are_recorded(self, traced_fleet):
        before = traced_fleet.flightrec.payload()["total"]
        request = {
            **copy.deepcopy(REQUESTS["find_seeds"]),
            "deadline": 1e-9,
        }
        response = handle_request(traced_fleet, request)
        assert not response["ok"]
        payload = traced_fleet.flightrec.payload()
        assert payload["total"] > before
        record = payload["records"][-1]
        assert record["reason"] in ("rejected", "deadline_miss")
        assert record["op"] == "find_seeds"
        assert record["trace_id"]

    def test_validation_errors_are_not_flight_worthy(self, traced_fleet):
        before = traced_fleet.flightrec.payload()["total"]
        response = handle_request(traced_fleet, {
            "op": "find_seeds", "targets": TARGETS, "tags": ["nope"],
            "k": 2, "engine": "trs", "seed": 0,
        })
        assert not response["ok"]
        assert traced_fleet.flightrec.payload()["total"] == before


# ---------------------------------------------------------------------------
# HTTP surface: /trace and /debug/slow
# ---------------------------------------------------------------------------


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.read().decode("utf-8")


class TestHttpSurface:
    def test_trace_and_debug_slow_routes(self):
        server = CampaignServer(
            GRAPH, config=CONFIG, pool_size=2, tracing=True,
            qos=QosConfig(flight_slow_ms=0.0),
        )
        try:
            assert handle_request(
                server, copy.deepcopy(REQUESTS["find_seeds"])
            )["ok"]
            with TelemetryEndpoint(server) as endpoint:
                status, body = _get(endpoint.url + "/trace")
                assert status == 200
                payload = json.loads(body)
                assert payload["schema"] == TRACE_SCHEMA
                assert payload["enabled"] is True
                assert payload["events"]

                # slow_ms=0 makes every completed query flight-worthy.
                status, body = _get(endpoint.url + "/debug/slow")
                assert status == 200
                flight = json.loads(body)
                assert flight["schema"] == FLIGHT_SCHEMA
                assert flight["records"]
                assert flight["records"][-1]["reason"] == "slow"

                status, body = _get(endpoint.url + "/debug/slow?limit=1")
                assert len(json.loads(body)["records"]) == 1
        finally:
            server.close()

    def test_untraced_server_serves_disabled_trace(self):
        server = CampaignServer(GRAPH, config=CONFIG, pool_size=2)
        try:
            with TelemetryEndpoint(server) as endpoint:
                status, body = _get(endpoint.url + "/trace")
                assert status == 200
                payload = json.loads(body)
                assert payload["enabled"] is False

                status, body = _get(endpoint.url + "/debug/slow")
                assert status == 200
                assert json.loads(body)["schema"] == FLIGHT_SCHEMA
        finally:
            server.close()
