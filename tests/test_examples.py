"""Smoke tests for the example scripts.

Full runs take tens of seconds each, so the unit suite only verifies
that every example parses, imports, and exposes a ``main`` callable —
the full executions are exercised manually / by CI jobs with more time.
"""

from __future__ import annotations

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 4  # quickstart + ≥3 scenario examples


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_parses(path):
    ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_importable_with_main(path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None))


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_has_docstring_and_run_line(path):
    source = path.read_text(encoding="utf-8")
    module = ast.parse(source)
    doc = ast.get_docstring(module)
    assert doc, f"{path.name} lacks a module docstring"
    assert "Run:" in doc, f"{path.name} docstring lacks a Run: line"
    assert '__main__' in source
