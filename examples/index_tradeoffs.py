#!/usr/bin/env python
"""Compare the seed-finding engines: TRS vs I-TRS vs L-TRS vs LL-TRS.

Reproduces the paper's Section 3 systems story on one dataset: the
index-based engines trade index build cost for cheaper, reusable query
processing, local indexing shrinks the index dramatically when targets
are clustered, and all engines land on seed sets of similar quality.

Run:  python examples/index_tradeoffs.py
"""

from __future__ import annotations

from repro import SketchConfig, estimate_spread
from repro.datasets import community_targets, yelp
from repro.index import (
    indexed_select_seeds,
    make_itrs_manager,
    make_lltrs_manager,
    make_ltrs_manager,
)
from repro.sketch import trs_select_seeds

SKETCH = SketchConfig(pilot_samples=150, theta_min=500, theta_max=2500)
K = 5


def main() -> None:
    data = yelp(scale=0.3, seed=13)
    targets = community_targets(data, "toronto", size=50, rng=0)
    tags = list(data.graph.tags[:8])
    print(
        f"Dataset: {data.graph.num_nodes} nodes / {data.graph.num_edges} "
        f"edges; {len(targets)} targets; {len(tags)} campaign tags\n"
    )

    rows = []

    trs = trs_select_seeds(data.graph, targets, tags, K, SKETCH, rng=0)
    rows.append(("TRS (no index)", trs.seeds, trs.elapsed_seconds, 0, 0.0))

    managers = {
        "I-TRS (eager index)": make_itrs_manager(
            data.graph, theta=SKETCH.theta_max, r=len(tags),
            config=SKETCH, rng=0,
        ),
        "L-TRS (lazy index)": make_ltrs_manager(data.graph),
        "LL-TRS (lazy+local)": make_lltrs_manager(data.graph, targets, SKETCH),
    }
    for name, mgr in managers.items():
        result = indexed_select_seeds(
            data.graph, targets, tags, K, mgr, SKETCH, rng=0
        )
        rows.append(
            (
                name,
                result.seeds,
                result.query_seconds,
                result.index_stats.size_bytes,
                result.index_stats.build_seconds,
            )
        )

    print(
        f"{'engine':<22}{'query s':>9}{'index KB':>10}{'build s':>9}"
        f"{'MC spread':>11}"
    )
    for name, seeds, query_s, size_b, build_s in rows:
        spread = estimate_spread(
            data.graph, seeds, targets, tags, num_samples=400, rng=7
        )
        print(
            f"{name:<22}{query_s:>9.2f}{size_b / 1024:>10.1f}"
            f"{build_s:>9.2f}{spread:>11.2f}"
        )

    print(
        "\nExpected shape: similar spreads everywhere; I-TRS pays the "
        "largest index; LL-TRS's local index is a fraction of L-TRS's."
    )


if __name__ == "__main__":
    main()
