#!/usr/bin/env python
"""End-to-end: learn edge probabilities from raw logs, then campaign.

The paper's datasets start from raw behaviour (reviews, listens,
retweets); the tag-conditional probabilities are *estimated* before any
influence maximization happens. This example walks the whole pipeline:

1. take a ground-truth graph (pretend it is the real world),
2. observe only raw time-stamped adoptions (simulated cascades),
3. learn a TagGraph from the log + the friendship list,
4. run the joint seed/tag optimizer on the *learned* graph,
5. score the resulting plan against the ground truth.

Run:  python examples/learn_from_logs.py
"""

from __future__ import annotations

from repro import (
    JointConfig,
    JointQuery,
    SketchConfig,
    TagSelectionConfig,
    estimate_spread,
    jointly_select,
)
from repro.datasets import bfs_targets, lastfm
from repro.learning import LearningConfig, learn_tag_graph, simulate_interaction_log


def main() -> None:
    print("Ground truth: the lastFM analogue (hidden from the campaigner).")
    truth = lastfm(scale=0.5, seed=7).graph
    print(
        f"  {truth.num_nodes} users, {truth.num_edges} edges, "
        f"{truth.num_tags} music styles"
    )

    print("\nObserving 400 listening cascades ...")
    log = simulate_interaction_log(
        truth, num_episodes=400, delay_scale=1.0, spontaneous_rate=0.1,
        rng=0,
    )
    print(f"  {len(log)} time-stamped adoptions across {len(log.tags)} styles")

    friendships = {
        (int(truth.src[e]), int(truth.dst[e]))
        for e in range(truth.num_edges)
    }
    learned = learn_tag_graph(
        log, friendships, num_nodes=truth.num_nodes,
        config=LearningConfig(window=20.0, a=3.0),
    )
    print(
        f"\nLearned graph: {learned.num_edges} directed edges over "
        f"{learned.num_tags} styles "
        f"({100.0 * learned.num_edges / max(truth.num_edges, 1):.0f}% of "
        "true edges recovered)"
    )

    targets = bfs_targets(truth, 30)
    query = JointQuery(targets, k=4, r=4)
    cfg = JointConfig(
        max_rounds=2,
        sketch=SketchConfig(pilot_samples=100, theta_min=300, theta_max=1500),
        tag_config=TagSelectionConfig(per_pair_paths=4, max_path_targets=25),
        eval_samples=150,
    )
    print("\nOptimizing the campaign on the LEARNED graph ...")
    plan = jointly_select(learned, query, cfg, rng=0)
    print(f"  seeds: {list(plan.seeds)}")
    print(f"  styles: {', '.join(plan.tags)}")

    truth_spread = estimate_spread(
        truth, plan.seeds, targets, [t for t in plan.tags if truth.has_tag(t)],
        num_samples=400, rng=9,
    )
    oracle = jointly_select(truth, query, cfg, rng=0)
    oracle_spread = estimate_spread(
        truth, oracle.seeds, targets, oracle.tags, num_samples=400, rng=9
    )
    print(
        f"\nGround-truth spread of the learned plan: {truth_spread:.1f} / "
        f"{len(targets)}"
    )
    print(
        f"Ground-truth spread of the oracle plan:   {oracle_spread:.1f} / "
        f"{len(targets)}"
    )
    ratio = 100.0 * truth_spread / max(oracle_spread, 1e-9)
    print(f"The learned plan captures {ratio:.0f}% of the oracle plan's spread.")


if __name__ == "__main__":
    main()
