#!/usr/bin/env python
"""The paper's case study (Table 1 / Figure 2): city-specific tags.

For each city in the Yelp analogue, find the top tags for maximizing
influence among that city's users, then show (a) that the chosen tags
differ per city — entertainment for Vegas, food for Pittsburgh — and
(b) that a city's optimal tag set underperforms when transplanted to
another city.

Run:  python examples/city_campaign.py
"""

from __future__ import annotations

from repro import SketchConfig, TagSelectionConfig, estimate_spread, find_seeds, find_tags
from repro.datasets import community_targets, yelp

SKETCH = SketchConfig(pilot_samples=150, theta_min=400, theta_max=2000)
TAGS_CFG = TagSelectionConfig(per_pair_paths=5, max_path_targets=40)
K, R = 5, 5
TARGET_SIZE = 50


def optimize_city(data, city: str):
    targets = community_targets(data, city, size=TARGET_SIZE, rng=0)
    seeds = find_seeds(
        data.graph, targets, data.graph.tags, K,
        engine="lltrs", config=SKETCH, rng=0,
    ).seeds
    tags = find_tags(
        data.graph, seeds, targets, R,
        method="batch", config=TAGS_CFG, rng=0,
    ).tags
    return targets, seeds, tags


def main() -> None:
    data = yelp(scale=0.3, seed=13)
    cities = data.community_names

    print("Top tags per target city (paper Table 1 analogue)")
    print("=" * 60)
    plans = {}
    for city in cities:
        targets, seeds, tags = optimize_city(data, city)
        plans[city] = (targets, seeds, tags)
        print(f"\n{city.capitalize():<12}: {', '.join(tags)}")

    print("\n\nCross-city tag transfer (paper Figure 2 analogue)")
    print("=" * 60)
    label = "targets / tags"
    header = f"{label:<16}" + "".join(f"{c:>12}" for c in cities)
    print(header)
    for target_city in cities:
        targets, seeds, _ = plans[target_city]
        row = f"{target_city:<16}"
        for tag_city in cities:
            _, _, tags = plans[tag_city]
            spread = estimate_spread(
                data.graph, seeds, targets, tags,
                num_samples=300, rng=1,
            )
            row += f"{100.0 * spread / len(targets):>11.1f}%"
        print(row)
    print(
        "\nDiagonal entries (a city evaluated with its own tags) should "
        "dominate their rows."
    )


if __name__ == "__main__":
    main()
