#!/usr/bin/env python
"""Benefit-weighted campaign: targets carry revenue, not just headcount.

Extension example (see docs/paper_mapping.md): each target customer has
an expected revenue; the campaigner maximizes expected total revenue
rather than the number of influenced targets. High-value targets pull
the seed selection toward their own neighbourhoods — this example makes
the effect visible by assigning one city's customers 10× the value of
another's, and also cross-checks the IC result against the Linear
Threshold diffusion extension.

Run:  python examples/revenue_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import SketchConfig
from repro.core import estimate_weighted_spread, weighted_trs_select_seeds
from repro.datasets import community_targets, yelp
from repro.diffusion import estimate_lt_spread, estimate_spread

SKETCH = SketchConfig(pilot_samples=150, theta_min=500, theta_max=2500)
K = 5


def main() -> None:
    data = yelp(scale=0.3, seed=13)
    tags = list(data.graph.tags[:8])

    vegas = community_targets(data, "vegas", size=40, rng=0)
    pittsburgh = community_targets(data, "pittsburgh", size=40, rng=0)

    print("Scenario: 40 Vegas customers worth $10 each,")
    print("          40 Pittsburgh customers worth $1 each.\n")
    benefits: dict[int, float] = {}
    for v in vegas:
        benefits[int(v)] = 10.0
    for v in pittsburgh:
        benefits[int(v)] = 1.0

    weighted = weighted_trs_select_seeds(
        data.graph, benefits, tags, K, SKETCH, rng=0
    )
    print(f"Revenue-weighted seeds: {list(weighted.seeds)}")
    print(f"Expected revenue: ${weighted.estimated_benefit:.1f} "
          f"of ${sum(benefits.values()):.0f} possible")

    verified = estimate_weighted_spread(
        data.graph, weighted.seeds, benefits, tags,
        num_samples=400, rng=7,
    )
    print(f"MC-verified expected revenue: ${verified:.1f}")

    # Where do the seeds sit? High-value Vegas should dominate.
    seed_cities = [
        data.community_names[data.communities[s]] for s in weighted.seeds
    ]
    print(f"Seed cities: {seed_cities}")

    # Contrast: unweighted (headcount) objective over the same targets.
    from repro.sketch import trs_select_seeds

    all_targets = np.concatenate([vegas, pittsburgh])
    plain = trs_select_seeds(
        data.graph, all_targets, tags, K, SKETCH, rng=0
    )
    plain_revenue = estimate_weighted_spread(
        data.graph, plain.seeds, benefits, tags, num_samples=400, rng=7
    )
    print(
        f"\nHeadcount-optimal seeds capture ${plain_revenue:.1f} — "
        f"{'less' if plain_revenue < verified else 'about the same'} "
        "revenue than the weighted objective."
    )

    # Diffusion-model cross-check: IC vs Linear Threshold.
    ic = estimate_spread(
        data.graph, weighted.seeds, vegas, tags, num_samples=400, rng=9
    )
    lt = estimate_lt_spread(
        data.graph, weighted.seeds, vegas, tags, num_samples=400, rng=9
    )
    print(
        f"\nVegas spread under IC: {ic:.1f} / {len(vegas)}; "
        f"under LT (normalized weights): {lt:.1f} / {len(vegas)}"
    )


if __name__ == "__main__":
    main()
