#!/usr/bin/env python
"""Quickstart: jointly find seeds and tags for a city-targeted campaign.

Builds the Yelp analogue dataset, targets the users of one city, and
runs the paper's iterative algorithm (Algorithm 2) with the recommended
RS + FT initialization. Finishes in well under a minute.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    JointConfig,
    JointQuery,
    SketchConfig,
    TagSelectionConfig,
    estimate_spread,
    jointly_select,
)
from repro.datasets import community_targets, yelp


def main() -> None:
    print("Building the Yelp analogue dataset ...")
    data = yelp(scale=0.3, seed=13)
    chars = data.characteristics()
    print(
        f"  {chars['nodes']} users, {chars['edges']} influence edges, "
        f"{chars['tags']} business-category tags "
        f"(mean edge probability {chars['prob_mean']:.2f})"
    )

    city = "vegas"
    targets = community_targets(data, city, size=60, rng=0)
    print(f"\nTarget customers: {len(targets)} users in {city!r}")

    query = JointQuery(targets, k=5, r=5)
    config = JointConfig(
        max_rounds=3,
        sketch=SketchConfig(pilot_samples=150, theta_min=500, theta_max=3000),
        tag_config=TagSelectionConfig(per_pair_paths=5, max_path_targets=40),
        eval_samples=200,
    )

    print(f"Jointly optimizing top-{query.k} seeds and top-{query.r} tags ...")
    result = jointly_select(data.graph, query, config, rng=0)

    print(f"\nConverged: {result.converged} after {result.rounds} round(s)")
    print("Optimization trajectory (half-iterations):")
    for entry in result.history:
        pct = 100.0 * entry.spread / query.num_targets
        print(f"  step {entry.step:>4}: spread {entry.spread:6.2f} ({pct:5.1f}%)")
    from repro.analysis import sparkline

    print(f"  trajectory: {sparkline([h.spread for h in result.history])}")

    print(f"\nSelected seeds: {list(result.seeds)}")
    print("Selected tags:")
    for tag in result.tags:
        print(f"  - {tag}")

    verified = estimate_spread(
        data.graph, result.seeds, targets, result.tags,
        num_samples=500, rng=99,
    )
    print(
        f"\nIndependently verified spread: {verified:.2f} of "
        f"{query.num_targets} targets "
        f"({100.0 * verified / query.num_targets:.1f}%)"
    )


if __name__ == "__main__":
    main()
