#!/usr/bin/env python
"""The paper's election scenario: limited talking points, swing-state voters.

The introduction motivates the problem with a political campaign: a
candidate has many possible standpoints (tags), speeches must stay
focused (small r), and the votes that matter are in specific swing
regions (the target set). This example models that with the Twitter
analogue: three "swing" communities as targets, hashtags as standpoints,
and a comparison of the iterative algorithm against the interleaved
baseline (the paper's Figures 13–14 in miniature).

Run:  python examples/election_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BaselineConfig,
    JointConfig,
    JointQuery,
    SketchConfig,
    TagSelectionConfig,
    baseline_greedy,
    jointly_select,
)
from repro.datasets import twitter


def main() -> None:
    print("Building the Twitter analogue (hashtags as standpoints) ...")
    data = twitter(scale=0.3, seed=17)
    print(
        f"  {data.graph.num_nodes} accounts, {data.graph.num_edges} "
        f"retweet edges, {data.graph.num_tags} hashtags"
    )

    # Swing regions: three communities, sampled voters from each.
    rng = np.random.default_rng(0)
    swing = ("cluster-2", "cluster-5", "cluster-7")
    voters: list[int] = []
    for name in swing:
        members = data.community_members(name)
        chosen = rng.choice(members, size=min(25, members.size), replace=False)
        voters.extend(int(v) for v in chosen)
    print(f"Swing voters targeted: {len(voters)} across {swing}")

    query = JointQuery(voters, k=8, r=6)
    sketch = SketchConfig(pilot_samples=150, theta_min=500, theta_max=2500)
    tag_cfg = TagSelectionConfig(per_pair_paths=5, max_path_targets=40)

    print(f"\nIterative algorithm (k={query.k} influencers, r={query.r} standpoints):")
    iterative = jointly_select(
        data.graph, query,
        JointConfig(
            max_rounds=3, sketch=sketch, tag_config=tag_cfg,
            eval_samples=200,
        ),
        rng=0,
    )
    pct = 100.0 * iterative.spread / query.num_targets
    print(f"  reached {iterative.spread:.1f} / {query.num_targets} voters ({pct:.1f}%)")
    print(f"  rounds: {iterative.rounds}, converged: {iterative.converged}")
    print(f"  standpoints: {', '.join(iterative.tags)}")

    print("\nBaseline interleaved greedy (Section 5.1):")
    base = baseline_greedy(
        data.graph, query,
        BaselineConfig(rr_samples=400, eval_samples=100, sketch=sketch),
        rng=0,
    )
    pct = 100.0 * base.spread / query.num_targets
    print(f"  reached {base.spread:.1f} / {query.num_targets} voters ({pct:.1f}%)")
    print(f"  standpoints: {', '.join(base.tags)}")

    winner = "iterative" if iterative.spread >= base.spread else "baseline"
    print(f"\nLarger expected spread: {winner}")


if __name__ == "__main__":
    main()
