#!/usr/bin/env python
"""Serving many campaigns from one server with cross-query reuse.

Spins up a :class:`~repro.serve.CampaignServer` over the Yelp analogue
dataset and plays three marketing teams against it concurrently. Each
team runs its own campaign (seed selection, tag discovery, spread
checks), and the server shares the expensive targeted RR sketches
between them — the demo prints the cold/warm latency gap and the cache
accounting that explains it, then shows two connected sessions
replaying identical, cache-shared query streams.

Run:  python examples/serving_campaigns.py
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro import CampaignServer, CampaignSession
from repro.datasets import bfs_targets, yelp


def run_team(server: CampaignServer, name: str, targets, tags, k: int):
    """One team's campaign: pick seeds, then sanity-check their spread."""
    seeds = server.find_seeds(targets, tags, k, engine="trs", seed=0)
    spread = server.estimate_spread(
        seeds.value.seeds, targets, tags, seed=0
    )
    return name, seeds, spread


def main() -> None:
    print("Building the Yelp analogue dataset ...")
    data = yelp(scale=0.4, seed=13)
    graph = data.graph
    targets = [int(t) for t in bfs_targets(graph, 50)]
    print(f"  {graph.num_nodes} users, {len(targets)} campaign targets")

    with CampaignServer(graph, pool_size=4) as server:
        # --- three teams, two of which want the same audience ----------
        campaigns = [
            ("team-a", targets, [graph.tags[0], graph.tags[1]], 5),
            ("team-b", targets, [graph.tags[1], graph.tags[0]], 5),
            ("team-c", targets, [graph.tags[2]], 3),
        ]
        print("\nServing three teams concurrently ...")
        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [
                pool.submit(run_team, server, *campaign)
                for campaign in campaigns
            ]
            results = [f.result() for f in futures]

        for name, seeds, spread in sorted(results):
            print(
                f"  {name}: seeds={list(seeds.value.seeds)} "
                f"spread={spread.value:.2f} "
                f"(seed query: {seeds.cache}, "
                f"{seeds.elapsed_seconds * 1e3:.1f} ms)"
            )

        # team-a and team-b queried the same (targets, tag set, params):
        # the server built that sketch once and both answers share it.
        stats = server.cache_stats()
        print(
            f"\nCache after the fan-out: {stats.builds} builds, "
            f"{stats.hits} hits, {stats.singleflight_joins} "
            f"single-flight joins, {stats.bytes / 1024:.0f} KiB pinned"
        )

        # --- warm repeat: the latency the cache buys --------------------
        name = campaigns[0][0]
        cold_ms = next(
            r[1].elapsed_seconds for r in results if r[0] == name
        ) * 1e3
        warm = server.find_seeds(
            targets, campaigns[0][2], 5, engine="trs", seed=0
        )
        print(
            f"\n{name} repeats its query: cache={warm.cache}, "
            f"{warm.elapsed_seconds * 1e3:.1f} ms "
            f"(cold was {cold_ms:.1f} ms → "
            f"{cold_ms / max(warm.elapsed_seconds * 1e3, 1e-6):.0f}x)"
        )

        # --- connected sessions: deterministic, cache-shared streams ----
        print("\nTwo sessions with the same base seed replay identically:")
        first = CampaignSession.connect(server, seed=42)
        second = CampaignSession.connect(server, seed=42)
        sel_1 = first.seeds(targets, campaigns[2][2], k=3)
        sel_2 = second.seeds(targets, campaigns[2][2], k=3)
        assert sel_1.seeds == sel_2.seeds
        print(
            f"  both chose {list(sel_1.seeds)} — the second answered "
            "from cache"
        )

        counters = server.metrics()["counters"]
        print(
            f"\nServer totals: {counters['serve.queries']} queries, "
            f"{counters['serve.cache.builds']} asset builds"
        )


if __name__ == "__main__":
    main()
