"""Figure 14 — spread and running time vs tag budget r (DBLP, Yelp).

Paper claims: spread grows with r and flattens once the few important
tags are in (top-20 tags already influence ~70 % of Yelp targets);
iterative beats the greedy baseline throughout; running time grows
fastest at small r.
"""

from __future__ import annotations

from benchmarks._harness import (
    SKETCH,
    TAGS_CFG,
    dataset,
    emit,
    print_table,
    spread_pct,
)
from repro import BaselineConfig, JointConfig, JointQuery, baseline_greedy, jointly_select
from repro.datasets import bfs_targets

R_SWEEP = (2, 5, 8, 12)
K, TARGET_SIZE = 10, 50

JOINT = JointConfig(
    max_rounds=3, sketch=SKETCH, tag_config=TAGS_CFG, eval_samples=150
)
BASE = BaselineConfig(rr_samples=300, eval_samples=80, sketch=SKETCH)


def _sweep(name: str):
    data = dataset(name)
    targets = bfs_targets(data.graph, TARGET_SIZE)
    rows = []
    wins = 0
    for r in R_SWEEP:
        query = JointQuery(targets, k=K, r=r)
        iterative = jointly_select(data.graph, query, JOINT, rng=0)
        base = baseline_greedy(data.graph, query, BASE, rng=0)
        if iterative.spread >= base.spread:
            wins += 1
        rows.append(
            [r,
             spread_pct(base.spread, TARGET_SIZE),
             spread_pct(iterative.spread, TARGET_SIZE),
             base.elapsed_seconds, iterative.elapsed_seconds]
        )
    print_table(
        f"Figure 14 ({name}): spread %, time (s) vs #tags (k={K})",
        ["r", "greedy %", "iterative %", "greedy s", "iterative s"],
        rows,
    )
    return rows, wins


def test_fig14_vary_tag_budget(benchmark):
    total_wins = 0
    grows = True
    for name in ("dblp", "yelp"):
        rows, wins = _sweep(name)
        total_wins += wins
        spreads = [row[2] for row in rows]
        if spreads[-1] < spreads[0] - 5.0:
            grows = False
    emit(
        f"\nShape check: iterative ≥ greedy in {total_wins}/"
        f"{2 * len(R_SWEEP)} points; spread grows with r and flattens."
    )
    assert total_wins >= len(R_SWEEP)
    assert grows

    data = dataset("yelp")
    targets = bfs_targets(data.graph, TARGET_SIZE)
    benchmark.pedantic(
        lambda: jointly_select(
            data.graph, JointQuery(targets, k=K, r=R_SWEEP[0]), JOINT, rng=0
        ),
        rounds=1, iterations=1,
    )
