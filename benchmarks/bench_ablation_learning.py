"""Ablation — probability learning fidelity (the §2.1/§6.1 preprocessing).

Not a paper figure: the paper learns ``P(e | c)`` from behaviour logs
before optimizing; this ablation quantifies how much campaign quality
survives the estimation step. A ground-truth graph generates cascade
logs; the temporal-credit estimator learns a graph from them; the same
joint query is optimized on both; both plans are scored on the ground
truth. Expected shape: the learned plan's true spread approaches the
oracle plan's as the log grows.
"""

from __future__ import annotations

from benchmarks._harness import emit, print_table
from repro import JointConfig, JointQuery, SketchConfig, TagSelectionConfig, jointly_select
from repro.datasets import bfs_targets, lastfm
from repro.diffusion import estimate_spread
from repro.learning import LearningConfig, learn_tag_graph, simulate_interaction_log

EPISODES = (50, 200, 600)
K, R, TARGET_SIZE = 4, 4, 30

CFG = JointConfig(
    max_rounds=2,
    sketch=SketchConfig(pilot_samples=100, theta_min=300, theta_max=1200),
    tag_config=TagSelectionConfig(per_pair_paths=4, max_path_targets=25),
    eval_samples=120,
)


def test_ablation_learning_fidelity(benchmark):
    truth = lastfm(scale=0.5, seed=7).graph
    targets = bfs_targets(truth, TARGET_SIZE)
    query = JointQuery(targets, k=K, r=R)
    friendships = [
        (int(truth.src[e]), int(truth.dst[e]))
        for e in range(truth.num_edges)
    ]

    oracle = jointly_select(truth, query, CFG, rng=0)
    oracle_spread = estimate_spread(
        truth, oracle.seeds, targets, oracle.tags, num_samples=400, rng=9
    )

    rows = []
    ratios = []
    for episodes in EPISODES:
        log = simulate_interaction_log(truth, episodes, rng=0)
        learned = learn_tag_graph(
            log, friendships, num_nodes=truth.num_nodes,
            config=LearningConfig(window=20.0, a=3.0),
        )
        plan = jointly_select(learned, query, CFG, rng=0)
        usable_tags = [t for t in plan.tags if truth.has_tag(t)]
        true_spread = (
            estimate_spread(
                truth, plan.seeds, targets, usable_tags,
                num_samples=400, rng=9,
            )
            if usable_tags
            else 0.0
        )
        ratio = true_spread / max(oracle_spread, 1e-9)
        ratios.append(ratio)
        rows.append(
            [episodes, learned.num_edges, true_spread,
             100.0 * ratio]
        )

    rows.append(["oracle", truth.num_edges, oracle_spread, 100.0])
    print_table(
        "Ablation: campaign quality on graphs learned from cascade logs",
        ["episodes", "#edges", "true spread", "% of oracle"],
        rows,
    )
    emit(
        "\nShape check: more observed cascades → learned plans approach "
        "the oracle plan's ground-truth spread."
    )
    assert ratios[-1] >= ratios[0] - 0.05
    assert ratios[-1] >= 0.6

    benchmark.pedantic(
        lambda: simulate_interaction_log(truth, EPISODES[0], rng=0),
        rounds=1, iterations=1,
    )
