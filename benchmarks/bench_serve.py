"""Serving-layer benchmark: cold vs warm query latency + cache metrics.

Measures what the serving layer is *for* — cross-query asset reuse.
For each config a fresh :class:`~repro.serve.CampaignServer` answers
the same seed-selection query repeatedly:

* **cold** — the first query builds the targeted RR sketch (miss);
* **warm** — repeats are answered from the cached sketch with only the
  deterministic greedy-cover pass (hit).

Also times a mixed four-op workload replayed twice (second pass fully
warm) and snapshots the ``serve.cache.*`` counters. Writes
``BENCH_serve.json`` at the repo root and prints a table. Usage::

    PYTHONPATH=src:. python benchmarks/bench_serve.py --quick
    PYTHONPATH=src:. python benchmarks/bench_serve.py --quick \
        --min-speedup 5.0   # CI gate: exit 1 if warm-over-cold falls below
"""

from __future__ import annotations

import argparse
import json
import statistics
from pathlib import Path

from repro.core.joint import JointConfig
from repro.datasets import bfs_targets, twitter, yelp
from repro.serve import CampaignServer
from repro.sketch.theta import SketchConfig

#: (label, factory, scale, k) — the *last* entry is the gated one.
QUICK_CONFIGS = [
    ("yelp-0.5", yelp, 0.5, 5),
    ("twitter-1.0", twitter, 1.0, 5),
]
FULL_CONFIGS = QUICK_CONFIGS + [
    ("twitter-2.0", twitter, 2.0, 10),
]


def _bench_config(label, factory, scale, k, warm_repeats):
    data = factory(scale=scale, seed=13)
    graph = data.graph
    targets = [int(t) for t in bfs_targets(graph, min(60, graph.num_nodes))]
    tags = list(graph.tags[:3])
    config = JointConfig(sketch=SketchConfig())

    with CampaignServer(graph, config=config, pool_size=2) as server:
        cold = server.find_seeds(targets, tags, k, engine="trs", seed=0)
        warm_times = []
        for _ in range(warm_repeats):
            warm = server.find_seeds(targets, tags, k, engine="trs", seed=0)
            assert warm.cache == "hit"
            assert warm.value.seeds == cold.value.seeds
            warm_times.append(warm.elapsed_seconds)
        warm_s = statistics.median(warm_times)

        # Mixed workload: second pass is fully warm.
        def replay():
            elapsed = 0.0
            for op in (
                lambda: server.find_seeds(
                    targets, tags, k, engine="trs", seed=0
                ),
                lambda: server.find_seeds(
                    targets, tags, k, engine="lltrs", seed=0
                ),
                lambda: server.find_tags(
                    cold.value.seeds, targets, 2, seed=0
                ),
                lambda: server.estimate_spread(
                    cold.value.seeds, targets, tags, seed=0
                ),
            ):
                elapsed += op().elapsed_seconds
            return elapsed

        mixed_first = replay()
        mixed_second = replay()
        stats = server.cache_stats()
        metrics = server.metrics()

    speedup = cold.elapsed_seconds / max(warm_s, 1e-9)
    return {
        "config": label,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "k": k,
        "num_targets": len(targets),
        "cold_s": cold.elapsed_seconds,
        "warm_median_s": warm_s,
        "warm_over_cold_speedup": round(speedup, 2),
        "mixed_workload_first_pass_s": mixed_first,
        "mixed_workload_warm_pass_s": mixed_second,
        "mixed_speedup": round(mixed_first / max(mixed_second, 1e-9), 2),
        "serve_cache": stats.as_dict(),
        "serve_counters": {
            name: value
            for name, value in metrics["counters"].items()
            if name.startswith("serve.")
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--warm-repeats", type=int, default=10)
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help=(
            "exit 1 unless the largest config's warm-over-cold speedup "
            "meets this floor"
        ),
    )
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args()

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    results = [
        _bench_config(label, factory, scale, k, args.warm_repeats)
        for label, factory, scale, k in configs
    ]

    header = (
        f"{'config':<14} {'cold s':>9} {'warm s':>9} "
        f"{'speedup':>8} {'mixed':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in results:
        print(
            f"{row['config']:<14} {row['cold_s']:>9.4f} "
            f"{row['warm_median_s']:>9.4f} "
            f"{row['warm_over_cold_speedup']:>7.1f}x "
            f"{row['mixed_speedup']:>6.1f}x"
        )

    payload = {
        "quick": args.quick,
        "warm_repeats": args.warm_repeats,
        "results": results,
    }
    Path(args.output).write_text(
        json.dumps(payload, indent=1), encoding="utf-8"
    )
    print(f"\nwrote {args.output}")

    if args.min_speedup is not None:
        gated = results[-1]["warm_over_cold_speedup"]
        if gated < args.min_speedup:
            print(
                f"FAIL: warm-over-cold speedup {gated:.1f}x "
                f"< required {args.min_speedup:.1f}x"
            )
            return 1
        print(
            f"gate OK: {gated:.1f}x >= {args.min_speedup:.1f}x "
            f"({results[-1]['config']})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
