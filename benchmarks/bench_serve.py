"""Serving-layer benchmark: cold vs warm query latency + cache metrics.

Measures what the serving layer is *for* — cross-query asset reuse.
For each config a fresh :class:`~repro.serve.CampaignServer` answers
the same seed-selection query repeatedly:

* **cold** — the first query builds the targeted RR sketch (miss);
* **warm** — repeats are answered from the cached sketch with only the
  deterministic greedy-cover pass (hit).

Also times a mixed four-op workload replayed twice (second pass fully
warm), snapshots the ``serve.cache.*`` counters and per-op
p50/p95/p99 latency quantiles, and runs a **concurrent duplicate
burst** against a fresh server — many identical cold queries in
flight at once — so single-flight joins are actually exercised
(``singleflight_joins`` must come out positive; exactly one build).

A **sharded scaling leg** then replays one concurrent burst of
*distinct* cold queries against the multi-process
:class:`~repro.serve.ShardedCampaignService` at 1/2/4 workers. The
burst is placement-balanced (seeds are chosen so the consistent-hash
ring assigns each fleet an equal share — ring *balance* is covered by
the property tests; this leg isolates compute scaling) and every
fleet's answers must be bit-identical to the 1-worker fleet's.
``speedup_4w`` is gated in CI.

Writes ``BENCH_serve.json`` at the repo root and prints a table.
``scripts/check_bench.py`` validates the written file in CI. Usage::

    PYTHONPATH=src:. python benchmarks/bench_serve.py --quick
    PYTHONPATH=src:. python benchmarks/bench_serve.py --quick \
        --min-speedup 5.0   # CI gate: exit 1 if warm-over-cold falls below
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.core.joint import JointConfig
from repro.datasets import bfs_targets, twitter, yelp
from repro.serve import CampaignServer
from repro.sketch.theta import SketchConfig

#: (label, factory, scale, k) — the *last* entry is the gated one.
QUICK_CONFIGS = [
    ("yelp-0.5", yelp, 0.5, 5),
    ("twitter-1.0", twitter, 1.0, 5),
]
FULL_CONFIGS = QUICK_CONFIGS + [
    ("twitter-2.0", twitter, 2.0, 10),
]


def _bench_config(label, factory, scale, k, warm_repeats):
    data = factory(scale=scale, seed=13)
    graph = data.graph
    targets = [int(t) for t in bfs_targets(graph, min(60, graph.num_nodes))]
    tags = list(graph.tags[:3])
    config = JointConfig(sketch=SketchConfig())

    with CampaignServer(graph, config=config, pool_size=2) as server:
        cold = server.find_seeds(targets, tags, k, engine="trs", seed=0)
        warm_times = []
        for _ in range(warm_repeats):
            warm = server.find_seeds(targets, tags, k, engine="trs", seed=0)
            assert warm.cache == "hit"
            assert warm.value.seeds == cold.value.seeds
            warm_times.append(warm.elapsed_seconds)
        warm_s = statistics.median(warm_times)

        # Mixed workload: second pass is fully warm.
        def replay():
            elapsed = 0.0
            for op in (
                lambda: server.find_seeds(
                    targets, tags, k, engine="trs", seed=0
                ),
                lambda: server.find_seeds(
                    targets, tags, k, engine="lltrs", seed=0
                ),
                lambda: server.find_tags(
                    cold.value.seeds, targets, 2, seed=0
                ),
                lambda: server.estimate_spread(
                    cold.value.seeds, targets, tags, seed=0
                ),
            ):
                elapsed += op().elapsed_seconds
            return elapsed

        mixed_first = replay()
        mixed_second = replay()
        stats = server.cache_stats()
        metrics = server.metrics()

    # Concurrent duplicate burst on a *fresh* server: every query is
    # cold, so all but the winning builder must join the in-flight
    # build (or hit the just-resident asset) — this is what makes
    # ``singleflight_joins`` observable at all.
    concurrent = _bench_concurrent(graph, config, targets, tags, k)

    op_latency = {
        name[len("serve.op.latency_ms."):]: {
            "count": hist["count"],
            "p50_ms": round(hist["p50"], 3),
            "p95_ms": round(hist["p95"], 3),
            "p99_ms": round(hist["p99"], 3),
        }
        for name, hist in metrics["histograms"].items()
        if name.startswith("serve.op.latency_ms.") and hist.get("count")
    }

    speedup = cold.elapsed_seconds / max(warm_s, 1e-9)
    return {
        "config": label,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "k": k,
        "num_targets": len(targets),
        "cold_s": cold.elapsed_seconds,
        "warm_median_s": warm_s,
        "warm_over_cold_speedup": round(speedup, 2),
        "mixed_workload_first_pass_s": mixed_first,
        "mixed_workload_warm_pass_s": mixed_second,
        "mixed_speedup": round(mixed_first / max(mixed_second, 1e-9), 2),
        "serve_cache": stats.as_dict(),
        "serve_counters": {
            name: value
            for name, value in metrics["counters"].items()
            if name.startswith("serve.")
        },
        "op_latency_ms": op_latency,
        "concurrent": concurrent,
    }


def _bench_concurrent(graph, config, targets, tags, k, fanout=8):
    """Fire ``fanout`` identical cold queries concurrently.

    Exactly one becomes the single-flight builder; the rest join the
    in-flight build or hit the freshly resident asset. All responses
    must carry bit-identical seeds.
    """
    with CampaignServer(graph, config=config, pool_size=4) as server:
        start = time.perf_counter()
        futures = [
            server.submit_find_seeds(targets, tags, k, engine="trs", seed=0)
            for _ in range(fanout)
        ]
        responses = [f.result() for f in futures]
        wall_s = time.perf_counter() - start
        stats = server.cache_stats()

    seeds = {tuple(r.value.seeds) for r in responses}
    assert len(seeds) == 1, f"concurrent duplicates disagreed: {seeds}"
    cache_modes = [r.cache for r in responses]
    assert stats.builds == 1, f"expected exactly one build, got {stats.builds}"
    latencies = sorted(r.elapsed_seconds * 1000.0 for r in responses)

    def pct(q):
        return latencies[min(int(q * len(latencies)), len(latencies) - 1)]

    return {
        "fanout": fanout,
        "wall_s": wall_s,
        "misses": cache_modes.count("miss"),
        "hits": cache_modes.count("hit"),
        "builds": stats.builds,
        "singleflight_joins": stats.singleflight_joins,
        "latency_ms": {
            "p50": round(pct(0.5), 3),
            "p95": round(pct(0.95), 3),
            "p99": round(pct(0.99), 3),
        },
    }


def _balanced_burst(targets, tags, k, worker_counts, queries):
    """Distinct cold requests placement-balanced for the *largest* fleet.

    Seeds are filled greedily: a seed is accepted only while its
    token's placement still has quota under the largest fleet's ring.
    Only the largest ring is balanced exactly: a W-worker ring's points
    are a superset of a smaller fleet's, so a token's placement at W
    workers pins its placement at fewer workers (the hierarchy property
    of consistent hashing) and exact joint balance across every fleet
    size is overconstrained. Placement is pure blake2b, so the burst is
    deterministic; smaller fleets' actual splits are reported in the
    payload. The gated ``speedup_4w`` leg is the balanced one.
    """
    from repro.serve import HashRing, routing_token

    largest = max(worker_counts)
    ring = HashRing([f"w{i}" for i in range(largest)])
    quota = {member: queries // largest for member in ring.members}
    requests = []
    for seed in range(100_000):
        request = {
            "op": "find_seeds", "targets": targets, "tags": tags,
            "k": k, "seed": seed, "engine": "trs",
        }
        placed = ring.place(routing_token(request))
        if quota[placed] > 0:
            quota[placed] -= 1
            requests.append(request)
            if len(requests) == queries:
                return requests
    raise RuntimeError("could not balance the burst on the largest ring")


def _bench_sharded(graph, targets, tags, k, worker_counts=(1, 2, 4),
                   queries=24, build_slow_s=0.35):
    """Throughput of one distinct-query cold burst at each fleet size.

    Builds are made latency-bound with the deterministic chaos plan
    (``build_slow_rate=1.0`` sleeps ``build_slow_s`` inside every
    sketch build) and each worker's ``CampaignServer`` runs a
    single-thread pool, so one worker serves the burst strictly
    sequentially and a fleet of N serves its N ring shares
    concurrently. What scales is therefore the router's concurrent
    dispatch across worker processes — the serving-layer property this
    leg gates — independent of how many cores the host happens to have
    (CPU-bound builds additionally scale with cores; CI boxes often
    have one). Answers must be bit-identical across fleet sizes.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve import ShardedCampaignService, WorkerSpec

    config = JointConfig(
        sketch=SketchConfig(theta_max=400, pilot_samples=50)
    )
    requests = _balanced_burst(targets, tags, k, worker_counts, queries)
    spec = WorkerSpec(
        config=config, pool_size=1, queue_capacity=64,
        chaos={
            "seed": 1, "build_slow_rate": 1.0,
            "build_slow_seconds": build_slow_s,
        },
    )

    rows = []
    baseline_wall = None
    baseline_answers = None
    for workers in worker_counts:
        service = ShardedCampaignService(graph, workers=workers, spec=spec)
        load: dict[str, int] = {}
        for r in requests:
            placed = service.worker_for(r)
            load[placed] = load.get(placed, 0) + 1
        try:
            with ThreadPoolExecutor(max_workers=queries) as pool:
                start = time.perf_counter()
                futures = [
                    pool.submit(service.route_request, dict(r))
                    for r in requests
                ]
                responses = [f.result() for f in futures]
                wall_s = time.perf_counter() - start
        finally:
            service.close()
        assert all(r.get("ok") for r in responses), [
            r for r in responses if not r.get("ok")
        ][:1]
        answers = {
            req["seed"]: (tuple(resp["seeds"]), resp["spread"])
            for req, resp in zip(requests, responses)
        }
        if baseline_answers is None:
            baseline_answers = answers
            baseline_wall = wall_s
        else:
            assert answers == baseline_answers, (
                f"{workers}-worker fleet diverged from 1-worker answers"
            )
        rows.append({
            "workers": workers,
            "wall_s": round(wall_s, 4),
            "throughput_qps": round(queries / wall_s, 2),
            "speedup_vs_1w": round(baseline_wall / wall_s, 2),
            "ring_load": dict(sorted(load.items())),
        })

    # Tracing-overhead leg: the same burst, same largest fleet, with
    # distributed tracing on. The burst is latency-bound (every build
    # sleeps ``build_slow_s``), so span collection + shipping must
    # disappear into the builds — the gated overhead budget is 5%.
    largest = max(worker_counts)
    service = ShardedCampaignService(
        graph, workers=largest, spec=spec, tracing=True
    )
    try:
        with ThreadPoolExecutor(max_workers=queries) as pool:
            start = time.perf_counter()
            futures = [
                pool.submit(service.route_request, dict(r))
                for r in requests
            ]
            responses = [f.result() for f in futures]
            traced_wall = time.perf_counter() - start
        trace_events = len(service.chrome_trace())
    finally:
        service.close()
    assert all(r.get("ok") for r in responses), [
        r for r in responses if not r.get("ok")
    ][:1]
    traced_answers = {
        req["seed"]: (tuple(resp["seeds"]), resp["spread"])
        for req, resp in zip(requests, responses)
    }
    assert traced_answers == baseline_answers, (
        "tracing perturbed the answers"
    )
    base_wall = rows[-1]["wall_s"]
    overhead = max(0.0, traced_wall / base_wall - 1.0)
    traced = {
        "workers": largest,
        "wall_s": round(traced_wall, 4),
        "throughput_qps": round(queries / traced_wall, 2),
        "trace_events": trace_events,
        "overhead_frac": round(overhead, 4),
    }
    return {
        "queries": queries,
        "bit_identical_across_fleets": True,
        "fleets": rows,
        "speedup_4w": rows[-1]["speedup_vs_1w"],
        "traced": traced,
        "trace_overhead_frac": traced["overhead_frac"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--warm-repeats", type=int, default=10)
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help=(
            "exit 1 unless the largest config's warm-over-cold speedup "
            "meets this floor"
        ),
    )
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args()

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    results = [
        _bench_config(label, factory, scale, k, args.warm_repeats)
        for label, factory, scale, k in configs
    ]

    header = (
        f"{'config':<14} {'cold s':>9} {'warm s':>9} "
        f"{'speedup':>8} {'mixed':>7} {'joins':>6} {'p99 ms':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in results:
        concurrent = row["concurrent"]
        print(
            f"{row['config']:<14} {row['cold_s']:>9.4f} "
            f"{row['warm_median_s']:>9.4f} "
            f"{row['warm_over_cold_speedup']:>7.1f}x "
            f"{row['mixed_speedup']:>6.1f}x "
            f"{concurrent['singleflight_joins']:>6} "
            f"{concurrent['latency_ms']['p99']:>8.1f}"
        )

    # Sharded scaling leg on the first (smallest) config's dataset.
    label, factory, scale, k = configs[0]
    data = factory(scale=scale, seed=13)
    graph = data.graph
    targets = [int(t) for t in bfs_targets(graph, min(60, graph.num_nodes))]
    tags = list(graph.tags[:3])
    sharded = _bench_sharded(graph, targets, tags, k)
    print(f"\nsharded burst ({sharded['queries']} distinct cold queries, "
          f"{label}):")
    for row in sharded["fleets"]:
        print(
            f"  {row['workers']} worker(s): {row['wall_s']:>7.3f}s  "
            f"{row['throughput_qps']:>6.1f} q/s  "
            f"{row['speedup_vs_1w']:>4.1f}x"
        )
    traced = sharded["traced"]
    print(
        f"  {traced['workers']} worker(s) traced: "
        f"{traced['wall_s']:>7.3f}s  "
        f"{traced['throughput_qps']:>6.1f} q/s  "
        f"({traced['trace_events']} trace events, "
        f"{traced['overhead_frac'] * 100:.1f}% overhead)"
    )

    payload = {
        "quick": args.quick,
        "warm_repeats": args.warm_repeats,
        "results": results,
        "sharded": sharded,
    }
    Path(args.output).write_text(
        json.dumps(payload, indent=1), encoding="utf-8"
    )
    print(f"\nwrote {args.output}")

    if args.min_speedup is not None:
        gated = results[-1]["warm_over_cold_speedup"]
        if gated < args.min_speedup:
            print(
                f"FAIL: warm-over-cold speedup {gated:.1f}x "
                f"< required {args.min_speedup:.1f}x"
            )
            return 1
        print(
            f"gate OK: {gated:.1f}x >= {args.min_speedup:.1f}x "
            f"({results[-1]['config']})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
