"""Figure 16 — sensitivity to the approximation slack ε.

Paper claims: θ scales as 1/ε², so each +0.1 of ε roughly halves the
running time, at the cost of noisier (and eventually lower) spread
estimates. ε = 0.1 is the accuracy-preserving default.
"""

from __future__ import annotations

import dataclasses

from benchmarks._harness import SKETCH, dataset, emit, print_table
from repro.core import frequency_tags
from repro.datasets import bfs_targets
from repro.sketch import trs_select_seeds

EPS_SWEEP = (0.1, 0.2, 0.3, 0.5)
K, R, TARGET_SIZE = 5, 5, 60


def test_fig16_epsilon_sensitivity(benchmark):
    data = dataset("twitter")
    targets = bfs_targets(data.graph, TARGET_SIZE)
    tags = frequency_tags(data.graph, targets, R)

    rows = []
    thetas = []
    for eps in EPS_SWEEP:
        cfg = dataclasses.replace(
            SKETCH, epsilon=eps, theta_max=40_000, theta_min=50
        )
        result = trs_select_seeds(data.graph, targets, tags, K, cfg, rng=0)
        thetas.append(result.theta)
        rows.append(
            [eps, result.theta, result.elapsed_seconds,
             result.estimated_spread]
        )
    print_table(
        "Figure 16: sensitivity to ε (TRS, Twitter analogue)",
        ["ε", "θ", "time s", "est. spread"],
        rows,
    )
    emit(
        "\nShape check: θ (and time) fall sharply as ε grows "
        "(paper: each +0.1 ε halves the running time)."
    )
    assert thetas == sorted(thetas, reverse=True)
    assert thetas[0] >= 3 * thetas[-1]

    benchmark.pedantic(
        lambda: trs_select_seeds(
            data.graph, targets, tags, K,
            dataclasses.replace(SKETCH, epsilon=0.5), rng=0,
        ),
        rounds=1, iterations=1,
    )
