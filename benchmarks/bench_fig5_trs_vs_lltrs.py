"""Figure 5 — running time: TRS (state of the art) vs LL-TRS (indexed).

Paper: on Twitter with 5 tags and 3K targets, LL-TRS answers queries
~30 % faster than TRS across seed budgets, because pre-sampled
possible-world indexes remove the per-edge coin-flip cost from every
reverse BFS. We sweep the seed budget and report both engines'
query times (index build included for LL-TRS, as the paper does).
"""

from __future__ import annotations

from benchmarks._harness import emit, SKETCH, dataset, print_table
from repro.core import frequency_tags
from repro.datasets import bfs_targets
from repro.index import indexed_select_seeds, make_lltrs_manager
from repro.sketch import trs_select_seeds

K_SWEEP = (5, 10, 20, 40)
NUM_TAGS, TARGET_SIZE = 5, 80


def test_fig5_trs_vs_lltrs_running_time(benchmark):
    data = dataset("twitter", scale=0.25)
    targets = bfs_targets(data.graph, TARGET_SIZE)
    tags = frequency_tags(data.graph, targets, NUM_TAGS)

    rows = []
    ratios = []
    for k in K_SWEEP:
        trs = trs_select_seeds(data.graph, targets, tags, k, SKETCH, rng=0)
        manager = make_lltrs_manager(data.graph, targets, SKETCH)
        lltrs = indexed_select_seeds(
            data.graph, targets, tags, k, manager, SKETCH, rng=0
        )
        lltrs_total = lltrs.query_seconds + lltrs.index_stats.build_seconds
        ratios.append(lltrs_total / max(trs.elapsed_seconds, 1e-9))
        rows.append(
            [k, trs.elapsed_seconds, lltrs_total,
             trs.estimated_spread, lltrs.estimated_spread]
        )
    print_table(
        "Figure 5: running time (s) — TRS vs LL-TRS, varying #seeds",
        ["k", "TRS time", "LL-TRS time", "TRS spread", "LL-TRS spread"],
        rows,
    )
    avg_ratio = sum(ratios) / len(ratios)
    emit(
        f"\nShape check: LL-TRS/TRS time ratio = {avg_ratio:.2f} "
        "(paper: ≈0.7, i.e. ~30% faster; both grow with k)."
    )
    assert avg_ratio < 1.15, avg_ratio

    benchmark.pedantic(
        lambda: trs_select_seeds(
            data.graph, targets, tags, K_SWEEP[0], SKETCH, rng=0
        ),
        rounds=1, iterations=1,
    )
