"""Figure 2 — cross-city tag transfer on Yelp.

Paper claims: (a) each city's own optimized tags dominate tags
optimized for other cities and random tags; (b) only 10 selected tags
recover ≈90 % of the spread achievable with all 195 tags. We print the
same matrix, normalized the paper's way: % of the spread obtained with
the full tag vocabulary.
"""

from __future__ import annotations

import numpy as np

from benchmarks._harness import emit, EVAL_SAMPLES, SKETCH, TAGS_CFG, print_table
from repro import estimate_spread, find_seeds, find_tags
from repro.core import random_tags
from repro.datasets import community_targets, yelp

K, R, TARGET_SIZE = 5, 10, 50


def test_fig2_cross_city_transfer(benchmark):
    data = yelp(scale=0.3, seed=13)
    cities = data.community_names

    plans = {}
    for city in cities:
        targets = community_targets(data, city, size=TARGET_SIZE, rng=0)
        seeds = find_seeds(
            data.graph, targets, data.graph.tags, K,
            engine="lltrs", config=SKETCH, rng=0,
        ).seeds
        tags = find_tags(
            data.graph, seeds, targets, R,
            method="batch", config=TAGS_CFG, rng=0,
        ).tags
        plans[city] = (targets, seeds, tags)

    rng = np.random.default_rng(0)
    rows = []
    own_fraction = {}
    for target_city in cities:
        targets, seeds, _ = plans[target_city]
        all_tags_spread = estimate_spread(
            data.graph, seeds, targets, data.graph.tags,
            num_samples=EVAL_SAMPLES, rng=1,
        )
        rand = random_tags(data.graph, R, rng=rng)
        row = [target_city]
        rand_spread = estimate_spread(
            data.graph, seeds, targets, rand,
            num_samples=EVAL_SAMPLES, rng=1,
        )
        row.append(100.0 * rand_spread / max(all_tags_spread, 1e-9))
        for tag_city in cities:
            spread = estimate_spread(
                data.graph, seeds, targets, plans[tag_city][2],
                num_samples=EVAL_SAMPLES, rng=1,
            )
            pct = 100.0 * spread / max(all_tags_spread, 1e-9)
            row.append(pct)
            if tag_city == target_city:
                own_fraction[target_city] = pct
        rows.append(row)

    print_table(
        "Figure 2: % of all-tag spread achieved by 10 selected tags",
        ["targets", "random"] + [f"tags({c})" for c in cities],
        rows,
    )
    emit(
        "\nShape check: diagonal (own tags) dominates each row; paper "
        "reports own tags ≈ 90% of the all-tag spread."
    )
    for city, pct in own_fraction.items():
        assert pct >= 60.0, (city, pct)

    benchmark.pedantic(
        lambda: estimate_spread(
            data.graph, plans[cities[0]][1], plans[cities[0]][0],
            plans[cities[0]][2], num_samples=EVAL_SAMPLES, rng=1,
        ),
        rounds=1, iterations=1,
    )
