"""Table 1 — case study: top-10 tags per target city on Yelp.

Paper claim: the most relevant tags differ per city — entertainment
categories dominate Las Vegas, food categories dominate Pittsburgh,
Toronto mixes both. Our Yelp analogue encodes city-tag affinities the
same way user behaviour does in the crawl, so the optimizer should
recover themed tag sets.
"""

from __future__ import annotations

from benchmarks._harness import emit, SKETCH, TAGS_CFG, print_table
from repro import find_seeds, find_tags
from repro.datasets import community_targets, yelp
from repro.datasets.named import YELP_ENTERTAINMENT, YELP_FOOD

K, R, TARGET_SIZE = 5, 10, 50


def city_tags(data, city: str) -> tuple[str, ...]:
    targets = community_targets(data, city, size=TARGET_SIZE, rng=0)
    seeds = find_seeds(
        data.graph, targets, data.graph.tags, K,
        engine="lltrs", config=SKETCH, rng=0,
    ).seeds
    return find_tags(
        data.graph, seeds, targets, R,
        method="batch", config=TAGS_CFG, rng=0,
    ).tags


def test_table1_city_case_study(benchmark):
    data = yelp(scale=0.3, seed=13)
    rows = []
    tag_sets = {}
    for city in data.community_names:
        tags = city_tags(data, city)
        tag_sets[city] = set(tags)
        rows.append([city, ", ".join(tags)])
    print_table(
        "Table 1: top tags per target city (Yelp analogue)",
        ["city", f"top-{R} tags"],
        rows,
    )

    ent, food = set(YELP_ENTERTAINMENT), set(YELP_FOOD)
    vegas_ent = len(tag_sets["vegas"] & ent)
    pitts_food = len(tag_sets["pittsburgh"] & food)
    emit(
        f"\nShape check: vegas picked {vegas_ent} entertainment tags; "
        f"pittsburgh picked {pitts_food} food tags "
        "(paper: themed tags dominate each city's list)."
    )
    assert vegas_ent >= 3
    assert pitts_food >= 3

    benchmark.pedantic(
        lambda: city_tags(data, "vegas"), rounds=1, iterations=1
    )
