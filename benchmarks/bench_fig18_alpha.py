"""Figure 18 — sensitivity to α (common-index upper bound of Theorem 6).

Paper claims: the same pattern as δ — since E[C(G)] = αδ, growing α
shrinks θ_c and the indexing time, and accuracy only degrades once
α ≥ 2. α = 1 is the default.
"""

from __future__ import annotations

import dataclasses

from benchmarks._harness import SKETCH, dataset, emit, print_table
from repro.core import frequency_tags
from repro.datasets import bfs_targets
from repro.index import indexed_select_seeds, make_ltrs_manager

ALPHA_SWEEP = (0.5, 1.0, 2.0, 5.0)
K, R, TARGET_SIZE = 5, 5, 60


def test_fig18_alpha_sensitivity(benchmark):
    data = dataset("twitter")
    targets = bfs_targets(data.graph, TARGET_SIZE)
    tags = frequency_tags(data.graph, targets, R)

    rows = []
    theta_cs = []
    spreads = []
    for alpha in ALPHA_SWEEP:
        cfg = dataclasses.replace(SKETCH, alpha=alpha)
        manager = make_ltrs_manager(data.graph)
        result = indexed_select_seeds(
            data.graph, targets, tags, K, manager, cfg, rng=0
        )
        theta_cs.append(result.theta_c)
        spreads.append(result.estimated_spread)
        rows.append(
            [alpha, result.theta_c,
             result.index_stats.build_seconds,
             result.index_stats.size_bytes / 1024.0,
             result.estimated_spread]
        )
    print_table(
        "Figure 18: sensitivity to α (I-TRS indexing, Twitter analogue)",
        ["α", "θ_c", "build s", "index KB", "est. spread"],
        rows,
    )
    emit(
        "\nShape check: θ_c shrinks as α grows; spread stable for "
        "α ≤ 2 (paper Figure 18)."
    )
    assert theta_cs == sorted(theta_cs, reverse=True)
    assert abs(spreads[0] - spreads[1]) <= 0.25 * max(spreads) + 1.0

    benchmark.pedantic(
        lambda: indexed_select_seeds(
            data.graph, targets, tags, K, make_ltrs_manager(data.graph),
            SKETCH, rng=0,
        ),
        rounds=1, iterations=1,
    )
