"""Standalone scalar-vs-vectorized-vs-parallel engine benchmark.

Runs the two hot sampling loops (targeted RR-set generation and IC
cascade simulation) on a ladder of synthetic configs, three ways each:

* ``scalar`` — the per-sample reference traversals (the correctness
  oracle in :mod:`repro.sketch` / :mod:`repro.diffusion`);
* ``vectorized`` — the frontier-batched kernels via a serial
  :class:`~repro.engine.SamplingEngine`;
* ``parallel`` — the same engine with a process pool (pool startup is
  excluded; on single-core boxes this mostly measures IPC overhead).
  Jobs below the engine's ``parallel_threshold`` auto-fall back to the
  in-process vectorized path, so small configs report the fallback's
  timing — the ``parallel_fell_back`` field says when that happened
  (pass ``--parallel-threshold 0`` to force the pool and measure raw
  IPC overhead instead).

Writes ``BENCH_engine.json`` next to the repo root with per-case median
wall times and speedups, and prints a table. Usage::

    PYTHONPATH=src:. python benchmarks/bench_engine.py --quick
    PYTHONPATH=src:. python benchmarks/bench_engine.py --quick \
        --min-speedup 3.0     # CI gate: exit 1 if the largest config's
                              # vectorized speedup falls below this
    PYTHONPATH=src:. python benchmarks/bench_engine.py --quick \
        --metrics-out obs.json   # observability report for the run
"""

from __future__ import annotations

import argparse
import contextlib
import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.datasets import bfs_targets, twitter, yelp
from repro.diffusion import simulate_cascade
from repro.engine import SamplingEngine
from repro.sketch import reverse_reachable_set

#: (label, factory, scale) — ordered smallest to largest; the *last*
#: entry is the one the --min-speedup gate checks.
QUICK_CONFIGS = [
    ("yelp-0.5", yelp, 0.5),
    ("twitter-1.0", twitter, 1.0),
]
FULL_CONFIGS = QUICK_CONFIGS + [
    ("twitter-2.0", twitter, 2.0),
]


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def bench_config(
    label: str,
    factory,
    scale: float,
    theta: int,
    num_cascades: int,
    repeats: int,
    workers: int,
    parallel_threshold: int | None = None,
) -> dict:
    data = factory(scale=scale)
    graph = data.graph
    targets = np.asarray(bfs_targets(graph, 60), dtype=np.int64)
    tags = list(graph.tags[:5])
    probs = graph.edge_probabilities(tags)
    seeds = np.asarray(targets[:3], dtype=np.int64)
    tmask = np.zeros(graph.num_nodes, dtype=bool)
    tmask[targets] = True

    def rr_scalar():
        rng = np.random.default_rng(0)
        roots = rng.choice(targets, size=theta)
        return [
            reverse_reachable_set(graph, int(r), probs, rng) for r in roots
        ]

    def cascade_scalar():
        rng = np.random.default_rng(0)
        return [
            int(tmask[simulate_cascade(graph, seeds, probs, rng)].sum())
            for _ in range(num_cascades)
        ]

    serial = SamplingEngine(mode="vectorized", workers=1)
    # Size shards so the pooled engine genuinely fans out (the default
    # shard of 512 would fit a quick-mode θ in a single in-process task).
    shard = max(1, min(theta, num_cascades) // (2 * workers))
    pooled_kwargs = {}
    if parallel_threshold is not None:
        pooled_kwargs["parallel_threshold"] = parallel_threshold
    pooled = SamplingEngine(
        mode="vectorized", workers=workers, shard_size=shard,
        **pooled_kwargs,
    )

    def rr_engine(engine: SamplingEngine):
        return lambda: engine.sample_rr_sets(
            graph, targets, probs, theta, rng=0
        )

    def cascade_engine(engine: SamplingEngine):
        return lambda: engine.cascade_target_counts(
            graph, seeds, probs, num_cascades, targets, rng=0
        )

    # Warm both engines (CSR caches, process pool) outside the timing.
    rr_engine(serial)()
    rr_engine(pooled)()

    result = {
        "config": label,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "theta": theta,
        "num_cascades": num_cascades,
        "workers": workers,
        "rr": {
            "scalar_s": _median_time(rr_scalar, repeats),
            "vectorized_s": _median_time(rr_engine(serial), repeats),
            "parallel_s": _median_time(rr_engine(pooled), repeats),
        },
        "cascade": {
            "scalar_s": _median_time(cascade_scalar, repeats),
            "vectorized_s": _median_time(cascade_engine(serial), repeats),
            "parallel_s": _median_time(cascade_engine(pooled), repeats),
        },
    }
    for section in ("rr", "cascade"):
        timings = result[section]
        timings["vectorized_speedup"] = round(
            timings["scalar_s"] / timings["vectorized_s"], 2
        )
        timings["parallel_speedup"] = round(
            timings["scalar_s"] / timings["parallel_s"], 2
        )
    # Whether the small-work guard sent the "parallel" runs down the
    # in-process path instead of the pool (see SamplingEngine's
    # parallel_threshold).
    result["parallel_fell_back"] = pooled.telemetry.parallel_fallbacks > 0
    serial.close()
    pooled.close()
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small ladder and fewer repeats")
    parser.add_argument("--theta", type=int, default=None,
                        help="RR samples per measurement")
    parser.add_argument("--cascades", type=int, default=None,
                        help="cascade samples per measurement")
    parser.add_argument("--repeats", type=int, default=None,
                        help="repeats per case (median reported)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero unless the largest config's vectorized "
             "speedup meets this for both RR and cascade",
    )
    parser.add_argument(
        "--parallel-threshold", type=int, default=None,
        help="override the pooled engine's small-work fallback "
             "threshold (0 forces the pool even for tiny jobs)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write an observability report (repro.obs.report/1) "
             "covering the whole benchmark run",
    )
    args = parser.parse_args(argv)

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    theta = args.theta or (400 if args.quick else 1500)
    cascades = args.cascades or (200 if args.quick else 600)
    repeats = args.repeats or (3 if args.quick else 5)

    scope = (
        obs.observe() if args.metrics_out else contextlib.nullcontext()
    )
    results = []
    with scope as observation:
        for label, factory, scale in configs:
            print(f"benchmarking {label} ...", flush=True)
            results.append(
                bench_config(
                    label, factory, scale, theta, cascades, repeats,
                    args.workers,
                    parallel_threshold=args.parallel_threshold,
                )
            )
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(observation.report(), indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"wrote observability report to {args.metrics_out}")

    report = {
        "quick": args.quick,
        "theta": theta,
        "num_cascades": cascades,
        "repeats": repeats,
        "results": results,
    }
    out_path = Path(args.output)
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    header = (
        f"{'config':<14}{'case':<10}{'scalar s':>10}{'vector s':>10}"
        f"{'par s':>10}{'vec x':>8}{'par x':>8}"
    )
    print("\n" + header)
    print("-" * len(header))
    for row in results:
        for section in ("rr", "cascade"):
            t = row[section]
            print(
                f"{row['config']:<14}{section:<10}"
                f"{t['scalar_s']:>10.4f}{t['vectorized_s']:>10.4f}"
                f"{t['parallel_s']:>10.4f}"
                f"{t['vectorized_speedup']:>8.2f}"
                f"{t['parallel_speedup']:>8.2f}"
            )
    fell_back = [r["config"] for r in results if r["parallel_fell_back"]]
    if fell_back:
        print(
            "note: parallel runs fell back to the in-process path "
            f"(work below threshold) on: {', '.join(fell_back)}"
        )
    print(f"\nwrote {out_path}")

    if args.min_speedup is not None:
        largest = results[-1]
        worst = min(
            largest["rr"]["vectorized_speedup"],
            largest["cascade"]["vectorized_speedup"],
        )
        if worst < args.min_speedup:
            print(
                f"FAIL: vectorized speedup {worst:.2f}x on "
                f"{largest['config']} below required "
                f"{args.min_speedup:.2f}x"
            )
            return 1
        print(
            f"OK: vectorized speedup {worst:.2f}x on {largest['config']} "
            f"meets {args.min_speedup:.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
