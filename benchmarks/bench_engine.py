"""Standalone scalar / vectorized / bit-parallel engine benchmark.

Runs the two hot sampling loops (targeted RR-set generation and IC
cascade simulation) on a ladder of synthetic configs, four ways each:

* ``scalar`` — the per-sample reference traversals (the correctness
  oracle in :mod:`repro.sketch` / :mod:`repro.diffusion`);
* ``vectorized`` — the frontier-batched kernels via a serial
  :class:`~repro.engine.SamplingEngine`;
* ``bitparallel`` — the 64-worlds-per-word kernels
  (:mod:`repro.engine.bitworld`) via a serial engine;
* ``parallel`` — the bit-parallel engine with a process pool fed
  through the zero-copy shared-memory CSR transport
  (:mod:`repro.engine.shared_csr`); pool startup is excluded. Jobs
  below the engine's ``parallel_threshold`` auto-fall back to the
  in-process path — ``parallel_fell_back`` says when that happened,
  and the gated configs are sized so it must stay ``false``.

A fifth measurement times **incremental sketch repair** against a cold
rebuild after a sparse edit batch (see ``docs/mutability.md``); its
speedup is reported as ``incremental_repair_speedup`` and gated.

Timings use interleaved min-of-repeats: each repeat cycles through all
four variants back-to-back, and the minimum per variant is reported.
On noisy shared boxes this is far more stable than timing each variant
in its own contiguous block (drift hits all variants equally).

Writes ``BENCH_engine.json`` next to the repo root and prints a table.
``scripts/check_bench.py`` re-validates the artifact (geomean
bit-parallel RR speedup, pool fan-out, no leaked segments). Usage::

    PYTHONPATH=src:. python benchmarks/bench_engine.py --quick
    PYTHONPATH=src:. python benchmarks/bench_engine.py --quick \
        --min-speedup 2.0     # legacy gate: exit 1 if the largest
                              # config's vectorized speedup falls below
    PYTHONPATH=src:. python benchmarks/bench_engine.py --quick \
        --metrics-out obs.json   # observability report for the run
"""

from __future__ import annotations

import argparse
import contextlib
import json
import math
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.datasets import bfs_targets, twitter, yelp
from repro.diffusion import simulate_cascade
from repro.engine import SamplingEngine, shared_csr
from repro.graphs.mutable import MutableTagGraph, TagSet
from repro.sketch import build_repairable_sketch, reverse_reachable_set

#: (label, factory, scale) — ordered smallest to largest; the *last*
#: entry is the one the --min-speedup gate checks.
QUICK_CONFIGS = [
    ("yelp-0.5", yelp, 0.5),
    ("twitter-1.0", twitter, 1.0),
]
FULL_CONFIGS = QUICK_CONFIGS + [
    ("twitter-2.0", twitter, 2.0),
]


def _interleaved_min(fns: dict, repeats: int) -> dict:
    """Min wall time per variant, interleaving variants each repeat.

    A contiguous per-variant loop lets slow drift (thermal, noisy
    neighbours) bias whole variants; cycling scalar→vectorized→bit→pool
    every repeat spreads the noise across all of them, and min-of-N
    discards the noise entirely.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def bench_config(
    label: str,
    factory,
    scale: float,
    theta: int,
    num_cascades: int,
    repeats: int,
    workers: int,
    parallel_threshold: int | None = None,
) -> dict:
    data = factory(scale=scale)
    graph = data.graph
    targets = np.asarray(bfs_targets(graph, 60), dtype=np.int64)
    tags = list(graph.tags[:5])
    probs = graph.edge_probabilities(tags)
    seeds = np.asarray(targets[:3], dtype=np.int64)
    tmask = np.zeros(graph.num_nodes, dtype=bool)
    tmask[targets] = True

    def rr_scalar():
        rng = np.random.default_rng(0)
        roots = rng.choice(targets, size=theta)
        return [
            reverse_reachable_set(graph, int(r), probs, rng) for r in roots
        ]

    def cascade_scalar():
        rng = np.random.default_rng(0)
        return [
            int(tmask[simulate_cascade(graph, seeds, probs, rng)].sum())
            for _ in range(num_cascades)
        ]

    serial_vec = SamplingEngine(mode="vectorized", workers=1)
    # One shard for the serial bit-parallel leg: shard bookkeeping
    # (per-shard root draws, live-CSR rebuilds, collector stitching)
    # belongs to the pooled measurement, not the kernel one.
    serial_bit = SamplingEngine(
        mode="bitparallel", workers=1,
        shard_size=max(theta, num_cascades),
    )
    # Size shards so the pooled engine genuinely fans out (a shard that
    # fits the whole θ would collapse the run into one task).
    shard = max(64, min(theta, num_cascades) // (2 * workers))
    pooled_kwargs = {}
    if parallel_threshold is not None:
        pooled_kwargs["parallel_threshold"] = parallel_threshold
    pooled = SamplingEngine(
        mode="bitparallel", workers=workers, shard_size=shard,
        **pooled_kwargs,
    )

    def rr_engine(engine: SamplingEngine):
        return lambda: engine.sample_rr_sets(
            graph, targets, probs, theta, rng=0
        )

    def cascade_engine(engine: SamplingEngine):
        return lambda: engine.cascade_target_counts(
            graph, seeds, probs, num_cascades, targets, rng=0
        )

    # Warm all engines (CSR caches, process pool, shared segments)
    # outside the timing.
    rr_engine(serial_vec)()
    rr_engine(serial_bit)()
    rr_engine(pooled)()

    rr_fns = {
        "scalar": rr_scalar,
        "vectorized": rr_engine(serial_vec),
        "bitparallel": rr_engine(serial_bit),
        "parallel": rr_engine(pooled),
    }
    cascade_fns = {
        "scalar": cascade_scalar,
        "vectorized": cascade_engine(serial_vec),
        "bitparallel": cascade_engine(serial_bit),
        "parallel": cascade_engine(pooled),
    }
    rr_times = _interleaved_min(rr_fns, repeats)
    cascade_times = _interleaved_min(cascade_fns, repeats)
    # The engine legs are 20-40x cheaper than scalar, so extra repeats
    # cost almost nothing — and min-of-N needs more draws on a noisy
    # box to find the floor of a 10 ms measurement than a 700 ms one.
    extra = 9
    for fns, times in ((rr_fns, rr_times), (cascade_fns, cascade_times)):
        fast = {k: v for k, v in fns.items() if k != "scalar"}
        for name, t in _interleaved_min(fast, extra).items():
            times[name] = min(times[name], t)

    result = {
        "config": label,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "theta": theta,
        "num_cascades": num_cascades,
        "workers": workers,
        "rr": {f"{name}_s": t for name, t in rr_times.items()},
        "cascade": {f"{name}_s": t for name, t in cascade_times.items()},
    }
    for section in ("rr", "cascade"):
        timings = result[section]
        for name in ("vectorized", "bitparallel", "parallel"):
            timings[f"{name}_speedup"] = round(
                timings["scalar_s"] / timings[f"{name}_s"], 2
            )
    # Whether the small-work guard sent the "parallel" runs down the
    # in-process path instead of the pool (see SamplingEngine's
    # parallel_threshold). The gated configs must keep this false —
    # it proves the shared-memory fan-out was actually measured.
    result["parallel_fell_back"] = pooled.telemetry.parallel_fallbacks > 0
    serial_vec.close()
    serial_bit.close()
    pooled.close()
    # Every shared segment the pooled engine created must be unlinked
    # by now; anything left is a leak and fails the artifact gate.
    result["leaked_segments"] = sorted(shared_csr.active_tokens())
    return result


def bench_repair(
    label: str,
    factory,
    scale: float,
    theta: int,
    repeats: int,
    num_edits: int = 8,
) -> dict:
    """Incremental sketch repair vs cold rebuild on a sparse edit batch.

    Builds a θ-set repairable sketch, applies a small probability-update
    batch (far under 10% of edges dirty — the regime the repair path
    exists for), and times ``repair`` against ``cold_rebuild`` with the
    same interleaved min-of-repeats discipline as the kernel legs. The
    two are bit-identical by contract; the benchmark re-checks that and
    records it, so the gate can refuse a "fast" repair that diverged.
    """
    data = factory(scale=scale)
    graph = data.graph
    targets = np.asarray(bfs_targets(graph, 60), dtype=np.int64)
    tags = list(graph.tags[:5])
    probs = graph.edge_probabilities(tags)
    sketch = build_repairable_sketch(graph, targets, probs, theta, seed=0)

    # A realistic sparse batch: perturb tag probabilities on edges of
    # *median* touch count among those whose destination appears in at
    # least one stored RR set. Zero-touch edits make repair a no-op
    # (an unmeasurable "speedup"); hub edits dirty everything and
    # degrade repair to rebuild-equivalent work. The median is the
    # sparse case the gate advertises.
    tag0 = tags[0]
    edge_ids, tag_probs = graph.tag_edges(tag0)
    candidates = edge_ids[:512]
    touch_costs = np.asarray([
        sketch.dirty_set_ids(np.asarray([graph.dst[e]])).size
        for e in candidates
    ])
    touched = np.flatnonzero(touch_costs > 0)
    if touched.size < num_edits:
        raise RuntimeError(
            f"only {touched.size} of {candidates.size} candidate edges "
            "touch any RR set — graph too small for the repair benchmark"
        )
    order = touched[np.argsort(touch_costs[touched], kind="stable")]
    mid = max(0, order.size // 2 - num_edits // 2)
    chosen = [int(candidates[i]) for i in order[mid:mid + num_edits]]
    prob_of = {int(e): float(p) for e, p in zip(edge_ids, tag_probs)}

    mutable = MutableTagGraph(graph)
    mutable.apply([
        TagSet(edge_id=e, tag=tag0, prob=max(0.01, prob_of[e] * 0.5))
        for e in chosen
    ])
    snap = mutable.snapshot()
    new_probs = snap.edge_probabilities(tags)
    dirty_edges = mutable.dirty_edges(0)

    repaired, stats = sketch.repair(snap, new_probs, dirty_edges)
    rebuilt = sketch.cold_rebuild(snap, new_probs)
    bit_identical = bool(
        repaired.theta == rebuilt.theta
        and np.array_equal(repaired.rr.indptr, rebuilt.rr.indptr)
        and np.array_equal(repaired.rr.members, rebuilt.rr.members)
    )

    times = _interleaved_min(
        {
            "repair": lambda: sketch.repair(snap, new_probs, dirty_edges),
            "cold_rebuild": lambda: sketch.cold_rebuild(snap, new_probs),
        },
        repeats,
    )
    return {
        "config": label,
        "theta": theta,
        "edits": len(chosen),
        "dirty_edges": int(dirty_edges.size),
        "dirty_edge_fraction": round(
            dirty_edges.size / graph.num_edges, 4
        ),
        "dirty_sets": int(stats["dirty_sets"]),
        "dirty_set_fraction": round(stats["dirty_sets"] / theta, 4),
        "repair_s": times["repair"],
        "cold_rebuild_s": times["cold_rebuild"],
        "speedup": round(times["cold_rebuild"] / times["repair"], 2),
        "bit_identical": bit_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small ladder and fewer repeats")
    parser.add_argument("--theta", type=int, default=None,
                        help="RR samples per measurement")
    parser.add_argument("--cascades", type=int, default=None,
                        help="cascade samples per measurement")
    parser.add_argument("--repeats", type=int, default=None,
                        help="repeats per case (min reported)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero unless the largest config's vectorized "
             "speedup meets this for both RR and cascade",
    )
    parser.add_argument(
        "--parallel-threshold", type=int, default=None,
        help="override the pooled engine's small-work fallback "
             "threshold (0 forces the pool even for tiny jobs)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write an observability report (repro.obs.report/1) "
             "covering the whole benchmark run",
    )
    args = parser.parse_args(argv)

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    # θ is sized so the bit-parallel kernels amortise their packing
    # setup (they process 64 worlds per pass — hundreds of samples is
    # pure overhead) and so the pooled runs clear parallel_threshold.
    theta = args.theta or (25600 if args.quick else 51200)
    cascades = args.cascades or (6400 if args.quick else 12800)
    repeats = args.repeats or (3 if args.quick else 5)

    scope = (
        obs.observe() if args.metrics_out else contextlib.nullcontext()
    )
    results = []
    with scope as observation:
        for label, factory, scale in configs:
            print(f"benchmarking {label} ...", flush=True)
            results.append(
                bench_config(
                    label, factory, scale, theta, cascades, repeats,
                    args.workers,
                    parallel_threshold=args.parallel_threshold,
                )
            )
        gated_label, gated_factory, gated_scale = configs[-1]
        print(
            f"benchmarking incremental repair ({gated_label}) ...",
            flush=True,
        )
        repair = bench_repair(
            gated_label, gated_factory, gated_scale, theta, repeats
        )
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(observation.report(), indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"wrote observability report to {args.metrics_out}")

    rr_speedups = [r["rr"]["bitparallel_speedup"] for r in results]
    report = {
        "quick": args.quick,
        "theta": theta,
        "num_cascades": cascades,
        "repeats": repeats,
        "rr_bitparallel_geomean_speedup": round(
            math.exp(sum(map(math.log, rr_speedups)) / len(rr_speedups)), 2
        ),
        "incremental_repair": repair,
        "incremental_repair_speedup": repair["speedup"],
        "results": results,
    }
    out_path = Path(args.output)
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    header = (
        f"{'config':<14}{'case':<10}{'scalar s':>10}{'vector s':>10}"
        f"{'bit s':>10}{'par s':>10}{'vec x':>8}{'bit x':>8}{'par x':>8}"
    )
    print("\n" + header)
    print("-" * len(header))
    for row in results:
        for section in ("rr", "cascade"):
            t = row[section]
            print(
                f"{row['config']:<14}{section:<10}"
                f"{t['scalar_s']:>10.4f}{t['vectorized_s']:>10.4f}"
                f"{t['bitparallel_s']:>10.4f}{t['parallel_s']:>10.4f}"
                f"{t['vectorized_speedup']:>8.2f}"
                f"{t['bitparallel_speedup']:>8.2f}"
                f"{t['parallel_speedup']:>8.2f}"
            )
    fell_back = [r["config"] for r in results if r["parallel_fell_back"]]
    if fell_back:
        print(
            "note: parallel runs fell back to the in-process path "
            f"(work below threshold) on: {', '.join(fell_back)}"
        )
    print(
        "rr bit-parallel geomean speedup: "
        f"{report['rr_bitparallel_geomean_speedup']:.2f}x"
    )
    print(
        f"incremental repair ({repair['config']}): "
        f"{repair['speedup']:.2f}x over cold rebuild — "
        f"{repair['dirty_sets']}/{repair['theta']} sets dirty from "
        f"{repair['edits']} edits "
        f"({repair['dirty_edge_fraction']:.2%} of edges), "
        f"bit_identical={repair['bit_identical']}"
    )
    print(f"\nwrote {out_path}")

    if args.min_speedup is not None:
        largest = results[-1]
        worst = min(
            largest["rr"]["vectorized_speedup"],
            largest["cascade"]["vectorized_speedup"],
        )
        if worst < args.min_speedup:
            print(
                f"FAIL: vectorized speedup {worst:.2f}x on "
                f"{largest['config']} below required "
                f"{args.min_speedup:.2f}x"
            )
            return 1
        print(
            f"OK: vectorized speedup {worst:.2f}x on {largest['config']} "
            f"meets {args.min_speedup:.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
