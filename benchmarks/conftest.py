"""Benchmark-suite configuration.

Heavy experiment sweeps run once per session; pytest-benchmark times a
single representative call per experiment (``pedantic`` with one round)
because the interesting output is the printed table, not a
microbenchmark distribution. Tables accumulated by the harness are
flushed to the terminal after the run, so they are visible even when
pytest captures test output.
"""

from __future__ import annotations


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every experiment table after the benchmark summary."""
    from benchmarks._harness import REPORT_LINES

    if REPORT_LINES:
        terminalreporter.write_line("")
        terminalreporter.write_sep("=", "experiment tables (paper reproduction)")
        for line in REPORT_LINES:
            for piece in line.split("\n"):
                terminalreporter.write_line(piece)
