"""Ablation — frequency-based tag search-space elimination (Section 5.3).

The paper removes low-aggregate-probability tags from the search space
before optimizing, arguing they contribute little diffusion. This
ablation quantifies the claim: eliminating the bottom half of the tag
vocabulary should barely move the achieved spread while shrinking the
candidate space the tag finder scans.
"""

from __future__ import annotations

from benchmarks._harness import (
    SKETCH,
    TAGS_CFG,
    dataset,
    emit,
    print_table,
    spread_pct,
)
from repro import JointConfig, JointQuery, jointly_select
from repro.datasets import bfs_targets

K, R, TARGET_SIZE = 5, 5, 50
FRACTIONS = (1.0, 0.5, 0.25)


def test_ablation_tag_space_elimination(benchmark):
    data = dataset("twitter")
    targets = bfs_targets(data.graph, TARGET_SIZE)

    rows = []
    spreads = []
    for fraction in FRACTIONS:
        cfg = JointConfig(
            max_rounds=2, eliminate_fraction=fraction,
            sketch=SKETCH, tag_config=TAGS_CFG, eval_samples=150,
        )
        result = jointly_select(
            data.graph, JointQuery(targets, k=K, r=R), cfg, rng=0
        )
        spreads.append(result.spread)
        kept = (
            data.graph.num_tags
            if fraction == 1.0
            else max(R, round(fraction * data.graph.num_tags))
        )
        rows.append(
            [fraction, kept, spread_pct(result.spread, TARGET_SIZE),
             result.elapsed_seconds]
        )
    print_table(
        "Ablation: frequency-based tag search-space elimination",
        ["keep fraction", "#tags kept", "spread %", "time s"],
        rows,
    )
    emit(
        "\nShape check: halving the tag space loses little spread "
        "(low-mass tags rarely matter — paper Section 5.3)."
    )
    assert spreads[1] >= 0.7 * spreads[0]

    benchmark.pedantic(
        lambda: jointly_select(
            data.graph, JointQuery(targets, k=K, r=R),
            JointConfig(
                max_rounds=1, eliminate_fraction=0.5,
                sketch=SKETCH, tag_config=TAGS_CFG, eval_samples=80,
            ),
            rng=0,
        ),
        rounds=1, iterations=1,
    )
