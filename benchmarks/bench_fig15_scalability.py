"""Figure 15 — scalability with target-set size and graph size (Twitter).

Paper claims: (a) the spread *percentage* within the target set stays
roughly constant as |T| grows from 1K to 50K while running time grows
near-linearly in |T|; (b) index size and query time grow linearly with
the number of graph nodes.
"""

from __future__ import annotations

from benchmarks._harness import (
    SKETCH,
    TAGS_CFG,
    dataset,
    emit,
    print_table,
    spread_pct,
)
from repro import JointConfig, JointQuery, jointly_select
from repro.core import frequency_tags
from repro.datasets import bfs_targets, twitter
from repro.index import indexed_select_seeds, make_lltrs_manager

K, R = 10, 5
T_SWEEP = (20, 50, 120)
SCALE_SWEEP = (0.1, 0.2, 0.4)

JOINT = JointConfig(
    max_rounds=2, sketch=SKETCH, tag_config=TAGS_CFG, eval_samples=120
)


def test_fig15a_target_set_size(benchmark):
    data = dataset("twitter")
    rows = []
    spreads = []
    for t_size in T_SWEEP:
        targets = bfs_targets(data.graph, t_size)
        result = jointly_select(
            data.graph, JointQuery(targets, k=K, r=R), JOINT, rng=0
        )
        spreads.append(result.spread)
        rows.append(
            [t_size, result.spread, spread_pct(result.spread, t_size),
             result.elapsed_seconds]
        )
    print_table(
        "Figure 15(a,b): spread and time vs target-set size",
        ["|T|", "spread", "spread %", "time s"],
        rows,
    )
    emit(
        "\nShape check: absolute spread grows with |T| at similar time "
        "(paper additionally reports a flat *percentage*, which needs "
        "the crawl-scale graph — see EXPERIMENTS.md on this deviation)."
    )
    assert spreads == sorted(spreads)

    benchmark.pedantic(
        lambda: jointly_select(
            data.graph,
            JointQuery(bfs_targets(data.graph, T_SWEEP[0]), k=K, r=R),
            JOINT, rng=0,
        ),
        rounds=1, iterations=1,
    )


def test_fig15b_graph_size(benchmark):
    rows = []
    sizes = []
    for scale in SCALE_SWEEP:
        data = twitter(scale=scale)
        targets = bfs_targets(data.graph, 40)
        tags = frequency_tags(data.graph, targets, R)
        manager = make_lltrs_manager(data.graph, targets, SKETCH)
        result = indexed_select_seeds(
            data.graph, targets, tags, K, manager, SKETCH, rng=0
        )
        size_kb = result.index_stats.size_bytes / 1024.0
        sizes.append(size_kb)
        rows.append(
            [data.graph.num_nodes, data.graph.num_edges, size_kb,
             result.query_seconds]
        )
    print_table(
        "Figure 15(c,d): LL-TRS index size (KB) and query time vs |V|",
        ["#nodes", "#edges", "index KB", "query s"],
        rows,
    )
    emit(
        "\nShape check: index size grows with the graph "
        "(paper: linear in #nodes)."
    )
    assert sizes == sorted(sizes)

    benchmark.pedantic(lambda: twitter(scale=0.1), rounds=1, iterations=1)
