"""Figure 19 — sensitivity to the local-region hop threshold h.

Paper claims: query time is flat for h ≥ 3 (the local region already
contains almost everything reverse BFS visits) while index size grows
with h; accuracy is unaffected by h (outside edges fall back to online
coins). h = 3 is the default.
"""

from __future__ import annotations

import dataclasses

from benchmarks._harness import SKETCH, dataset, emit, print_table
from repro.core import frequency_tags
from repro.datasets import bfs_targets
from repro.index import indexed_select_seeds, make_lltrs_manager

H_SWEEP = (1, 2, 3, 4, 5)
K, R, TARGET_SIZE = 5, 5, 60


def test_fig19_h_sensitivity(benchmark):
    data = dataset("twitter")
    targets = bfs_targets(data.graph, TARGET_SIZE)
    tags = frequency_tags(data.graph, targets, R)

    rows = []
    sizes = []
    spreads = []
    for h in H_SWEEP:
        cfg = dataclasses.replace(SKETCH, h=h)
        manager = make_lltrs_manager(data.graph, targets, cfg)
        result = indexed_select_seeds(
            data.graph, targets, tags, K, manager, cfg, rng=0
        )
        size_kb = result.index_stats.size_bytes / 1024.0
        sizes.append(size_kb)
        spreads.append(result.estimated_spread)
        rows.append(
            [h, size_kb,
             result.query_seconds + result.index_stats.build_seconds,
             result.estimated_spread]
        )
    print_table(
        "Figure 19: sensitivity to h (LL-TRS, Twitter analogue)",
        ["h", "index KB", "total time s", "est. spread"],
        rows,
    )
    emit(
        "\nShape check: index size grows with h; spread unaffected "
        "(paper Figure 19)."
    )
    assert sizes == sorted(sizes)
    assert max(spreads) - min(spreads) <= 0.3 * max(spreads) + 1.0

    benchmark.pedantic(
        lambda: indexed_select_seeds(
            data.graph, targets, tags, K,
            make_lltrs_manager(data.graph, targets, SKETCH), SKETCH, rng=0,
        ),
        rounds=1, iterations=1,
    )
