"""Table 7 — LL-TRS index size and query time vs probability mean, k, and r.

Paper claims: (a) lower edge probabilities → sparser possible worlds →
smaller indexes and faster queries; (b) index size is almost flat in k
(θ_c barely depends on θ once αδ(θ−1) ≫ r); (c) index size grows
roughly linearly in r; (d) LL-TRS queries ~30 % faster than TRS across
the grid.
"""

from __future__ import annotations

from benchmarks._harness import SKETCH, dataset, emit, print_table
from repro.core import frequency_tags
from repro.datasets import bfs_targets, twitter
from repro.index import indexed_select_seeds, make_lltrs_manager
from repro.sketch import trs_select_seeds

A_SWEEP = (5.0, 12.0, 30.0)   # prob means ≈ 0.27 / 0.13 / 0.06
K_SWEEP = (2, 5, 10)
R_SWEEP = (2, 5, 10)
TARGET_SIZE = 60


def test_table7a_probability_mean(benchmark):
    rows = []
    sizes = []
    for a in A_SWEEP:
        data = twitter(scale=0.25, a=a)
        mean_p = data.characteristics()["prob_mean"]
        targets = bfs_targets(data.graph, TARGET_SIZE)
        tags = frequency_tags(data.graph, targets, 5)
        trs = trs_select_seeds(data.graph, targets, tags, 5, SKETCH, rng=0)
        manager = make_lltrs_manager(data.graph, targets, SKETCH)
        ll = indexed_select_seeds(
            data.graph, targets, tags, 5, manager, SKETCH, rng=0
        )
        size_kb = ll.index_stats.size_bytes / 1024.0
        sizes.append((mean_p, size_kb))
        rows.append(
            [f"{mean_p:.2f}", size_kb, ll.query_seconds,
             trs.elapsed_seconds]
        )
    print_table(
        "Table 7(a): LL-TRS index size / query time vs edge-prob mean",
        ["mean p", "index KB", "LL-TRS qry s", "TRS qry s"],
        rows,
    )
    ordered = sorted(sizes)
    assert [s for _, s in ordered] == sorted(s for _, s in ordered)
    emit("\nShape check: smaller probabilities → smaller index.")

    data = dataset("twitter")
    targets = bfs_targets(data.graph, TARGET_SIZE)
    tags = frequency_tags(data.graph, targets, 5)
    benchmark.pedantic(
        lambda: trs_select_seeds(data.graph, targets, tags, 5, SKETCH, rng=0),
        rounds=1, iterations=1,
    )


def test_table7b_budget_grid(benchmark):
    data = dataset("twitter")
    targets = bfs_targets(data.graph, TARGET_SIZE)

    k_rows = []
    tags5 = frequency_tags(data.graph, targets, 5)
    k_sizes = []
    for k in K_SWEEP:
        manager = make_lltrs_manager(data.graph, targets, SKETCH)
        result = indexed_select_seeds(
            data.graph, targets, tags5, k, manager, SKETCH, rng=0
        )
        size_kb = result.index_stats.size_bytes / 1024.0
        k_sizes.append(size_kb)
        k_rows.append([f"k={k}", size_kb, result.query_seconds])

    r_sizes = []
    for r in R_SWEEP:
        tags = frequency_tags(data.graph, targets, r)
        manager = make_lltrs_manager(data.graph, targets, SKETCH)
        result = indexed_select_seeds(
            data.graph, targets, tags, 5, manager, SKETCH, rng=0
        )
        size_kb = result.index_stats.size_bytes / 1024.0
        r_sizes.append(size_kb)
        k_rows.append([f"r={r}", size_kb, result.query_seconds])

    print_table(
        "Table 7(b): LL-TRS index size (KB) / query time vs k and r",
        ["setting", "index KB", "query s"],
        k_rows,
    )
    emit(
        "\nShape check: index size ~flat in k, grows with r "
        "(paper: θ_c ≈ r/(αδ) once θ is large)."
    )
    assert max(k_sizes) <= 2.0 * min(k_sizes)
    assert r_sizes[-1] > r_sizes[0]

    benchmark.pedantic(
        lambda: indexed_select_seeds(
            data.graph, targets, tags5, K_SWEEP[0],
            make_lltrs_manager(data.graph, targets, SKETCH), SKETCH, rng=0,
        ),
        rounds=1, iterations=1,
    )
