"""Table 4 — characteristics of the (analogue) datasets.

Paper: lastFM 1.3K/14K/78 tags (mean p 0.26), DBLP 704K/4.7M/230 (0.26),
Yelp 125K/809K/195 (0.33), Twitter 6.3M/11M/500 (0.27). Our analogues
are scaled down ~400× but hold the tag-count ordering and probability
moments.
"""

from __future__ import annotations

from benchmarks._harness import dataset, print_table

NAMES = ("lastfm", "dblp", "yelp", "twitter")


def test_table4_dataset_characteristics(benchmark):
    rows = []
    for name in NAMES:
        chars = dataset(name).characteristics()
        q1, q2, q3 = chars["prob_quartiles"]
        rows.append(
            [
                name,
                chars["nodes"],
                chars["edges"],
                chars["tags"],
                chars["prob_mean"],
                chars["prob_std"],
                f"{{{q1:.2f}, {q2:.2f}, {q3:.2f}}}",
            ]
        )
    print_table(
        "Table 4: dataset characteristics (synthetic analogues)",
        ["dataset", "#nodes", "#edges", "#tags", "mean p", "sd", "quartiles"],
        rows,
    )
    # Benchmark the generation of the smallest dataset.
    from repro.datasets import lastfm

    benchmark.pedantic(
        lambda: lastfm(scale=0.25), rounds=1, iterations=1
    )
