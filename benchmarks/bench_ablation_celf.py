"""Ablation — CELF / CELF++ lazy evaluation in MC hill climbing.

Not a paper figure: the paper cites CELF [18] and CELF++ [11] as the
standard accelerations for the greedy oracle; this ablation verifies
that on our substrate lazy evaluation cuts spread evaluations by a
large factor without changing the selected seeds.
"""

from __future__ import annotations

from benchmarks._harness import dataset, emit, print_table
from repro.datasets import bfs_targets
from repro.seeds import greedy_mc_select_seeds

K, TARGET_SIZE, SAMPLES = 3, 30, 30


def test_ablation_celf_evaluations(benchmark):
    data = dataset("lastfm", scale=0.4)
    targets = bfs_targets(data.graph, TARGET_SIZE)
    tags = data.graph.tags[:5]

    celf = greedy_mc_select_seeds(
        data.graph, targets, tags, K, num_samples=SAMPLES,
        use_celf_plus_plus=False, rng=0,
    )
    celfpp = greedy_mc_select_seeds(
        data.graph, targets, tags, K, num_samples=SAMPLES,
        use_celf_plus_plus=True, rng=0,
    )
    naive_evals = data.graph.num_nodes * (K + 1)  # full rescan per round

    rows = [
        ["naive greedy (bound)", naive_evals, "-", "-"],
        ["CELF", celf.spread_evaluations, celf.estimated_spread,
         celf.elapsed_seconds],
        ["CELF++", celfpp.spread_evaluations, celfpp.estimated_spread,
         celfpp.elapsed_seconds],
    ]
    print_table(
        "Ablation: lazy evaluation in MC greedy (lastFM analogue)",
        ["variant", "spread evals", "est. spread", "time s"],
        rows,
    )
    emit(
        "\nShape check: both lazy variants stay well under the naive "
        "rescan bound and find seed sets of equal quality."
    )
    assert celf.spread_evaluations < naive_evals
    assert celfpp.estimated_spread >= 0.8 * celf.estimated_spread

    benchmark.pedantic(
        lambda: greedy_mc_select_seeds(
            data.graph, targets, tags, K, num_samples=SAMPLES, rng=0
        ),
        rounds=1, iterations=1,
    )
