"""Table 5 — accuracy and efficiency of the four initialization methods.

Paper claims: all combinations (RS/IMS × RT/FT) converge to similar
spreads for large k (small-k runs from RT can stick in worse local
optima); FT-based starts are the cheapest because the initial tag set
is already good, while IMS is expensive without buying much. RS + FT
is the recommended default.
"""

from __future__ import annotations

from benchmarks._harness import (
    SKETCH,
    TAGS_CFG,
    dataset,
    emit,
    print_table,
    spread_pct,
)
from repro import JointConfig, JointQuery, jointly_select
from repro.datasets import bfs_targets

K_SWEEP = (3, 10)
R, TARGET_SIZE = 8, 50

COMBOS = (
    ("RS+RT", "random", "random"),
    ("IMS+RT", "ims", "random"),
    ("RS+FT", "random", "frequency"),
    ("IMS+FT", "ims", "frequency"),
)


def test_table5_initialization_methods(benchmark):
    data = dataset("yelp")
    targets = bfs_targets(data.graph, TARGET_SIZE)

    rows = []
    spreads_at_max_k: dict[str, float] = {}
    times: dict[str, float] = {}
    for label, seed_init, tag_init in COMBOS:
        row: list[object] = [label]
        total_time = 0.0
        for k in K_SWEEP:
            cfg = JointConfig(
                max_rounds=4, seed_init=seed_init, tag_init=tag_init,
                sketch=SKETCH, tag_config=TAGS_CFG, eval_samples=150,
            )
            result = jointly_select(
                data.graph, JointQuery(targets, k=k, r=R), cfg, rng=0
            )
            row.append(spread_pct(result.spread, TARGET_SIZE))
            row.append(result.elapsed_seconds)
            total_time += result.elapsed_seconds
            if k == K_SWEEP[-1]:
                spreads_at_max_k[label] = result.spread
        times[label] = total_time
        rows.append(row)

    headers = ["init"]
    for k in K_SWEEP:
        headers += [f"k={k} %", f"k={k} s"]
    print_table(
        f"Table 5: initialization methods, Yelp analogue (r={R})",
        headers,
        rows,
    )

    best = max(spreads_at_max_k.values())
    worst = min(spreads_at_max_k.values())
    emit(
        f"\nShape check: at k={K_SWEEP[-1]} all initializations land "
        f"within {100 * (best - worst) / max(best, 1e-9):.0f}% of each "
        "other (paper: similar final spreads for large enough k)."
    )
    assert worst >= 0.6 * best

    benchmark.pedantic(
        lambda: jointly_select(
            data.graph, JointQuery(targets, k=K_SWEEP[0], r=R),
            JointConfig(
                max_rounds=2, sketch=SKETCH, tag_config=TAGS_CFG,
                eval_samples=100,
            ),
            rng=0,
        ),
        rounds=1, iterations=1,
    )
