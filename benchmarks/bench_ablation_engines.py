"""Ablation — seed-engine quality/time trade-off: MC greedy vs sketching.

Not a paper figure: the paper replaces the classical MC greedy oracle
with reverse sketching for scalability. This ablation quantifies what
that buys on our substrate: CELF-accelerated MC greedy is the quality
reference but orders of magnitude slower; TRS and the indexed engines
match its seed quality at a fraction of the cost.
"""

from __future__ import annotations

from benchmarks._harness import (
    EVAL_SAMPLES,
    SKETCH,
    dataset,
    emit,
    print_table,
)
from repro import estimate_spread, find_seeds
from repro.core import frequency_tags
from repro.datasets import bfs_targets

K, R, TARGET_SIZE = 3, 5, 30
ENGINES = ("greedy-mc", "trs", "imm", "ltrs", "lltrs")


def test_ablation_engine_tradeoff(benchmark):
    data = dataset("lastfm", scale=0.4)
    targets = bfs_targets(data.graph, TARGET_SIZE)
    tags = frequency_tags(data.graph, targets, R)

    rows = []
    quality = {}
    times = {}
    for engine in ENGINES:
        sel = find_seeds(
            data.graph, targets, tags, K,
            engine=engine, config=SKETCH, num_samples=30, rng=0,
        )
        verified = estimate_spread(
            data.graph, sel.seeds, targets, tags,
            num_samples=EVAL_SAMPLES, rng=5,
        )
        quality[engine] = verified
        times[engine] = sel.elapsed_seconds
        rows.append([engine, verified, sel.elapsed_seconds])

    print_table(
        "Ablation: seed engines — verified spread and time (lastFM)",
        ["engine", "MC-verified spread", "time s"],
        rows,
    )
    emit(
        "\nShape check: sketch engines match MC-greedy quality and are "
        "far faster (the paper's reason for adopting reverse sketching)."
    )
    reference = quality["greedy-mc"]
    for engine in ("trs", "imm", "ltrs", "lltrs"):
        assert quality[engine] >= 0.7 * reference, (engine, quality)
        assert times[engine] < times["greedy-mc"], (engine, times)

    benchmark.pedantic(
        lambda: find_seeds(
            data.graph, targets, tags, K,
            engine="trs", config=SKETCH, rng=0,
        ),
        rounds=1, iterations=1,
    )
