"""Ablation — spread estimators across diffusion models: MC-IC, MIA, LT.

Not a paper figure: positions the paper's IC Monte-Carlo estimator
against the MIA heuristic (its cited simulation-free alternative) and
the Linear Threshold extension on one shared scenario. Expected shape:
MIA tracks MC-IC closely on sparse graphs at a fraction of the cost;
LT (with capacity-normalized weights) produces smaller spreads because
normalization shrinks high-fan-in probabilities.
"""

from __future__ import annotations

import time

from benchmarks._harness import SKETCH, dataset, emit, print_table
from repro.core import frequency_tags
from repro.datasets import bfs_targets
from repro.diffusion import estimate_lt_spread, estimate_spread, mia_spread
from repro.sketch import trs_select_seeds

K, R, TARGET_SIZE = 5, 5, 40


def test_ablation_diffusion_models(benchmark):
    data = dataset("lastfm", scale=0.5)
    targets = bfs_targets(data.graph, TARGET_SIZE)
    tags = frequency_tags(data.graph, targets, R)
    seeds = trs_select_seeds(
        data.graph, targets, tags, K, SKETCH, rng=0
    ).seeds

    rows = []
    t0 = time.perf_counter()
    mc = estimate_spread(
        data.graph, seeds, targets, tags, num_samples=500, rng=1
    )
    rows.append(["MC-IC (500 samples)", mc, time.perf_counter() - t0])

    t0 = time.perf_counter()
    mia = mia_spread(data.graph, seeds, targets, tags, theta=0.001)
    rows.append(["MIA (θ=0.001)", mia, time.perf_counter() - t0])

    t0 = time.perf_counter()
    lt = estimate_lt_spread(
        data.graph, seeds, targets, tags, num_samples=500, rng=1
    )
    rows.append(["MC-LT (500 samples)", lt, time.perf_counter() - t0])

    print_table(
        "Ablation: diffusion models / estimators on one scenario (lastFM)",
        ["estimator", "spread", "time s"],
        rows,
    )
    emit(
        "\nShape check: MIA approximates MC-IC; LT ≤ IC after capacity "
        "normalization of fan-in probabilities."
    )
    assert mia == pytest_approx(mc, rel=0.6)
    assert lt <= mc * 1.2

    benchmark.pedantic(
        lambda: mia_spread(data.graph, seeds, targets, tags, theta=0.001),
        rounds=1, iterations=1,
    )


def pytest_approx(value: float, rel: float) -> object:
    import pytest

    return pytest.approx(value, rel=rel)
