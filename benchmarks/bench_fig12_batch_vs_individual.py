"""Figure 12 — batch-paths vs individual-paths tag selection.

Paper claims: with the same enumerated path pool, batch selection
achieves up to 30 % more influence spread than individual selection at
comparable running time, across the paths-per-pair sweep; ~10 paths per
pair is the accuracy sweet spot.
"""

from __future__ import annotations

from benchmarks._harness import (
    EVAL_SAMPLES,
    SKETCH,
    TAGS_CFG,
    dataset,
    emit,
    print_table,
    spread_pct,
)
from repro import estimate_spread, find_seeds
from repro.datasets import bfs_targets
from repro.tags import TagSelectionConfig, collect_paths, find_tags

L_SWEEP = (2, 5, 10, 15)
K, R, TARGET_SIZE = 5, 5, 50


def test_fig12_batch_vs_individual(benchmark):
    import dataclasses

    data = dataset("twitter")
    targets = bfs_targets(data.graph, TARGET_SIZE)
    seeds = find_seeds(
        data.graph, targets, data.graph.tags, K,
        engine="lltrs", config=SKETCH, rng=0,
    ).seeds

    rows = []
    batch_beats = 0
    means = {"batch": 0.0, "individual": 0.0}
    for l in L_SWEEP:
        # Quality comparison wants the full path pool: lift the sweep
        # harness's enumeration cap for this experiment.
        cfg = dataclasses.replace(
            TAGS_CFG, per_pair_paths=l, max_queue=100_000
        )
        paths = collect_paths(data.graph, seeds, targets, cfg, rng=0)
        results = {}
        for method in ("batch", "individual"):
            sel = find_tags(
                data.graph, seeds, targets, R,
                method=method, config=cfg, rng=0, paths=paths,
            )
            verified = estimate_spread(
                data.graph, seeds, targets, sel.tags,
                num_samples=EVAL_SAMPLES, rng=3,
            ) if sel.tags else 0.0
            results[method] = (verified, sel.elapsed_seconds)
        if results["batch"][0] >= results["individual"][0]:
            batch_beats += 1
        for method in means:
            means[method] += results[method][0] / len(L_SWEEP)
        rows.append(
            [l, len(paths),
             spread_pct(results["batch"][0], TARGET_SIZE),
             spread_pct(results["individual"][0], TARGET_SIZE),
             results["batch"][1], results["individual"][1]]
        )

    print_table(
        "Figure 12: batch vs individual paths selection (Twitter analogue)",
        ["paths/pair", "|pool|", "batch %", "indiv %", "batch s", "indiv s"],
        rows,
    )
    emit(
        f"\nShape check: batch ≥ individual spread in {batch_beats}/"
        f"{len(L_SWEEP)} sweep points; mean batch "
        f"{means['batch']:.1f} vs individual {means['individual']:.1f} "
        "(paper: batch wins by up to 30 pp)."
    )
    assert batch_beats >= len(L_SWEEP) // 2
    assert means["batch"] >= 0.95 * means["individual"]

    cfg = dataclasses.replace(TAGS_CFG, per_pair_paths=5)
    paths = collect_paths(data.graph, seeds, targets, cfg, rng=0)
    benchmark.pedantic(
        lambda: find_tags(
            data.graph, seeds, targets, R,
            method="batch", config=cfg, rng=0, paths=paths,
        ),
        rounds=1, iterations=1,
    )
