"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*.py`` regenerates one table or figure from the paper's
evaluation section: it sweeps the same parameters (scaled down for the
pure-Python substrate), prints the same rows/series the paper reports,
and registers one representative operation with pytest-benchmark. The
printed output is the deliverable — absolute numbers differ from the
paper's C++/Xeon setup, the *shapes* are what EXPERIMENTS.md records.
"""

from __future__ import annotations

from functools import lru_cache

from repro import SketchConfig, TagSelectionConfig
from repro.datasets import Dataset, dblp, lastfm, twitter, yelp

#: Sweep-friendly sketch parameters (paper defaults: ε=0.1, δ=0.01, α=1, h=3).
SKETCH = SketchConfig(pilot_samples=150, theta_min=400, theta_max=2500)

#: Tag-selection parameters (paper default: 10 paths per seed-target pair).
#: ``max_queue`` caps each per-seed path sweep so far-away seeds cannot
#: dominate the wall clock.
TAGS_CFG = TagSelectionConfig(
    per_pair_paths=5, max_path_targets=40, max_queue=20_000
)

#: Monte-Carlo samples for independent spread verification.
EVAL_SAMPLES = 300


@lru_cache(maxsize=None)
def dataset(name: str, scale: float = 0.25, a: float | None = None) -> Dataset:
    """Cached named dataset (benchmarks share instances across files)."""
    factories = {
        "lastfm": lastfm, "dblp": dblp, "yelp": yelp, "twitter": twitter,
    }
    factory = factories[name]
    if a is None:
        return factory(scale=scale)
    return factory(scale=scale, a=a)


#: Accumulated experiment tables; flushed by the benchmarks conftest's
#: ``pytest_terminal_summary`` hook so they survive output capture.
REPORT_LINES: list[str] = []


def emit(line: str = "") -> None:
    """Print a line now (visible under ``-s``) and queue it for the summary."""
    print(line)
    REPORT_LINES.append(line)


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print one experiment's table in a fixed-width layout."""
    from repro.analysis import format_table

    emit("\n" + format_table(headers, rows, title=title))


def spread_pct(spread: float, num_targets: int) -> float:
    """Spread as a percentage of the target-set size."""
    if num_targets <= 0:
        return 0.0
    return 100.0 * spread / num_targets
