"""Figure 13 — spread and running time vs seed budget k (lastFM, Twitter).

Paper claims: the iterative algorithm beats the interleaved greedy
baseline in spread at similar running time; spread grows with k
(steeply at small k, flattening later); running time grows roughly
linearly in k.
"""

from __future__ import annotations

from benchmarks._harness import (
    SKETCH,
    TAGS_CFG,
    dataset,
    emit,
    print_table,
    spread_pct,
)
from repro import BaselineConfig, JointConfig, JointQuery, baseline_greedy, jointly_select
from repro.datasets import bfs_targets

K_SWEEP = (2, 5, 10, 20)
R, TARGET_SIZE = 5, 50

JOINT = JointConfig(
    max_rounds=3, sketch=SKETCH, tag_config=TAGS_CFG, eval_samples=150
)
BASE = BaselineConfig(rr_samples=300, eval_samples=80, sketch=SKETCH)


def _sweep(name: str):
    data = dataset(name)
    targets = bfs_targets(data.graph, TARGET_SIZE)
    rows = []
    wins = 0
    for k in K_SWEEP:
        query = JointQuery(targets, k=k, r=R)
        iterative = jointly_select(data.graph, query, JOINT, rng=0)
        base = baseline_greedy(data.graph, query, BASE, rng=0)
        if iterative.spread >= base.spread:
            wins += 1
        rows.append(
            [k,
             spread_pct(base.spread, TARGET_SIZE),
             spread_pct(iterative.spread, TARGET_SIZE),
             base.elapsed_seconds, iterative.elapsed_seconds]
        )
    print_table(
        f"Figure 13 ({name}): spread %, time (s) vs #seeds (r={R})",
        ["k", "greedy %", "iterative %", "greedy s", "iterative s"],
        rows,
    )
    return rows, wins


def test_fig13_vary_seed_budget(benchmark):
    total_wins = 0
    monotone_ok = True
    for name in ("lastfm", "twitter"):
        rows, wins = _sweep(name)
        total_wins += wins
        spreads = [row[2] for row in rows]
        if spreads[-1] < spreads[0] - 5.0:
            monotone_ok = False
    emit(
        f"\nShape check: iterative ≥ greedy in {total_wins}/"
        f"{2 * len(K_SWEEP)} points; spread grows with k."
    )
    assert total_wins >= len(K_SWEEP)  # at least half the points
    assert monotone_ok

    data = dataset("lastfm")
    targets = bfs_targets(data.graph, TARGET_SIZE)
    benchmark.pedantic(
        lambda: jointly_select(
            data.graph, JointQuery(targets, k=K_SWEEP[0], r=R), JOINT, rng=0
        ),
        rounds=1, iterations=1,
    )
