"""Table 2 — accuracy: TRS vs I-TRS with optimal tags on Yelp.

Paper claim: the indexed estimator deviates from guarantee-bearing TRS
by at most ±0.2 % of target-set spread across both the r-sweep (k=20)
and the k-sweep (r=20). On our smaller substrate (fewer RR sets, MC
verification noise) we assert a proportionally looser but still tight
band.
"""

from __future__ import annotations

from benchmarks._harness import (
    EVAL_SAMPLES,
    SKETCH,
    dataset,
    emit,
    print_table,
    spread_pct,
)
from repro import estimate_spread
from repro.core import frequency_tags
from repro.datasets import bfs_targets
from repro.index import indexed_select_seeds, make_ltrs_manager
from repro.sketch import trs_select_seeds

TARGET_SIZE = 60
R_SWEEP = (2, 5, 10)   # with k fixed
K_SWEEP = (5, 10, 20)  # with r fixed
K_FIXED, R_FIXED = 10, 10


def _pair(data, targets, tags, k):
    """Run TRS and I-TRS; verify both seed sets with one MC estimator."""
    trs = trs_select_seeds(data.graph, targets, tags, k, SKETCH, rng=0)
    manager = make_ltrs_manager(data.graph)
    itrs = indexed_select_seeds(
        data.graph, targets, tags, k, manager, SKETCH, rng=0
    )
    trs_spread = estimate_spread(
        data.graph, trs.seeds, targets, tags,
        num_samples=EVAL_SAMPLES, rng=7,
    )
    itrs_spread = estimate_spread(
        data.graph, itrs.seeds, targets, tags,
        num_samples=EVAL_SAMPLES, rng=7,
    )
    return trs_spread, itrs_spread


def test_table2_trs_vs_itrs_accuracy(benchmark):
    data = dataset("yelp")
    targets = bfs_targets(data.graph, TARGET_SIZE)

    rows = []
    deviations = []
    for r in R_SWEEP:
        tags = frequency_tags(data.graph, targets, r)
        trs_s, itrs_s = _pair(data, targets, tags, K_FIXED)
        dev = spread_pct(itrs_s, TARGET_SIZE) - spread_pct(trs_s, TARGET_SIZE)
        deviations.append(dev)
        rows.append(
            [f"r={r} (k={K_FIXED})", spread_pct(trs_s, TARGET_SIZE),
             spread_pct(itrs_s, TARGET_SIZE), dev]
        )
    tags_fixed = frequency_tags(data.graph, targets, R_FIXED)
    for k in K_SWEEP:
        trs_s, itrs_s = _pair(data, targets, tags_fixed, k)
        dev = spread_pct(itrs_s, TARGET_SIZE) - spread_pct(trs_s, TARGET_SIZE)
        deviations.append(dev)
        rows.append(
            [f"k={k} (r={R_FIXED})", spread_pct(trs_s, TARGET_SIZE),
             spread_pct(itrs_s, TARGET_SIZE), dev]
        )

    print_table(
        "Table 2: spread in targets (%) — TRS vs I-TRS",
        ["setting", "TRS %", "I-TRS %", "deviation"],
        rows,
    )
    worst = max(abs(d) for d in deviations)
    emit(
        f"\nShape check: worst |deviation| = {worst:.2f} pp "
        "(paper: ≤0.2 pp at θ in the millions; ours uses ~10³ RR sets)."
    )
    assert worst <= 8.0, worst

    benchmark.pedantic(
        lambda: _pair(data, targets, tags_fixed, K_SWEEP[0]),
        rounds=1, iterations=1,
    )
