"""Figure 20 — convergence trajectories under different edge-probability means.

Paper claims: regenerating Yelp with ``a`` ∈ {80, 40, 20, 10, 5}
(mean probabilities ≈ 0.06 … 0.51) does not change the convergence
behaviour of RS+FT — similar growth and convergence in ~3 rounds —
while the achievable spread rises with the probability level.
"""

from __future__ import annotations

from benchmarks._harness import (
    SKETCH,
    TAGS_CFG,
    emit,
    print_table,
    spread_pct,
)
from repro import JointConfig, JointQuery, jointly_select
from repro.datasets import bfs_targets, yelp

A_SWEEP = (80.0, 40.0, 20.0, 10.0, 5.0)
K, R, TARGET_SIZE = 5, 8, 50
STEPS = (0.0, 0.5, 1.0, 1.5, 2.0)


def test_fig20_edge_probability_levels(benchmark):
    rows = []
    finals = []
    for a in A_SWEEP:
        data = yelp(scale=0.25, a=a)
        mean_p = data.characteristics()["prob_mean"]
        targets = bfs_targets(data.graph, TARGET_SIZE)
        cfg = JointConfig(
            max_rounds=3, sketch=SKETCH, tag_config=TAGS_CFG,
            eval_samples=150,
        )
        result = jointly_select(
            data.graph, JointQuery(targets, k=K, r=R), cfg, rng=0
        )
        by_step = {h.step: h.spread for h in result.history}
        row: list[object] = [f"{mean_p:.2f}"]
        for step in STEPS:
            if step in by_step:
                row.append(spread_pct(by_step[step], TARGET_SIZE))
            else:
                row.append("conv")
        row.append(result.rounds)
        rows.append(row)
        finals.append(max(h.spread for h in result.history))

    print_table(
        "Figure 20: spread (%) per half-iteration, varying mean edge prob",
        ["mean p"] + [str(s) for s in STEPS] + ["rounds"],
        rows,
    )
    emit(
        "\nShape check: higher edge probabilities reach higher final "
        "spread; all runs converge within the round budget."
    )
    assert finals[-1] > finals[0]

    benchmark.pedantic(lambda: yelp(scale=0.25, a=10.0), rounds=1, iterations=1)
