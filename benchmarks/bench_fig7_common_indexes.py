"""Figure 7 — Theorem 6 in practice: index correlation and θ_c vs θ.

Paper claims: (a) the average number of pairwise common indexes between
working graphs matches its analytical expectation (Eq. 13) and stays
tiny (~0.01 for α=1, δ=0.01); (b) θ_c is 3–4 orders of magnitude
smaller than θ. Both are direct consequences of Theorem 6 and
reproduce at any scale.
"""

from __future__ import annotations

from benchmarks._harness import SKETCH, dataset, emit, print_table
from repro.core import frequency_tags
from repro.datasets import bfs_targets
from repro.index import (
    average_pairwise_common_indexes,
    indexed_select_seeds,
    make_ltrs_manager,
)
from repro.index.stats import expected_pairwise_common_indexes

R_SWEEP = (2, 5, 10, 15)
K, TARGET_SIZE = 5, 60


def test_fig7_pairwise_common_indexes(benchmark):
    data = dataset("yelp")
    targets = bfs_targets(data.graph, TARGET_SIZE)

    rows = []
    for r in R_SWEEP:
        tags = frequency_tags(data.graph, targets, r)
        manager = make_ltrs_manager(data.graph)
        result = indexed_select_seeds(
            data.graph, targets, tags, K, manager, SKETCH,
            rng=0, record_choices=True,
        )
        empirical = average_pairwise_common_indexes(result.world_choices)
        expected = expected_pairwise_common_indexes(
            result.theta, result.theta_c, r
        )
        rows.append(
            [r, result.theta, result.theta_c,
             f"{expected:.4f}", f"{empirical:.4f}"]
        )
        assert empirical <= max(4 * SKETCH.alpha, 8 * expected + 0.05), (
            r, empirical, expected,
        )

    print_table(
        "Figure 7: θ, θ_c, and C(G) — expected (Eq. 13) vs empirical",
        ["r", "θ", "θ_c", "E[C(G)]", "empirical C(G)"],
        rows,
    )
    emit(
        "\nShape check: empirical C(G) tracks the Eq. 13 expectation and "
        "stays below α=1; θ_c is far below θ."
    )

    benchmark.pedantic(
        lambda: indexed_select_seeds(
            data.graph, targets,
            frequency_tags(data.graph, targets, R_SWEEP[0]),
            K, make_ltrs_manager(data.graph), SKETCH, rng=0,
        ),
        rounds=1, iterations=1,
    )
