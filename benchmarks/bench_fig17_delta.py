"""Figure 17 — sensitivity to δ (Theorem 6's probability bound).

Paper claims: smaller δ → more possible-world indexes per tag (θ_c
grows) → indexing time grows roughly linearly as δ shrinks by decades,
while accuracy is flat once δ ≤ 0.01. δ = 0.01 is the default.
"""

from __future__ import annotations

import dataclasses

from benchmarks._harness import SKETCH, dataset, emit, print_table
from repro.core import frequency_tags
from repro.datasets import bfs_targets
from repro.index import indexed_select_seeds, make_ltrs_manager

DELTA_SWEEP = (0.0001, 0.001, 0.01, 0.1)
K, R, TARGET_SIZE = 5, 5, 60


def test_fig17_delta_sensitivity(benchmark):
    data = dataset("twitter")
    targets = bfs_targets(data.graph, TARGET_SIZE)
    tags = frequency_tags(data.graph, targets, R)

    rows = []
    theta_cs = []
    spreads = []
    for delta in DELTA_SWEEP:
        cfg = dataclasses.replace(SKETCH, delta=delta)
        manager = make_ltrs_manager(data.graph)
        result = indexed_select_seeds(
            data.graph, targets, tags, K, manager, cfg, rng=0
        )
        theta_cs.append(result.theta_c)
        spreads.append(result.estimated_spread)
        rows.append(
            [f"{delta:g}", result.theta_c,
             result.index_stats.build_seconds,
             result.index_stats.size_bytes / 1024.0,
             result.estimated_spread]
        )
    print_table(
        "Figure 17: sensitivity to δ (I-TRS indexing, Twitter analogue)",
        ["δ", "θ_c", "build s", "index KB", "est. spread"],
        rows,
    )
    emit(
        "\nShape check: θ_c (and index cost) grows as δ shrinks; "
        "spread flat for δ ≤ 0.01 (paper Figure 17)."
    )
    assert theta_cs == sorted(theta_cs, reverse=True)
    assert abs(spreads[1] - spreads[2]) <= 0.25 * max(spreads) + 1.0

    benchmark.pedantic(
        lambda: indexed_select_seeds(
            data.graph, targets, tags, K, make_ltrs_manager(data.graph),
            SKETCH, rng=0,
        ),
        rounds=1, iterations=1,
    )
