"""Table 3 — index size, build time, query time: I-TRS vs L-TRS vs LL-TRS.

Paper claims, per dataset: L-TRS indexes are ~10× smaller than I-TRS
(only queried tags get indexed), LL-TRS smaller still (local region
only), build time follows the same ordering, and query times are
similar across the three (h is chosen so local traversal does not
slow queries).
"""

from __future__ import annotations

from benchmarks._harness import SKETCH, dataset, emit, print_table
from repro.core import frequency_tags
from repro.datasets import bfs_targets
from repro.index import (
    indexed_select_seeds,
    make_itrs_manager,
    make_lltrs_manager,
    make_ltrs_manager,
)

NAMES = ("lastfm", "dblp", "yelp", "twitter")
K, R, TARGET_SIZE = 5, 5, 50


def _run(data, targets, tags, manager):
    result = indexed_select_seeds(
        data.graph, targets, tags, K, manager, SKETCH, rng=0
    )
    stats = result.index_stats
    return stats.size_bytes / 1024.0, stats.build_seconds, result.query_seconds


def test_table3_index_costs(benchmark):
    rows = []
    for name in NAMES:
        data = dataset(name)
        targets = bfs_targets(data.graph, min(TARGET_SIZE, data.graph.num_nodes // 3))
        tags = frequency_tags(data.graph, targets, R)

        itrs_mgr = make_itrs_manager(
            data.graph, theta=SKETCH.theta_max, r=R, config=SKETCH, rng=0
        )
        i_size, i_build, i_query = _run(data, targets, tags, itrs_mgr)
        l_size, l_build, l_query = _run(
            data, targets, tags, make_ltrs_manager(data.graph)
        )
        ll_size, ll_build, ll_query = _run(
            data, targets, tags, make_lltrs_manager(data.graph, targets, SKETCH)
        )
        rows.append(
            [name, i_size, l_size, ll_size, i_build, l_build, ll_build,
             i_query, l_query, ll_query]
        )
        assert ll_size <= l_size <= i_size, (name, i_size, l_size, ll_size)

    print_table(
        "Table 3: index size (KB), build time (s), query time (s)",
        ["dataset", "I sz", "L sz", "LL sz", "I bld", "L bld", "LL bld",
         "I qry", "L qry", "LL qry"],
        rows,
    )
    emit(
        "\nShape check: LL-TRS ≤ L-TRS ≤ I-TRS in both size and build "
        "time on every dataset; query times comparable (paper Table 3)."
    )

    data = dataset("lastfm")
    targets = bfs_targets(data.graph, 30)
    tags = frequency_tags(data.graph, targets, R)
    benchmark.pedantic(
        lambda: _run(data, targets, tags, make_ltrs_manager(data.graph)),
        rounds=1, iterations=1,
    )
