"""Microbenchmarks of the hot primitives (multi-round pytest-benchmark).

Unlike the experiment benches (one pedantic round each, table output),
these measure the throughput-critical inner operations with proper
statistics: IC cascade simulation, RR-set sampling, working-graph
union + deterministic reverse BFS, path enumeration, and combined
edge-probability aggregation. Useful for tracking performance
regressions of the substrate itself.
"""

from __future__ import annotations

import numpy as np

from benchmarks._harness import SKETCH, dataset
from repro.datasets import bfs_targets
from repro.diffusion import simulate_cascade
from repro.engine import (
    SamplingEngine,
    batched_cascade_counts,
    batched_rr_members,
    cascade_frontier,
    rr_frontier,
)
from repro.index import make_ltrs_manager
from repro.index.itrs import _hybrid_rr_set
from repro.sketch import reverse_reachable_set
from repro.tags import TagSelectionConfig, top_paths_from_seed


def _setup():
    data = dataset("twitter")
    graph = data.graph
    targets = bfs_targets(graph, 60)
    tags = list(graph.tags[:5])
    probs = graph.edge_probabilities(tags)
    return graph, targets, tags, probs


def test_micro_edge_probability_aggregation(benchmark):
    graph, _targets, tags, _probs = _setup()
    result = benchmark(graph.edge_probabilities, tags)
    assert result.shape == (graph.num_edges,)


def test_micro_ic_cascade(benchmark):
    graph, _targets, _tags, probs = _setup()
    rng = np.random.default_rng(0)
    active = benchmark(simulate_cascade, graph, [0, 1, 2], probs, rng)
    assert active.shape == (graph.num_nodes,)


def test_micro_rr_set_online(benchmark):
    graph, targets, _tags, probs = _setup()
    rng = np.random.default_rng(0)
    root = int(targets[0])
    rr = benchmark(reverse_reachable_set, graph, root, probs, rng)
    assert root in rr.tolist()


def test_micro_rr_set_indexed(benchmark):
    graph, targets, tags, probs = _setup()
    manager = make_ltrs_manager(graph)
    manager.ensure_indexes(tags, 50, rng=0)
    rng = np.random.default_rng(0)
    covered = manager.covered_mask
    root = int(targets[0])
    buffer = np.zeros(graph.num_edges, dtype=bool)

    def indexed_rr():
        choices = manager.sample_world_choices(tags, rng)
        working = manager.working_mask(choices, out=buffer)
        return _hybrid_rr_set(graph, root, working, covered, probs, rng)

    rr = benchmark(indexed_rr)
    assert root in rr.tolist()


def test_micro_path_enumeration(benchmark):
    graph, targets, _tags, _probs = _setup()
    cfg = TagSelectionConfig(per_pair_paths=5, max_queue=20_000)
    source = int(targets[0])
    goal = [int(t) for t in targets[1:20]]
    found = benchmark(
        top_paths_from_seed, graph, source, goal, 5,
        frozenset({source}), cfg,
    )
    assert isinstance(found, dict)


def test_micro_ic_cascade_vectorized(benchmark):
    graph, _targets, _tags, probs = _setup()
    rng = np.random.default_rng(0)
    active = benchmark(cascade_frontier, graph, [0, 1, 2], probs, rng)
    assert active.shape == (graph.num_nodes,)


def test_micro_rr_set_vectorized(benchmark):
    graph, targets, _tags, probs = _setup()
    rng = np.random.default_rng(0)
    root = int(targets[0])
    rr = benchmark(rr_frontier, graph, root, probs, rng)
    assert root in rr.tolist()


def test_micro_rr_batch_scalar(benchmark):
    """100 RR samples, one scalar traversal per sample (the old path)."""
    graph, targets, _tags, probs = _setup()
    rng = np.random.default_rng(0)
    roots = rng.choice(targets, size=100)

    def scalar_batch():
        return [
            reverse_reachable_set(graph, int(r), probs, rng) for r in roots
        ]

    sets = benchmark(scalar_batch)
    assert len(sets) == 100


def test_micro_rr_batch_vectorized(benchmark):
    """The same 100 samples advanced together, level-synchronously."""
    graph, targets, _tags, probs = _setup()
    rng = np.random.default_rng(0)
    roots = np.asarray(rng.choice(targets, size=100), dtype=np.int64)
    members, indptr = benchmark(
        batched_rr_members, graph, roots, probs, rng
    )
    assert indptr.size == 101


def test_micro_cascade_batch_vectorized(benchmark):
    graph, targets, _tags, probs = _setup()
    rng = np.random.default_rng(0)
    target_arr = np.asarray(targets, dtype=np.int64)
    counts = benchmark(
        batched_cascade_counts,
        graph, np.array([0, 1, 2], dtype=np.int64), probs, 100,
        target_arr, rng,
    )
    assert counts.size == 100


def test_micro_rr_batch_parallel(benchmark):
    """The sharded driver end to end (pool startup amortized outside)."""
    graph, targets, _tags, probs = _setup()
    target_arr = np.asarray(targets, dtype=np.int64)
    with SamplingEngine(
        mode="vectorized", workers=2, shard_size=64
    ) as engine:
        engine.sample_rr_sets(graph, target_arr, probs, 8, rng=0)  # warm up
        rr = benchmark(
            engine.sample_rr_sets, graph, target_arr, probs, 100, 0
        )
    assert rr.num_sets == 100


def test_micro_index_build(benchmark):
    graph, _targets, tags, _probs = _setup()

    def build():
        manager = make_ltrs_manager(graph)
        manager.ensure_indexes(tags, 50, rng=0)
        return manager

    manager = benchmark(build)
    assert manager.stats.worlds_built == 50 * len(tags)
