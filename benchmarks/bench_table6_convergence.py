"""Table 6 — spread after 1, 1.5, 2 … iterations per initialization.

Paper claims: RS+RT starts lowest and needs the most rounds (~2.5 to
the local optimum plus one to confirm); seeding with IMS or FT starts
much higher and converges 1–1.5 rounds earlier; FT-based runs reach
their fixed point by round ~2–3.
"""

from __future__ import annotations

from benchmarks._harness import (
    SKETCH,
    TAGS_CFG,
    dataset,
    emit,
    print_table,
    spread_pct,
)
from repro import JointConfig, JointQuery, jointly_select
from repro.datasets import bfs_targets

K, R, TARGET_SIZE = 5, 8, 50
STEPS = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0)

COMBOS = (
    ("RS+RT", "random", "random"),
    ("IMS+RT", "ims", "random"),
    ("RS+FT", "random", "frequency"),
    ("IMS+FT", "ims", "frequency"),
)


def test_table6_convergence_trajectories(benchmark):
    data = dataset("yelp")
    targets = bfs_targets(data.graph, TARGET_SIZE)

    rows = []
    final = {}
    start = {}
    for label, seed_init, tag_init in COMBOS:
        cfg = JointConfig(
            max_rounds=4, seed_init=seed_init, tag_init=tag_init,
            sketch=SKETCH, tag_config=TAGS_CFG, eval_samples=150,
        )
        result = jointly_select(
            data.graph, JointQuery(targets, k=K, r=R), cfg, rng=0
        )
        by_step = {h.step: h.spread for h in result.history}
        row: list[object] = [label]
        last = 0.0
        for step in STEPS:
            if step in by_step:
                last = by_step[step]
                row.append(spread_pct(last, TARGET_SIZE))
            else:
                row.append("conv")
        rows.append(row)
        final[label] = max(h.spread for h in result.history)
        start[label] = by_step[0.0]

    print_table(
        f"Table 6: spread (%) after each half-iteration (k={K}, r={R})",
        ["init"] + [str(s) for s in STEPS],
        rows,
    )
    emit(
        "\nShape check: informed starts (FT/IMS) begin higher than "
        "RS+RT; all trajectories converge to similar spreads."
    )
    assert start["RS+FT"] >= start["RS+RT"]
    best = max(final.values())
    assert min(final.values()) >= 0.6 * best

    benchmark.pedantic(
        lambda: jointly_select(
            data.graph, JointQuery(targets, k=K, r=R),
            JointConfig(
                max_rounds=2, sketch=SKETCH, tag_config=TAGS_CFG,
                eval_samples=100,
            ),
            rng=0,
        ),
        rounds=1, iterations=1,
    )
