"""Validate a ``BENCH_serve.json`` produced by ``benchmarks/bench_serve.py``.

CI gate companion to the serving benchmark: re-checks the written
artifact (rather than the bench process exit code) so the numbers that
get uploaded are the numbers that passed. Asserts that

* the gated (last) config's warm-over-cold speedup meets the floor
  (default 5x — cross-query sketch reuse is the serving layer's
  raison d'etre);
* the concurrent duplicate burst actually exercised single-flight:
  exactly one build, at least one ``singleflight_joins``, and every
  duplicate answered (misses + hits == fanout);
* per-op latency quantiles are present and ordered
  (p50 <= p95 <= p99) for every recorded op.

Usage::

    python scripts/check_bench.py BENCH_serve.json --min-speedup 5.0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check(payload: dict, min_speedup: float) -> list[str]:
    """Return a list of failure messages (empty = all gates pass)."""
    failures: list[str] = []
    results = payload.get("results") or []
    if not results:
        return ["no results in benchmark payload"]

    gated = results[-1]
    speedup = gated.get("warm_over_cold_speedup", 0.0)
    if speedup < min_speedup:
        failures.append(
            f"{gated.get('config')}: warm-over-cold speedup {speedup:.1f}x "
            f"< required {min_speedup:.1f}x"
        )

    for row in results:
        config = row.get("config", "?")
        concurrent = row.get("concurrent")
        if not concurrent:
            failures.append(f"{config}: missing concurrent burst section")
            continue
        if concurrent.get("builds") != 1:
            failures.append(
                f"{config}: concurrent burst ran "
                f"{concurrent.get('builds')} builds, expected exactly 1"
            )
        if concurrent.get("singleflight_joins", 0) < 1:
            failures.append(
                f"{config}: singleflight_joins == "
                f"{concurrent.get('singleflight_joins')} — the burst did "
                f"not overlap any builds (concurrency not exercised)"
            )
        answered = concurrent.get("misses", 0) + concurrent.get("hits", 0)
        if answered != concurrent.get("fanout"):
            failures.append(
                f"{config}: {answered} answered != fanout "
                f"{concurrent.get('fanout')}"
            )

        op_latency = row.get("op_latency_ms") or {}
        if not op_latency:
            failures.append(f"{config}: no per-op latency quantiles")
        for op, q in op_latency.items():
            keys = ("p50_ms", "p95_ms", "p99_ms")
            if any(k not in q for k in keys):
                failures.append(f"{config}/{op}: missing quantile keys")
            elif not q["p50_ms"] <= q["p95_ms"] <= q["p99_ms"]:
                failures.append(
                    f"{config}/{op}: quantiles not ordered: "
                    f"{q['p50_ms']} / {q['p95_ms']} / {q['p99_ms']}"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "bench_file", nargs="?", default="BENCH_serve.json",
        help="benchmark artifact to validate (default BENCH_serve.json)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="warm-over-cold floor for the gated config (default 5.0)",
    )
    args = parser.parse_args(argv)

    payload = json.loads(Path(args.bench_file).read_text(encoding="utf-8"))
    failures = check(payload, args.min_speedup)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    gated = payload["results"][-1]
    print(
        f"check_bench OK: {gated['config']} "
        f"{gated['warm_over_cold_speedup']:.1f}x >= "
        f"{args.min_speedup:.1f}x; "
        f"singleflight_joins={gated['concurrent']['singleflight_joins']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
