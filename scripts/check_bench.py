"""Validate benchmark artifacts (``BENCH_serve.json`` / ``BENCH_engine.json``
/ ``BENCH_load.json``).

CI gate companion to the benchmarks: re-checks the written artifact
(rather than the bench process exit code) so the numbers that get
uploaded are the numbers that passed. The artifact kind is detected
from its shape (``--kind`` overrides).

For ``bench_serve.py`` artifacts, asserts that

* the gated (last) config's warm-over-cold speedup meets the floor
  (default 5x — cross-query sketch reuse is the serving layer's
  raison d'etre);
* the concurrent duplicate burst actually exercised single-flight:
  exactly one build, at least one ``singleflight_joins``, and every
  duplicate answered (misses + hits == fanout);
* per-op latency quantiles are present and ordered
  (p50 <= p95 <= p99) for every recorded op;
* the sharded scaling leg ran, its answers were bit-identical across
  fleet sizes, and the 4-worker fleet's throughput on the distinct-
  query cold burst meets the floor over 1 worker (default 3x —
  worker processes have to actually buy process-level parallelism).

For ``bench_engine.py`` artifacts, asserts that

* the gated (last, largest) config's bit-parallel RR speedup over the
  scalar oracle meets the floor (default 32x — 64 worlds per word has
  to actually buy bit-level parallelism, not just vectorization);
* every config ran its pooled legs through the process pool
  (``parallel_fell_back`` false) — i.e. the shared-memory fan-out was
  measured, not silently replaced by the in-process path;
* no shared-memory segments leaked (``leaked_segments`` empty) after
  the pooled engines closed;
* the bit-parallel kernels beat the vectorized ones on every config
  and section (they exist to be the fastest tier);
* the incremental-repair measurement ran in the sparse regime (<10%
  of edges dirty), stayed bit-identical to its cold rebuild, and its
  ``incremental_repair_speedup`` meets the floor (default 3x —
  patching a handful of dirty RR sets has to actually beat resampling
  all θ of them).

For ``repro loadgen`` artifacts (``BENCH_load.json``), asserts that

* outcome accounting is *exact* at every swept rate: every issued query
  terminated in exactly one of done / degraded / rejected / errors
  (``accounted == issued``) — no query may vanish under overload;
* no row reports raw ``errors`` (clean rejections and degraded answers
  are the only acceptable overload outcomes);
* rows exist for every swept rate and per-class p95s are recorded for
  classes with completions.

Usage::

    python scripts/check_bench.py BENCH_serve.json --min-speedup 5.0
    python scripts/check_bench.py BENCH_engine.json --min-bit-speedup 32.0
    python scripts/check_bench.py BENCH_load.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check_serve(
    payload: dict, min_speedup: float, min_shard_speedup: float = 3.0,
    max_trace_overhead: float = 0.05,
) -> list[str]:
    """Return a list of failure messages (empty = all gates pass)."""
    failures: list[str] = []
    results = payload.get("results") or []
    if not results:
        return ["no results in benchmark payload"]

    sharded = payload.get("sharded")
    if sharded is None:
        failures.append("missing sharded scaling section")
    else:
        if not sharded.get("bit_identical_across_fleets", False):
            failures.append(
                "sharded fleets diverged — multi-worker answers must be "
                "bit-identical to the 1-worker fleet"
            )
        fleets = sharded.get("fleets") or []
        if not fleets or fleets[-1].get("workers") != 4:
            failures.append(
                "sharded leg did not measure a 4-worker fleet"
            )
        shard_speedup = sharded.get("speedup_4w", 0.0)
        if shard_speedup < min_shard_speedup:
            failures.append(
                f"sharded 4-worker speedup {shard_speedup:.1f}x < "
                f"required {min_shard_speedup:.1f}x over 1 worker"
            )
        traced = sharded.get("traced")
        if traced is None:
            failures.append("missing traced sharded leg")
        else:
            overhead = sharded.get(
                "trace_overhead_frac", traced.get("overhead_frac")
            )
            if overhead is None:
                failures.append("traced leg reports no overhead fraction")
            elif overhead > max_trace_overhead:
                failures.append(
                    f"distributed-tracing overhead {overhead * 100:.1f}% "
                    f"> allowed {max_trace_overhead * 100:.1f}% on the "
                    f"{traced.get('workers')}-worker burst"
                )
            if not traced.get("trace_events"):
                failures.append(
                    "traced leg collected no stitched trace events"
                )

    gated = results[-1]
    speedup = gated.get("warm_over_cold_speedup", 0.0)
    if speedup < min_speedup:
        failures.append(
            f"{gated.get('config')}: warm-over-cold speedup {speedup:.1f}x "
            f"< required {min_speedup:.1f}x"
        )

    for row in results:
        config = row.get("config", "?")
        concurrent = row.get("concurrent")
        if not concurrent:
            failures.append(f"{config}: missing concurrent burst section")
            continue
        if concurrent.get("builds") != 1:
            failures.append(
                f"{config}: concurrent burst ran "
                f"{concurrent.get('builds')} builds, expected exactly 1"
            )
        if concurrent.get("singleflight_joins", 0) < 1:
            failures.append(
                f"{config}: singleflight_joins == "
                f"{concurrent.get('singleflight_joins')} — the burst did "
                f"not overlap any builds (concurrency not exercised)"
            )
        answered = concurrent.get("misses", 0) + concurrent.get("hits", 0)
        if answered != concurrent.get("fanout"):
            failures.append(
                f"{config}: {answered} answered != fanout "
                f"{concurrent.get('fanout')}"
            )

        op_latency = row.get("op_latency_ms") or {}
        if not op_latency:
            failures.append(f"{config}: no per-op latency quantiles")
        for op, q in op_latency.items():
            keys = ("p50_ms", "p95_ms", "p99_ms")
            if any(k not in q for k in keys):
                failures.append(f"{config}/{op}: missing quantile keys")
            elif not q["p50_ms"] <= q["p95_ms"] <= q["p99_ms"]:
                failures.append(
                    f"{config}/{op}: quantiles not ordered: "
                    f"{q['p50_ms']} / {q['p95_ms']} / {q['p99_ms']}"
                )
    return failures


def check_engine(
    payload: dict,
    min_bit_speedup: float,
    min_repair_speedup: float = 3.0,
) -> list[str]:
    """Return a list of failure messages (empty = all gates pass)."""
    failures: list[str] = []
    results = payload.get("results") or []
    if not results:
        return ["no results in benchmark payload"]

    repair = payload.get("incremental_repair")
    if repair is None:
        failures.append("missing incremental_repair section")
    else:
        if not repair.get("bit_identical", False):
            failures.append(
                "incremental repair diverged from its cold rebuild — "
                "speed is meaningless if the bits are wrong"
            )
        if not repair.get("dirty_sets", 0) > 0:
            failures.append(
                "repair benchmark dirtied zero RR sets — the timed "
                "'repair' was the no-op fast path, not a measurement"
            )
        frac = repair.get("dirty_edge_fraction", 1.0)
        if not frac < 0.10:
            failures.append(
                f"repair benchmark dirtied {frac:.1%} of edges — the "
                "<10% sparse-edit regime was not measured"
            )
        speedup = payload.get(
            "incremental_repair_speedup", repair.get("speedup", 0.0)
        )
        if speedup < min_repair_speedup:
            failures.append(
                f"incremental repair speedup {speedup:.1f}x < required "
                f"{min_repair_speedup:.1f}x over cold rebuild"
            )

    gated = results[-1]
    speedup = gated.get("rr", {}).get("bitparallel_speedup", 0.0)
    if speedup < min_bit_speedup:
        failures.append(
            f"{gated.get('config')}: bit-parallel RR speedup "
            f"{speedup:.1f}x < required {min_bit_speedup:.1f}x"
        )

    for row in results:
        config = row.get("config", "?")
        if row.get("parallel_fell_back", True):
            failures.append(
                f"{config}: pooled runs fell back to the in-process "
                "path — shared-memory fan-out was not measured"
            )
        leaked = row.get("leaked_segments")
        if leaked is None:
            failures.append(f"{config}: missing leaked_segments field")
        elif leaked:
            failures.append(
                f"{config}: shared-memory segments leaked after "
                f"engine close: {leaked}"
            )
        for section in ("rr", "cascade"):
            timings = row.get(section) or {}
            for leg in ("scalar_s", "vectorized_s", "bitparallel_s",
                        "parallel_s"):
                if not timings.get(leg, 0) > 0:
                    failures.append(f"{config}/{section}: missing {leg}")
            if timings.get("bitparallel_s", 0) > 0 and (
                timings["bitparallel_s"] >= timings.get("vectorized_s", 0)
            ):
                failures.append(
                    f"{config}/{section}: bit-parallel "
                    f"({timings['bitparallel_s']:.4f}s) not faster than "
                    f"vectorized ({timings.get('vectorized_s', 0):.4f}s)"
                )
    return failures


def check_load(payload: dict, max_error_frac: float = 0.0) -> list[str]:
    """Return a list of failure messages (empty = all gates pass)."""
    failures: list[str] = []
    rows = payload.get("rows") or []
    if not rows:
        return ["no rows in load report"]
    if payload.get("schema") != "repro.bench.load/1":
        failures.append(
            f"unexpected schema {payload.get('schema')!r} for load report"
        )
    for row in rows:
        rate = row.get("rate_qps", "?")
        issued = row.get("issued", 0)
        accounted = row.get("accounted", -1)
        if issued <= 0:
            failures.append(f"rate {rate}: issued no queries")
            continue
        if accounted != issued:
            failures.append(
                f"rate {rate}: accounted {accounted} != issued {issued} — "
                "a query terminated in zero or two outcome bins"
            )
        errors = row.get("errors", 0)
        if errors > max_error_frac * issued:
            failures.append(
                f"rate {rate}: {errors} raw errors (only clean "
                "rejections/degrades are acceptable overload outcomes)"
            )
        for name in ("interactive", "batch", "best_effort"):
            key = f"p95_ms.{name}"
            if key not in row:
                failures.append(f"rate {rate}: missing {key}")
    return failures


def detect_kind(payload: dict) -> str:
    if payload.get("schema") == "repro.bench.load/1":
        return "load"
    rows = payload.get("results") or [{}]
    return "engine" if "rr" in rows[0] else "serve"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "bench_file", nargs="?", default="BENCH_serve.json",
        help="benchmark artifact to validate (default BENCH_serve.json)",
    )
    parser.add_argument(
        "--kind", choices=("auto", "serve", "engine", "load"),
        default="auto",
        help="artifact kind (default: detect from payload shape)",
    )
    parser.add_argument(
        "--max-error-frac", type=float, default=0.0,
        help="load artifacts: tolerated raw-error fraction per rate "
             "(default 0 — overload must end in clean outcomes)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="serve artifacts: warm-over-cold floor for the gated "
             "config (default 5.0)",
    )
    parser.add_argument(
        "--min-shard-speedup", type=float, default=3.0,
        help="serve artifacts: 4-worker-over-1-worker throughput floor "
             "for the sharded cold burst (default 3.0)",
    )
    parser.add_argument(
        "--max-trace-overhead", type=float, default=0.05,
        help="serve artifacts: allowed throughput overhead fraction of "
             "the traced sharded burst over the untraced one "
             "(default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--min-bit-speedup", type=float, default=32.0,
        help="engine artifacts: bit-parallel RR speedup floor for the "
             "gated config (default 32.0)",
    )
    parser.add_argument(
        "--min-repair-speedup", type=float, default=3.0,
        help="engine artifacts: incremental-repair-over-cold-rebuild "
             "floor in the sparse-edit regime (default 3.0)",
    )
    args = parser.parse_args(argv)

    payload = json.loads(Path(args.bench_file).read_text(encoding="utf-8"))
    kind = detect_kind(payload) if args.kind == "auto" else args.kind
    if kind == "engine":
        failures = check_engine(
            payload, args.min_bit_speedup, args.min_repair_speedup
        )
    elif kind == "load":
        failures = check_load(payload, args.max_error_frac)
    else:
        failures = check_serve(
            payload, args.min_speedup, args.min_shard_speedup,
            args.max_trace_overhead,
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if kind == "load":
        rows = payload["rows"]
        max_qps = payload.get("max_sustainable_qps")
        print(
            f"check_bench OK: {len(rows)} rates, accounting exact "
            f"(issued == done + degraded + rejected + errors); "
            f"max sustainable {max_qps if max_qps is not None else 'n/a'} "
            f"qps at p95 <= {payload.get('slo_p95_ms')} ms"
        )
        return 0
    gated = payload["results"][-1]
    if kind == "engine":
        print(
            f"check_bench OK: {gated['config']} bit-parallel RR "
            f"{gated['rr']['bitparallel_speedup']:.1f}x >= "
            f"{args.min_bit_speedup:.1f}x; geomean "
            f"{payload.get('rr_bitparallel_geomean_speedup', 0):.1f}x; "
            "pool fan-out exercised, no leaked segments; "
            "incremental repair "
            f"{payload.get('incremental_repair_speedup', 0):.1f}x >= "
            f"{args.min_repair_speedup:.1f}x (bit-identical)"
        )
    else:
        shard = payload.get("sharded", {})
        print(
            f"check_bench OK: {gated['config']} "
            f"{gated['warm_over_cold_speedup']:.1f}x >= "
            f"{args.min_speedup:.1f}x; "
            f"singleflight_joins={gated['concurrent']['singleflight_joins']}; "
            f"sharded 4w {shard.get('speedup_4w', 0):.1f}x >= "
            f"{args.min_shard_speedup:.1f}x; tracing overhead "
            f"{shard.get('trace_overhead_frac', 0) * 100:.1f}% <= "
            f"{args.max_trace_overhead * 100:.1f}%"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
