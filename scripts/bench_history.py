"""Append benchmark artifacts to a longitudinal ``BENCH_HISTORY.jsonl``.

Every CI bench step produces a point-in-time ``BENCH_*.json`` artifact
that is overwritten on the next run; regressions that stay above the
gates are invisible. This script distills each artifact to the handful
of *gated* numbers and appends them — with the git revision and a
timestamp — as one JSONL line per artifact, so the history file answers
"how has the 4-worker speedup trended over the last fifty commits?"
with ``jq`` instead of archaeology.

Usage::

    python scripts/bench_history.py BENCH_serve.json BENCH_engine.json \
        --out BENCH_HISTORY.jsonl

Unknown or unreadable artifacts are reported and skipped (exit stays 0
unless *nothing* could be appended); the extractor never fails a build
that the gates passed.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import subprocess
import sys
from pathlib import Path

HISTORY_SCHEMA = "repro.bench.history/1"


def git_revision() -> str | None:
    """Short commit sha of the working tree, or None outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10.0, check=True,
        ).stdout.strip()
        return out or None
    except (OSError, subprocess.SubprocessError):
        return None


def _summarize_serve(payload: dict) -> dict:
    results = payload.get("results") or [{}]
    gated = results[-1]
    sharded = payload.get("sharded") or {}
    traced = sharded.get("traced") or {}
    return {
        "bench": "serve",
        "config": gated.get("config"),
        "warm_over_cold_speedup": gated.get("warm_over_cold_speedup"),
        "mixed_speedup": gated.get("mixed_speedup"),
        "sharded_speedup_4w": sharded.get("speedup_4w"),
        "trace_overhead_frac": sharded.get("trace_overhead_frac"),
        "trace_events": traced.get("trace_events"),
    }


def _summarize_engine(payload: dict) -> dict:
    results = payload.get("results") or [{}]
    gated = results[-1]
    return {
        "bench": "engine",
        "config": gated.get("config"),
        "bitparallel_speedup": (gated.get("rr") or {}).get(
            "bitparallel_speedup"
        ),
        "bitparallel_geomean_speedup": payload.get(
            "rr_bitparallel_geomean_speedup"
        ),
        "incremental_repair_speedup": payload.get(
            "incremental_repair_speedup"
        ),
    }


def _summarize_load(payload: dict) -> dict:
    return {
        "bench": "load",
        "max_sustainable_qps": payload.get("max_sustainable_qps"),
        "slo_p95_ms": payload.get("slo_p95_ms"),
        "rates": len(payload.get("rows") or []),
    }


def summarize(payload: dict) -> dict | None:
    """Gated-number summary for one artifact, or None if unrecognized.

    Detection mirrors ``check_bench.detect_kind``: the load artifact is
    schema-stamped, engine rows carry ``rr``, everything else with a
    ``results`` list is a serve artifact.
    """
    if payload.get("schema") == "repro.bench.load/1":
        return _summarize_load(payload)
    rows = payload.get("results")
    if not isinstance(rows, list) or not rows:
        return None
    if "rr" in rows[0]:
        return _summarize_engine(payload)
    return _summarize_serve(payload)


def append_history(
    bench_files: list[str], out: str, *,
    revision: str | None = None, timestamp: str | None = None,
) -> int:
    """Append one summary line per readable artifact; returns the count."""
    revision = revision if revision is not None else git_revision()
    timestamp = timestamp or _dt.datetime.now(
        _dt.timezone.utc
    ).isoformat(timespec="seconds")
    lines = []
    for bench_file in bench_files:
        try:
            payload = json.loads(
                Path(bench_file).read_text(encoding="utf-8")
            )
        except (OSError, ValueError) as exc:
            print(
                f"bench_history: skipping {bench_file}: {exc}",
                file=sys.stderr,
            )
            continue
        summary = summarize(payload)
        if summary is None:
            print(
                f"bench_history: skipping {bench_file}: "
                "unrecognized artifact shape",
                file=sys.stderr,
            )
            continue
        lines.append({
            "schema": HISTORY_SCHEMA,
            "ts": timestamp,
            "git": revision,
            "file": Path(bench_file).name,
            **summary,
        })
    if lines:
        with Path(out).open("a", encoding="utf-8") as fh:
            for line in lines:
                fh.write(json.dumps(line, sort_keys=True) + "\n")
    return len(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "bench_files", nargs="+",
        help="BENCH_*.json artifacts to distill and append",
    )
    parser.add_argument(
        "--out", default="BENCH_HISTORY.jsonl", metavar="PATH",
        help="history file to append to (default BENCH_HISTORY.jsonl)",
    )
    args = parser.parse_args(argv)
    appended = append_history(args.bench_files, args.out)
    print(
        f"bench_history: appended {appended}/{len(args.bench_files)} "
        f"artifact summaries to {args.out}"
    )
    return 0 if appended else 1


if __name__ == "__main__":
    raise SystemExit(main())
